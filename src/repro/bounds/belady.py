"""Bélády's MIN algorithm and its size-aware variant.

``belady_unit`` is exact OPT for equal-size objects (Bélády 1966).
``belady_size`` is the community's standard adaptation to variable sizes
— evict the object(s) with the farthest next request until the incoming
object fits — which the paper calls "Bélády-size" and shows is *not* an
optimality guarantee for variable sizes (computing true OPT is NP-hard).
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

from repro.traces.request import Request

#: Sentinel next-occurrence index for "never requested again".
NEVER = 1 << 62


@dataclass(frozen=True)
class BoundResult:
    """Outcome of running a bound over a request sequence."""

    name: str
    requests: int
    hits: int
    hit_bytes: int
    total_bytes: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0


def next_occurrences(requests: Sequence[Request]) -> list[int]:
    """For each request index, the index of the next request to the same
    content, or ``NEVER``."""
    nxt = [NEVER] * len(requests)
    last_seen: dict[int, int] = {}
    for i in range(len(requests) - 1, -1, -1):
        obj_id = requests[i].obj_id
        nxt[i] = last_seen.get(obj_id, NEVER)
        last_seen[obj_id] = i
    return nxt


class _FarthestIndex:
    """Max-heap on next occurrence with lazy invalidation."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int]] = []  # (-next_occurrence, obj_id)
        self._current: dict[int, int] = {}  # obj_id -> next occurrence

    def __len__(self) -> int:
        return len(self._current)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._current

    def set(self, obj_id: int, occurrence: int) -> None:
        self._current[obj_id] = occurrence
        heapq.heappush(self._heap, (-occurrence, obj_id))

    def remove(self, obj_id: int) -> None:
        del self._current[obj_id]

    def peek_farthest(self) -> tuple[int, int]:
        """Return ``(obj_id, next_occurrence)`` of the farthest entry."""
        while self._heap:
            neg_occ, obj_id = self._heap[0]
            if self._current.get(obj_id) == -neg_occ:
                return obj_id, -neg_occ
            heapq.heappop(self._heap)
        raise IndexError("peek from an empty index")

    def pop_farthest(self) -> tuple[int, int]:
        obj_id, occurrence = self.peek_farthest()
        heapq.heappop(self._heap)
        del self._current[obj_id]
        return obj_id, occurrence


def belady_unit(requests: Sequence[Request], capacity_objects: int) -> BoundResult:
    """Exact Bélády MIN for a cache holding ``capacity_objects`` objects.

    Sizes are ignored (the classic paging model).  O(n log n) via a lazy
    max-heap on next occurrence.
    """
    if capacity_objects <= 0:
        raise ValueError("capacity_objects must be positive")
    nxt = next_occurrences(requests)
    index = _FarthestIndex()
    hits = 0
    hit_bytes = 0
    total_bytes = 0
    for i, req in enumerate(requests):
        total_bytes += req.size
        if req.obj_id in index:
            hits += 1
            hit_bytes += req.size
            index.set(req.obj_id, nxt[i])
            continue
        if nxt[i] == NEVER:
            continue  # never requested again: caching it cannot help
        if len(index) >= capacity_objects:
            _, farthest = index.peek_farthest()
            if nxt[i] >= farthest:
                continue  # incoming is needed later than everything cached
            index.pop_farthest()
        index.set(req.obj_id, nxt[i])
    return BoundResult(
        name="belady",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )


def _belady_size_run(
    requests: Sequence[Request], capacity: int
) -> tuple[list[bool], int, int, int]:
    """Simulate Bélády-size; return (per-request hit flags, hits, hit_bytes,
    total_bytes)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    nxt = next_occurrences(requests)
    index = _FarthestIndex()
    sizes: dict[int, int] = {}
    used = 0
    hits = 0
    hit_bytes = 0
    total_bytes = 0
    hit_flags = [False] * len(requests)
    for i, req in enumerate(requests):
        total_bytes += req.size
        if req.obj_id in index:
            hits += 1
            hit_bytes += req.size
            hit_flags[i] = True
            index.set(req.obj_id, nxt[i])
            continue
        if nxt[i] == NEVER or req.size > capacity:
            continue
        # Evict farthest-next-request objects until the object fits, but
        # never evict anything requested sooner than the incoming object.
        admitted = True
        evicted: list[tuple[int, int, int]] = []
        while used + req.size > capacity:
            victim, occurrence = index.peek_farthest()
            if occurrence <= nxt[i]:
                admitted = False
                break
            index.pop_farthest()
            victim_size = sizes.pop(victim)
            evicted.append((victim, occurrence, victim_size))
            used -= victim_size
        if admitted:
            index.set(req.obj_id, nxt[i])
            sizes[req.obj_id] = req.size
            used += req.size
        else:
            # Roll back evictions made before we discovered infeasibility.
            for victim, occurrence, victim_size in evicted:
                index.set(victim, occurrence)
                sizes[victim] = victim_size
                used += victim_size
    return hit_flags, hits, hit_bytes, total_bytes


def belady_size(requests: Sequence[Request], capacity: int) -> BoundResult:
    """The Bélády-size bound: farthest-next-request eviction by bytes."""
    _, hits, hit_bytes, total_bytes = _belady_size_run(requests, capacity)
    return BoundResult(
        name="belady-size",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )


def belady_size_decisions(
    requests: Sequence[Request], capacity: int
) -> list[int]:
    """Per-request admission labels for OPT-imitation learners (LFO).

    Label request ``k`` with 1 iff the content's *next* request was served
    as a hit by Bélády-size — i.e. caching the content at ``k`` paid off.
    """
    hit_flags, *_ = _belady_size_run(requests, capacity)
    nxt = next_occurrences(requests)
    return [
        1 if nxt[i] != NEVER and hit_flags[nxt[i]] else 0
        for i in range(len(requests))
    ]
