"""Bounds on optimal caching (OPT).

Offline bounds (assume full knowledge of the future):

* :func:`belady_unit` — Bélády's MIN, exact OPT for equal-size objects.
* :func:`belady_size` — the "Bélády-size" heuristic widely used as an
  upper bound for variable sizes (Section 2).
* :func:`infinite_cap` — hits under an infinite cache: every re-request
  hits.  The weakest but simplest upper bound.
* :func:`pfoo_upper` / :func:`pfoo_lower` — Practical Flow-based Offline
  Optimal (Berger et al. 2018): upper bound via the average-occupancy
  relaxation, lower bound via a feasible greedy interval packing.

Online bound:

* the HRO bound lives in :mod:`repro.core.hro`; this package supplies its
  knapsack-relaxation machinery (:func:`hazard_top_set`) and the exact
  hazard-rate bound for synthetic traces with known distributions
  (:func:`exact_hazard_bound`).
"""

from repro.bounds.belady import (
    BoundResult,
    belady_size,
    belady_size_decisions,
    belady_unit,
    next_occurrences,
)
from repro.bounds.hazard import exact_hazard_bound, hazard_top_set
from repro.bounds.infinite_cap import infinite_cap
from repro.bounds.pfoo import pfoo_lower, pfoo_upper

__all__ = [
    "BoundResult",
    "belady_size",
    "belady_size_decisions",
    "belady_unit",
    "exact_hazard_bound",
    "hazard_top_set",
    "infinite_cap",
    "next_occurrences",
    "pfoo_lower",
    "pfoo_upper",
]
