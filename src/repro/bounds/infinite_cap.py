"""InfiniteCap: the hit count of an infinitely large cache.

Every request to a previously seen content hits; only cold (first)
requests miss.  This is the loosest upper bound on any caching policy's
hit probability and is used as a sanity ceiling in the bound comparisons
(Section 8 cites it among known variable-size bounds).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bounds.belady import BoundResult
from repro.traces.request import Request


def infinite_cap(requests: Sequence[Request]) -> BoundResult:
    """Hits under an unbounded cache (all non-compulsory misses removed)."""
    seen: set[int] = set()
    hits = 0
    hit_bytes = 0
    total_bytes = 0
    for req in requests:
        total_bytes += req.size
        if req.obj_id in seen:
            hits += 1
            hit_bytes += req.size
        else:
            seen.add(req.obj_id)
    return BoundResult(
        name="infinite-cap",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )
