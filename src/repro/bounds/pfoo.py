"""PFOO — Practical Flow-based Offline Optimal bounds (Berger et al. 2018).

FOO formulates variable-size offline caching as min-cost flow over reuse
intervals; PFOO derives practical upper/lower bounds from it:

* **PFOO-U (upper bound)** relaxes the capacity constraint from "at every
  instant, cached bytes <= M" to "the *average* occupancy <= M".  Each
  potential hit — a reuse interval from one request of an object to its
  next — consumes a resource footprint of ``size x interval_length``
  byte-steps; the cache offers ``M x trace_length`` byte-steps in total.
  Selecting intervals in ascending footprint order until the budget is
  exhausted maximizes hits under the relaxed constraint, so the result
  upper-bounds OPT.

* **PFOO-L (lower bound)** keeps the hard per-instant constraint and
  packs intervals greedily (smallest footprint first) into a bucketed
  occupancy profile; any packing that fits is achievable by an offline
  policy, so the result lower-bounds OPT.

Interval length is measured in request steps, matching the original
formulation (logical time).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.bounds.belady import NEVER, BoundResult, next_occurrences
from repro.traces.request import Request


def _reuse_intervals(
    requests: Sequence[Request],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All reuse intervals as ``(start, end, size, footprint)`` arrays.

    An interval exists for every request with a next occurrence; securing
    it as a hit requires keeping ``size`` bytes cached from request
    ``start`` to request ``end``.
    """
    nxt = next_occurrences(requests)
    starts: list[int] = []
    ends: list[int] = []
    sizes: list[int] = []
    for i, req in enumerate(requests):
        if nxt[i] != NEVER:
            starts.append(i)
            ends.append(nxt[i])
            sizes.append(req.size)
    start_arr = np.asarray(starts, dtype=np.int64)
    end_arr = np.asarray(ends, dtype=np.int64)
    size_arr = np.asarray(sizes, dtype=np.int64)
    footprint = size_arr * (end_arr - start_arr)
    return start_arr, end_arr, size_arr, footprint


def pfoo_upper(requests: Sequence[Request], capacity: int) -> BoundResult:
    """PFOO-U: average-occupancy relaxation (upper bound on OPT hits)."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not requests:
        return BoundResult("pfoo-u", 0, 0, 0, 0)
    starts, ends, sizes, footprint = _reuse_intervals(requests)
    total_bytes = sum(req.size for req in requests)
    budget = capacity * len(requests)
    order = np.argsort(footprint, kind="stable")
    cumulative = np.cumsum(footprint[order])
    accepted = int(np.searchsorted(cumulative, budget, side="right"))
    hits = accepted
    hit_bytes = int(sizes[order][:accepted].sum())
    return BoundResult(
        name="pfoo-u",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )


def pfoo_lower(
    requests: Sequence[Request], capacity: int, bucket_requests: int = 64
) -> BoundResult:
    """PFOO-L: feasible greedy interval packing (lower bound on OPT hits).

    Occupancy is tracked on buckets of ``bucket_requests`` requests; an
    interval is accepted iff every bucket it spans stays within capacity.
    Coarser buckets are conservative (they over-estimate occupancy within
    a bucket), preserving the lower-bound property.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not requests:
        return BoundResult("pfoo-l", 0, 0, 0, 0)
    starts, ends, sizes, footprint = _reuse_intervals(requests)
    total_bytes = sum(req.size for req in requests)
    num_buckets = (len(requests) + bucket_requests - 1) // bucket_requests
    occupancy = np.zeros(num_buckets, dtype=np.int64)
    order = np.argsort(footprint, kind="stable")
    hits = 0
    hit_bytes = 0
    for idx in order:
        first = int(starts[idx]) // bucket_requests
        last = int(ends[idx]) // bucket_requests
        size = int(sizes[idx])
        span = occupancy[first : last + 1]
        if (span + size <= capacity).all():
            span += size
            hits += 1
            hit_bytes += size
    return BoundResult(
        name="pfoo-l",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )
