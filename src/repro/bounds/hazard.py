"""Hazard-rate machinery shared by the exact HR bound and HRO.

Appendix A.1 of the paper: upon the k-th request, the expected hit
indicator under any non-anticipative policy is maximized by caching the
contents with the largest size-normalized hazard rates
``zeta_i(t) / s_i`` subject to the knapsack constraint
``sum s_i <= M``.  The fractional relaxation of that knapsack — fill the
cache greedily in descending hazard-per-byte order — upper-bounds the
integral optimum, so classifying a request as a hit iff its content sits
in that greedy prefix yields an upper bound on the hit probability of
every non-anticipative policy.

``hazard_top_set`` computes the greedy prefix; ``exact_hazard_bound``
evaluates the bound when the per-content request rates are known exactly
(synthetic IRM workloads, where the Poisson hazard is the constant rate
``lambda_i``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.bounds.belady import BoundResult
from repro.traces.request import Request


def hazard_top_set(
    obj_ids: Sequence[int],
    hazards: np.ndarray,
    sizes: np.ndarray,
    capacity: int,
) -> set[int]:
    """Contents in the fractional-knapsack prefix by size-normalized hazard.

    ``hazards`` must already be size-normalized (``zeta_i / s_i``);
    contents are taken in descending hazard order until the next one no
    longer fits entirely.  The partially-fitting content of the fractional
    solution is *included* — generosity keeps the bound an upper bound.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    order = np.argsort(hazards, kind="stable")[::-1]
    top: set[int] = set()
    used = 0
    for idx in order:
        size = int(sizes[idx])
        if hazards[idx] <= 0:
            break
        top.add(obj_ids[idx])
        used += size
        if used >= capacity:
            break
    return top


def hazard_ranks(
    obj_ids: Sequence[int],
    hazards: np.ndarray,
) -> dict[int, int]:
    """Dense 0-based rank of each content by descending hazard.

    Rank 0 is the hottest content — the first the fractional knapsack
    would cache.  Ties break with the same stable ordering
    :func:`hazard_top_set` uses, so the top set is always a rank prefix.
    Decision traces record this as the ``hazard_rank`` of a request when
    the policy tracks it.
    """
    order = np.argsort(hazards, kind="stable")[::-1]
    return {obj_ids[int(idx)]: rank for rank, idx in enumerate(order)}


def exact_hazard_bound(
    requests: Sequence[Request],
    rates: dict[int, float],
    capacity: int,
) -> BoundResult:
    """HR-based upper bound with exactly known Poisson request rates.

    For a Poisson request process the hazard is the constant rate
    ``lambda_i``, so the ranking never changes and the top set is fixed.
    A request hits iff its content is in the top set and has been seen
    before (the first request of any content is a compulsory miss).
    """
    if not requests:
        return BoundResult("hr-exact", 0, 0, 0, 0)
    sizes: dict[int, int] = {}
    for req in requests:
        sizes.setdefault(req.obj_id, req.size)
    ids = list(sizes)
    size_arr = np.asarray([sizes[i] for i in ids], dtype=np.float64)
    hazard_arr = np.asarray(
        [rates.get(i, 0.0) for i in ids], dtype=np.float64
    ) / size_arr
    top = hazard_top_set(ids, hazard_arr, size_arr, capacity)
    seen: set[int] = set()
    hits = 0
    hit_bytes = 0
    total_bytes = 0
    for req in requests:
        total_bytes += req.size
        if req.obj_id in top and req.obj_id in seen:
            hits += 1
            hit_bytes += req.size
        seen.add(req.obj_id)
    return BoundResult(
        name="hr-exact",
        requests=len(requests),
        hits=hits,
        hit_bytes=hit_bytes,
        total_bytes=total_bytes,
    )
