"""repro — a reproduction of "Learning from Optimal Caching for Content
Delivery" (Yan, Li, Towsley; CoNEXT 2021).

The package implements the paper's two contributions and every substrate
they are evaluated on:

* :mod:`repro.core` — HRO, the online upper bound on optimal caching,
  and LHR, the cache that learns from it (plus the GBM, feature store,
  drift detector and threshold estimator they are built from).
* :mod:`repro.policies` — the SOTA baselines (LRB, Hawkeye, LRU, LRU-4,
  LFU-DA, AdaptSize, B-LRU, W-TinyLFU, ...).
* :mod:`repro.bounds` — offline bounds on OPT (Bélády, Bélády-size,
  InfiniteCap, PFOO-U/L) and the exact hazard-rate bound.
* :mod:`repro.traces` — synthetic workloads and calibrated stand-ins for
  the paper's four production traces.
* :mod:`repro.sim` — the trace-driven simulator, metrics and the
  network/latency model.
* :mod:`repro.proto` — emulated ATS and Caffeine prototype deployments.
* :mod:`repro.obs` — the observability substrate: structured events,
  metrics registry and profiling timers (``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import LhrCache, generate_production_trace, simulate

    trace = generate_production_trace("wiki", scale=0.02, seed=7)
    cache = LhrCache(capacity=trace.unique_bytes() // 20)
    result = simulate(cache, trace)
    print(result.object_hit_ratio)
"""

from repro.core import GradientBoostingRegressor, HroBound, LhrCache, hro_bound
from repro.obs import NULL_OBS, MetricsRegistry, Observation
from repro.policies import SOTA_POLICIES, make_policy
from repro.sim import build_policy, measure_latency, run_comparison, simulate
from repro.traces import (
    PRODUCTION_SPECS,
    Request,
    Trace,
    generate_production_trace,
    irm_trace,
    summarize_trace,
    syn_one_trace,
    syn_two_trace,
)
from repro.workloads import (
    ScenarioConfig,
    known_scenarios,
    run_workload_lab,
)

__version__ = "1.0.0"

__all__ = [
    "GradientBoostingRegressor",
    "HroBound",
    "LhrCache",
    "MetricsRegistry",
    "NULL_OBS",
    "Observation",
    "PRODUCTION_SPECS",
    "Request",
    "SOTA_POLICIES",
    "ScenarioConfig",
    "Trace",
    "__version__",
    "build_policy",
    "generate_production_trace",
    "hro_bound",
    "irm_trace",
    "known_scenarios",
    "make_policy",
    "measure_latency",
    "run_comparison",
    "run_workload_lab",
    "simulate",
    "summarize_trace",
    "syn_one_trace",
    "syn_two_trace",
]
