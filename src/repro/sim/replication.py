"""Replicated experiments: seed sweeps with summary statistics.

Single-trace numbers hide generator noise.  This harness re-runs a
(policy, capacity) comparison across several stand-in trace seeds and
reports mean ± sample standard deviation per policy — the form results
should take before any "X beats Y" claim.  Cells are independent, so the
sweep optionally fans out over a process pool.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.traces.production import PRODUCTION_SPECS


@dataclass(frozen=True)
class ReplicatedResult:
    """Per-policy summary over a seed sweep."""

    policy: str
    trace: str
    capacity: int
    seeds: tuple[int, ...]
    object_hit_ratios: tuple[float, ...]
    byte_hit_ratios: tuple[float, ...]

    @staticmethod
    def _mean(values: tuple[float, ...]) -> float:
        return sum(values) / len(values) if values else 0.0

    @staticmethod
    def _std(values: tuple[float, ...]) -> float:
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        )

    @property
    def mean_object_hit(self) -> float:
        return self._mean(self.object_hit_ratios)

    @property
    def std_object_hit(self) -> float:
        return self._std(self.object_hit_ratios)

    @property
    def mean_byte_hit(self) -> float:
        return self._mean(self.byte_hit_ratios)

    @property
    def std_byte_hit(self) -> float:
        return self._std(self.byte_hit_ratios)

    def as_row(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "object_hit": f"{self.mean_object_hit:.3f}±{self.std_object_hit:.3f}",
            "byte_hit": f"{self.mean_byte_hit:.3f}±{self.std_byte_hit:.3f}",
            "seeds": len(self.seeds),
        }


def _run_cell(args: tuple) -> tuple[str, int, float, float]:
    """One (policy, seed) cell; module-level so it pickles for workers."""
    spec_name, policy_name, cache_gb, scale, seed, policy_kwargs = args
    from repro.sim.runner import build_policy
    from repro.traces.production import generate_production_trace

    spec = PRODUCTION_SPECS[spec_name]
    trace = generate_production_trace(spec, scale=scale, seed=seed)
    capacity = spec.scaled_cache_bytes(cache_gb, scale)
    policy = build_policy(policy_name, capacity, **(policy_kwargs or {}))
    policy.process(trace)
    return policy_name, seed, policy.object_hit_ratio, policy.byte_hit_ratio


def replicate_comparison(
    spec_name: str,
    policy_names: list[str],
    cache_gb: float,
    seeds: list[int],
    scale: float = 0.01,
    policy_kwargs: dict[str, dict] | None = None,
    workers: int = 0,
) -> list[ReplicatedResult]:
    """Run every policy over freshly generated traces for every seed.

    ``workers > 1`` fans cells out over a process pool; results are
    identical either way (each cell is deterministic in its seed).
    """
    if spec_name not in PRODUCTION_SPECS:
        raise ValueError(f"unknown trace spec {spec_name!r}")
    if not seeds:
        raise ValueError("need at least one seed")
    overrides = policy_kwargs or {}
    cells = [
        (spec_name, name, cache_gb, scale, seed, overrides.get(name))
        for name in policy_names
        for seed in seeds
    ]
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_cell, cells))
    else:
        outcomes = [_run_cell(cell) for cell in cells]

    spec = PRODUCTION_SPECS[spec_name]
    capacity = spec.scaled_cache_bytes(cache_gb, scale)
    results = []
    for name in policy_names:
        mine = sorted(
            (o for o in outcomes if o[0] == name), key=lambda o: o[1]
        )
        results.append(
            ReplicatedResult(
                policy=name,
                trace=spec_name,
                capacity=capacity,
                seeds=tuple(o[1] for o in mine),
                object_hit_ratios=tuple(o[2] for o in mine),
                byte_hit_ratios=tuple(o[3] for o in mine),
            )
        )
    return results
