"""Experiment sweep runner.

``run_comparison`` is the workhorse behind Figures 2 and 8: it runs a set
of policies (by name) over a trace for one or more cache sizes and
returns the grid of :class:`SimulationResult`.  Policy names resolve
through the combined registry — the SOTA policies from
:mod:`repro.policies` plus LHR and its ablation variants.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.lhr import DLhrCache, LhrCache, NLhrCache
from repro.obs import NULL_OBS, Observation
from repro.obs.trace import TraceConfig
from repro.policies import POLICY_REGISTRY, make_policy
from repro.policies.base import CachePolicy
from repro.sim.metrics import SimulationResult
from repro.obs.server import ProgressTracker
from repro.sim.parallel import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_STALL_TIMEOUT,
    CellSpec,
    run_sweep,
)
from repro.traces.packed import PackedTrace
from repro.traces.request import Trace

_CORE_REGISTRY = {
    "lhr": LhrCache,
    "d-lhr": DLhrCache,
    "n-lhr": NLhrCache,
}


def build_policy(name: str, capacity: int, **kwargs) -> CachePolicy:
    """Instantiate any policy in the package — SOTAs, classics or LHR."""
    key = name.lower()
    if key in _CORE_REGISTRY:
        return _CORE_REGISTRY[key](capacity, **kwargs)
    return make_policy(key, capacity, **kwargs)


def known_policies() -> list[str]:
    """All resolvable policy names."""
    return sorted(set(POLICY_REGISTRY) | set(_CORE_REGISTRY))


def is_known_policy(name: str) -> bool:
    """Whether ``name`` resolves in either registry."""
    key = name.lower()
    return key in _CORE_REGISTRY or key in POLICY_REGISTRY


def sweep_specs(
    policy_names: Sequence[str],
    capacities: Iterable[int],
    policy_kwargs: dict[str, dict] | None = None,
) -> list[CellSpec]:
    """The (capacity-major) cell grid ``run_comparison`` executes.

    Unknown policy names are rejected here, in the driver process, so a
    typo fails fast instead of surfacing as worker failures.
    """
    unknown = sorted({n for n in policy_names if not is_known_policy(n)})
    if unknown:
        known = ", ".join(known_policies())
        raise ValueError(f"unknown policies {unknown}; known: {known}")
    overrides = policy_kwargs or {}
    specs: list[CellSpec] = []
    for capacity in capacities:
        for name in policy_names:
            specs.append(
                CellSpec.make(
                    name,
                    capacity,
                    overrides.get(name, {}),
                    index=len(specs),
                )
            )
    return specs


def run_comparison(
    trace: Trace | PackedTrace,
    policy_names: Sequence[str],
    capacities: Iterable[int],
    window_requests: int = 0,
    warmup_requests: int = 0,
    policy_kwargs: dict[str, dict] | None = None,
    parallel: int = 0,
    mp_context=None,
    obs: Observation = NULL_OBS,
    trace_config: TraceConfig | None = None,
    progress: ProgressTracker | None = None,
    heartbeat_interval_requests: int = DEFAULT_HEARTBEAT_INTERVAL,
    stall_timeout_seconds: float = DEFAULT_STALL_TIMEOUT,
    event_fields: dict | None = None,
) -> list[SimulationResult]:
    """Run every (policy, capacity) combination over ``trace``.

    ``policy_kwargs`` maps policy name -> constructor overrides.  Each
    combination gets a fresh policy instance — constructed inside the
    worker when ``parallel > 1`` fans the grid out over that many
    processes.  Results come back in grid order (capacity-major, then
    the order of ``policy_names``) and are bit-identical to a serial
    run; a failing cell raises :class:`~repro.sim.parallel.SweepCellError`
    naming the (policy, capacity) pair once every sibling has finished.
    ``obs`` threads an observation handle through every cell (see
    :func:`repro.sim.parallel.run_sweep`); parallel and serial execution
    produce the same grid-ordered event stream.  ``trace_config`` runs
    every cell under its own decision tracer, returned on each result's
    ``decision_trace``.  A ``progress`` tracker enables live heartbeats
    and stall detection — the surface ``--serve`` exposes.
    ``event_fields`` stamps constant fields onto every observed event
    (the workload lab tags scenario-matrix sweeps with it).
    """
    specs = sweep_specs(policy_names, capacities, policy_kwargs)
    return run_sweep(
        trace,
        specs,
        window_requests=window_requests,
        warmup_requests=warmup_requests,
        jobs=parallel,
        mp_context=mp_context,
        obs=obs,
        trace_config=trace_config,
        progress=progress,
        heartbeat_interval_requests=heartbeat_interval_requests,
        stall_timeout_seconds=stall_timeout_seconds,
        event_fields=event_fields,
    )


def best_policy(results: Sequence[SimulationResult]) -> SimulationResult:
    """The result with the highest object hit ratio (the paper's
    "best-performing SOTA" selector)."""
    if not results:
        raise ValueError("no results to choose from")
    return max(results, key=lambda result: result.object_hit_ratio)


def format_table(results: Sequence[SimulationResult]) -> str:
    """Plain-text results table for benchmark harness output."""
    if not results:
        return "(no results)"
    rows = [result.as_row() for result in results]
    columns = list(rows[0])
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)
