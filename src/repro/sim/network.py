"""Idealized network model for latency/throughput estimates (Section 7.3).

The paper's latency/throughput characterization (Table 3) assumes "an
ideal environment" where (a) contents transfer at 8 Gbps, (b) latency is
driven by distance and content size, and misses traverse the WAN to the
origin (much larger distance term), and (c) the running time of the ML
model is added on top.  This module reproduces that accounting:

* a hit serves the content from the edge: ``edge_rtt + chunk / link_rate``
* a miss first fetches from the origin: ``origin_rtt + chunk / wan_rate``
  and then serves it to the user like a hit
* per-request policy compute time (measured, not assumed) is added.

Latency uses *first-chunk* semantics: the reported paper latencies
(P99 of ~305-325 ms on traces whose largest contents are tens of GB)
can only be user-perceived time to the first bytes, not full-transfer
time, so the latency of a request counts the RTTs plus the transfer of
the first ``chunk_bytes`` of the content.  Throughput, by contrast,
counts every byte: bytes delivered divided by the summed full-transfer
busy time — the quantity Table 3 tabulates in Gbps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import NULL_OBS, Observation
from repro.policies.base import CachePolicy
from repro.traces.request import Trace
from repro.util.stats import PercentileTracker, RunningStats

GBPS = 1e9 / 8  # bytes per second at 1 Gbps


@dataclass(frozen=True)
class NetworkModel:
    """Latency parameters of the idealized serving path."""

    link_rate_bps: float = 8e9  # edge -> user (paper: 8 Gbps)
    wan_rate_bps: float = 8e9  # origin -> edge
    edge_rtt_s: float = 0.020  # user <-> edge distance term
    origin_rtt_s: float = 0.100  # edge <-> origin distance term
    chunk_bytes: int = 16 << 20  # first-chunk size for latency accounting

    def _latency_bytes(self, size: int) -> int:
        return min(size, self.chunk_bytes)

    def hit_latency(self, size: int) -> float:
        return self.edge_rtt_s + self._latency_bytes(size) / (
            self.link_rate_bps / 8.0
        )

    def miss_latency(self, size: int) -> float:
        fetch = self.origin_rtt_s + self._latency_bytes(size) / (
            self.wan_rate_bps / 8.0
        )
        return fetch + self.hit_latency(size)


@dataclass
class LatencyReport:
    """Latency/throughput summary of one simulated run (Table 3 cells)."""

    policy: str
    trace: str
    mean_latency_ms: float
    p90_latency_ms: float
    p99_latency_ms: float
    throughput_gbps: float
    object_hit_ratio: float

    def as_row(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "mean_latency_ms": round(self.mean_latency_ms, 1),
            "p90_latency_ms": round(self.p90_latency_ms, 1),
            "p99_latency_ms": round(self.p99_latency_ms, 1),
            "throughput_gbps": round(self.throughput_gbps, 2),
            "object_hit_ratio": round(self.object_hit_ratio, 4),
        }


def measure_latency(
    policy: CachePolicy,
    trace: Trace,
    model: NetworkModel | None = None,
    compute_overhead_s: float = 0.0,
    obs: Observation = NULL_OBS,
) -> LatencyReport:
    """Run ``policy`` over ``trace`` and compute the Table 3 statistics.

    ``compute_overhead_s`` is a fixed per-request policy compute cost; the
    benchmark harness measures it from the policy's actual wall time and
    passes it in so learning-based policies pay for their inference.

    When ``obs`` is enabled it is attached to the policy, every modeled
    request latency lands in the ``net_request_latency_seconds``
    histogram, and the run's totals (bytes served, modeled busy time,
    throughput) are recorded — so a latency study is as observable as a
    plain replay.  The default disabled handle adds nothing to the loop
    beyond the histogram lookup being hoisted out of it.
    """
    network = model or NetworkModel()
    latencies = RunningStats()
    percentiles = PercentileTracker(capacity=16_384)
    served_bytes = 0
    busy_seconds = 0.0
    observing = obs.enabled
    latency_histogram = None
    if observing:
        policy.attach_observation(obs)
        latency_histogram = obs.registry.histogram(
            "net_request_latency_seconds",
            help="modeled first-chunk latency per request",
        )
    for req in trace:
        hit = policy.request(req)
        if hit:
            latency = network.hit_latency(req.size)
        else:
            latency = network.miss_latency(req.size)
        latency += compute_overhead_s
        latencies.add(latency)
        percentiles.add(latency)
        if latency_histogram is not None:
            latency_histogram.observe(latency)
        served_bytes += req.size
        # Busy time counts the *full* transfers (latency only counts the
        # first chunk): every byte crosses the edge link, and miss bytes
        # additionally cross the WAN.
        busy_seconds += req.size / (network.link_rate_bps / 8.0)
        if not hit:
            busy_seconds += req.size / (network.wan_rate_bps / 8.0)
        busy_seconds += compute_overhead_s
    throughput_bps = served_bytes * 8.0 / busy_seconds if busy_seconds else 0.0
    if observing:
        registry = obs.registry
        registry.counter(
            "net_bytes_served_total", help="bytes delivered to users"
        ).inc(served_bytes)
        registry.counter(
            "net_requests_total", help="requests run through the network model"
        ).inc(len(trace))
        registry.gauge(
            "net_throughput_gbps", help="modeled delivered throughput"
        ).set(throughput_bps / 1e9)
    return LatencyReport(
        policy=policy.name,
        trace=trace.name,
        mean_latency_ms=latencies.mean * 1e3,
        p90_latency_ms=percentiles.percentile(90) * 1e3,
        p99_latency_ms=percentiles.percentile(99) * 1e3,
        throughput_gbps=throughput_bps / 1e9,
        object_hit_ratio=policy.object_hit_ratio,
    )
