"""Trace-driven simulation engine.

``simulate`` runs one policy over one trace, collecting aggregate and
per-window metrics plus resource proxies (runtime, peak metadata).  The
engine owns nothing policy-specific: any :class:`CachePolicy` works,
including LHR and the prototype emulations.

The function is worker-safe: it holds no module-level mutable state and
touches nothing but its arguments, so :mod:`repro.sim.parallel` can call
it from forked or spawned processes.  The replay loop itself lives in
``replay_into`` so callers that manage their own ``SimulationResult``
(resumable runs, shared-result accumulation) can reuse it.
"""

from __future__ import annotations

import time

from repro.policies.base import CachePolicy
from repro.sim.metrics import SimulationResult, WindowMetrics
from repro.traces.request import Trace


def simulate(
    policy: CachePolicy,
    trace: Trace,
    window_requests: int = 0,
    warmup_requests: int = 0,
    metadata_probe_interval: int = 1000,
) -> SimulationResult:
    """Run ``policy`` over ``trace``.

    Parameters
    ----------
    policy:
        A fresh policy instance (the engine does not reset state).
    trace:
        The request stream.
    window_requests:
        If > 0, collect per-window hit series every this many requests
        (the Figure 7 time series).
    warmup_requests:
        Requests processed but excluded from aggregate metrics (classic
        cache-simulation warmup; the per-window series still covers them).
        Must leave at least one measured request: a warmup at or beyond
        the trace length would silently produce empty aggregates, so it
        raises ``ValueError`` instead.
    metadata_probe_interval:
        How often (in requests) to sample ``policy.metadata_bytes()`` for
        the peak-memory statistic.
    """
    if warmup_requests < 0:
        raise ValueError("warmup_requests must be non-negative")
    if window_requests < 0:
        raise ValueError("window_requests must be non-negative")
    if warmup_requests and warmup_requests >= len(trace):
        raise ValueError(
            f"warmup_requests ({warmup_requests}) must be smaller than the "
            f"trace ({len(trace)} requests); nothing would be measured"
        )
    result = SimulationResult(
        policy=policy.name, trace=trace.name, capacity=policy.capacity
    )
    replay_into(
        policy,
        trace,
        result,
        window_requests=window_requests,
        warmup_requests=warmup_requests,
        metadata_probe_interval=metadata_probe_interval,
    )
    return result


def replay_into(
    policy: CachePolicy,
    trace: Trace,
    result: SimulationResult,
    window_requests: int = 0,
    warmup_requests: int = 0,
    metadata_probe_interval: int = 1000,
) -> SimulationResult:
    """The inner replay loop: feed ``trace`` through ``policy`` and
    accumulate into ``result``.

    Assumes arguments were validated by the caller (``simulate`` does).
    """
    window: WindowMetrics | None = None
    start = time.perf_counter()
    peak_metadata = 0
    for i, req in enumerate(trace):
        if window_requests and (window is None or window.requests >= window_requests):
            window = WindowMetrics(index=len(result.windows))
            result.windows.append(window)
        hit = policy.request(req)
        if i >= warmup_requests:
            result.requests += 1
            result.total_bytes += req.size
            if hit:
                result.hits += 1
                result.hit_bytes += req.size
        if window is not None:
            window.requests += 1
            window.total_bytes += req.size
            if hit:
                window.hits += 1
                window.hit_bytes += req.size
        if metadata_probe_interval and i % metadata_probe_interval == 0:
            peak_metadata = max(peak_metadata, policy.metadata_bytes())
    result.runtime_seconds = time.perf_counter() - start
    result.peak_metadata_bytes = max(peak_metadata, policy.metadata_bytes())
    result.evictions = policy.evictions
    result.admissions = policy.admissions
    return result
