"""Trace-driven simulation engine.

``simulate`` runs one policy over one trace, collecting aggregate and
per-window metrics plus resource proxies (runtime, peak metadata).  The
engine owns nothing policy-specific: any :class:`CachePolicy` works,
including LHR and the prototype emulations.

The function is worker-safe: it holds no module-level mutable state and
touches nothing but its arguments, so :mod:`repro.sim.parallel` can call
it from forked or spawned processes.  The replay loop itself lives in
``replay_into`` so callers that manage their own ``SimulationResult``
(resumable runs, shared-result accumulation) can reuse it.
"""

from __future__ import annotations

import time

from repro.obs import NULL_OBS, Observation
from repro.obs.spans import NULL_SPANS
from repro.obs.trace import DecisionTracer
from repro.policies.base import CachePolicy
from repro.sim.metrics import SimulationResult, WindowMetrics
from repro.traces.packed import PackedTrace
from repro.traces.request import Trace


def simulate(
    policy: CachePolicy,
    trace: Trace | PackedTrace,
    window_requests: int = 0,
    warmup_requests: int = 0,
    metadata_probe_interval: int = 1000,
    obs: Observation = NULL_OBS,
    tracer: DecisionTracer | None = None,
    heartbeat=None,
    heartbeat_interval: int = 0,
) -> SimulationResult:
    """Run ``policy`` over ``trace``.

    Parameters
    ----------
    policy:
        A fresh policy instance (the engine does not reset state).
    trace:
        The request stream — a reference ``Trace`` or a columnar
        :class:`~repro.traces.packed.PackedTrace`.  A packed trace runs
        the allocation-free scalar loop when no instrumentation is
        attached, and is transparently unpacked to the reference object
        path otherwise (tracing and observation always see ``Request``
        objects).
    window_requests:
        If > 0, collect per-window hit series every this many requests
        (the Figure 7 time series).
    warmup_requests:
        Requests processed but excluded from aggregate metrics (classic
        cache-simulation warmup; the per-window series still covers them).
        Must leave at least one measured request: a warmup at or beyond
        the trace length would silently produce empty aggregates, so it
        raises ``ValueError`` instead.
    metadata_probe_interval:
        How often (in requests) to sample ``policy.metadata_bytes()`` for
        the peak-memory statistic.
    obs:
        Observation handle (:mod:`repro.obs`).  When enabled, the engine
        emits one ``sim.window`` event per closed reporting window, times
        the replay into the ``sim_replay_seconds`` histogram, attaches
        the handle to the policy (so LHR's lifecycle events flow), and
        records aggregate request/hit counters.  The default
        :data:`~repro.obs.NULL_OBS` disables all of it.
    tracer:
        Optional :class:`~repro.obs.trace.DecisionTracer` attached to the
        policy for the replay — every request's admission verdict, its
        inputs and eviction victims are recorded, and the tracer's miss
        taxonomy covers the whole trace (warmup included).
    heartbeat / heartbeat_interval:
        When ``heartbeat_interval > 0``, call ``heartbeat(requests_done)``
        every that many replayed requests — the hook live progress rides
        on (sweep worker heartbeats, the CLI's ``--serve`` progress).
        Disabled (interval 0) the loop carries only a falsy-int check,
        same cost class as the window rollover guard.
    """
    if warmup_requests < 0:
        raise ValueError("warmup_requests must be non-negative")
    if window_requests < 0:
        raise ValueError("window_requests must be non-negative")
    if heartbeat_interval < 0:
        raise ValueError("heartbeat_interval must be non-negative")
    if heartbeat_interval and heartbeat is None:
        raise ValueError("heartbeat_interval set without a heartbeat callable")
    if warmup_requests and warmup_requests >= len(trace):
        raise ValueError(
            f"warmup_requests ({warmup_requests}) must be smaller than the "
            f"trace ({len(trace)} requests); nothing would be measured"
        )
    result = SimulationResult(
        policy=policy.name, trace=trace.name, capacity=policy.capacity
    )
    replay_into(
        policy,
        trace,
        result,
        window_requests=window_requests,
        warmup_requests=warmup_requests,
        metadata_probe_interval=metadata_probe_interval,
        obs=obs,
        tracer=tracer,
        heartbeat=heartbeat,
        heartbeat_interval=heartbeat_interval,
    )
    return result


def _emit_window(obs: Observation, window: WindowMetrics) -> None:
    obs.emit(
        "sim.window",
        index=window.index,
        requests=window.requests,
        hits=window.hits,
        hit_bytes=window.hit_bytes,
        total_bytes=window.total_bytes,
        hit_ratio=round(window.hit_ratio, 6),
    )


def replay_into(
    policy: CachePolicy,
    trace: Trace | PackedTrace,
    result: SimulationResult,
    window_requests: int = 0,
    warmup_requests: int = 0,
    metadata_probe_interval: int = 1000,
    obs: Observation = NULL_OBS,
    tracer: DecisionTracer | None = None,
    heartbeat=None,
    heartbeat_interval: int = 0,
) -> SimulationResult:
    """The inner replay loop: feed ``trace`` through ``policy`` and
    accumulate into ``result``.

    Assumes arguments were validated by the caller (``simulate`` does).
    The per-request loop carries zero instrumentation overhead when
    ``obs`` is disabled: window events ride the existing window-rollover
    branch and everything else happens once, outside the loop.  A
    ``tracer`` is attached to the policy once here; recording happens
    inside ``CachePolicy.request``.

    A :class:`PackedTrace` takes the columnar fast path
    (:func:`_replay_packed`) unless the policy carries a tracer or an
    enabled observation handle — instrumented runs always replay the
    reference object path, so the packed trace is unpacked first.
    """
    observing = obs.enabled
    spans = obs.spans
    spans_on = spans.enabled
    learner_on = obs.learner.enabled
    if observing or spans_on or learner_on:
        # A sidecars-only handle (spans and/or learner telemetry) still
        # attaches: LHR's window-close spans flow through
        # ``policy.obs.spans`` and the learner sink collects at window
        # close via ``policy.obs.learner``.  Its ``enabled`` stays
        # False, so native kernels and the packed path are unaffected.
        policy.attach_observation(obs)
    if tracer is not None:
        policy.attach_tracer(tracer)
    if isinstance(trace, PackedTrace):
        if policy.tracer is None and not policy.obs.enabled and not observing:
            _replay_packed(
                policy,
                trace,
                result,
                window_requests=window_requests,
                warmup_requests=warmup_requests,
                metadata_probe_interval=metadata_probe_interval,
                heartbeat=heartbeat,
                heartbeat_interval=heartbeat_interval,
                spans=spans,
            )
            if learner_on:
                result.learner = obs.learner.series(
                    policy.name, policy.capacity
                )
            return result
        trace = trace.unpack()
    replay_span = warmup_span = window_span = None
    # Falsy-int warmup-edge guard, same cost class as the heartbeat
    # check: zero unless spans are on AND a warmup is configured.
    pending_warmup = 0
    if spans_on:
        replay_span = spans.begin(
            "sim.replay",
            cat="sim",
            policy=policy.name,
            trace=trace.name,
            requests=len(trace),
        )
        if warmup_requests:
            warmup_span = spans.begin(
                "sim.warmup", cat="sim", requests=warmup_requests
            )
            pending_warmup = warmup_requests
    window: WindowMetrics | None = None
    evict_mark = 0
    start = time.perf_counter()
    peak_metadata = 0
    for i, req in enumerate(trace):
        if window_requests and (window is None or window.requests >= window_requests):
            if window is not None:
                # Eviction pressure per window: delta of the policy's
                # monotone eviction counter at the window edges.
                window.evictions = policy.evictions - evict_mark
                if observing:
                    _emit_window(obs, window)
            evict_mark = policy.evictions
            if spans_on:
                if window_span is not None:
                    spans.end(window_span)
                window_span = spans.begin(
                    "sim.window", cat="sim", index=len(result.windows)
                )
            window = WindowMetrics(index=len(result.windows))
            result.windows.append(window)
        hit = policy.request(req)
        if i >= warmup_requests:
            result.requests += 1
            result.total_bytes += req.size
            if hit:
                result.hits += 1
                result.hit_bytes += req.size
        if window is not None:
            window.requests += 1
            window.total_bytes += req.size
            if hit:
                window.hits += 1
                window.hit_bytes += req.size
        if metadata_probe_interval and i % metadata_probe_interval == 0:
            peak_metadata = max(peak_metadata, policy.metadata_bytes())
        if heartbeat_interval and (i + 1) % heartbeat_interval == 0:
            heartbeat(i + 1)
        if pending_warmup and (i + 1) == pending_warmup:
            spans.end(warmup_span)
            pending_warmup = 0
    result.runtime_seconds = time.perf_counter() - start
    result.peak_metadata_bytes = max(peak_metadata, policy.metadata_bytes())
    result.evictions = policy.evictions
    result.admissions = policy.admissions
    if window is not None:
        window.evictions = policy.evictions - evict_mark
    if spans_on:
        if window_span is not None:
            spans.end(window_span)
        if pending_warmup:  # trace ended inside warmup (callers validate)
            spans.end(warmup_span)
        spans.end(
            replay_span, requests=result.requests, hits=result.hits
        )
    if tracer is not None:
        result.decision_trace = tracer
    if observing:
        if window is not None and window.requests:
            _emit_window(obs, window)
        registry = obs.registry
        registry.histogram(
            "sim_replay_seconds", help="wall-clock seconds per replay loop"
        ).observe(result.runtime_seconds)
        registry.counter(
            "sim_requests_total", help="measured (post-warmup) requests replayed"
        ).inc(result.requests)
        registry.counter("sim_hits_total", help="measured cache hits").inc(
            result.hits
        )
        registry.counter("sim_evictions_total", help="evictions performed").inc(
            result.evictions
        )
        registry.counter("sim_admissions_total", help="objects admitted").inc(
            result.admissions
        )
        registry.gauge(
            "sim_peak_metadata_bytes", help="peak sampled policy metadata"
        ).max(result.peak_metadata_bytes)
    if learner_on:
        # Stamp the per-window learner series onto the result so sweeps
        # carry it across the worker->driver pipe like decision traces.
        result.learner = obs.learner.series(policy.name, policy.capacity)
    return result


def _replay_packed(
    policy: CachePolicy,
    packed: PackedTrace,
    result: SimulationResult,
    window_requests: int = 0,
    warmup_requests: int = 0,
    metadata_probe_interval: int = 1000,
    heartbeat=None,
    heartbeat_interval: int = 0,
    spans=None,
) -> SimulationResult:
    """Columnar replay: drive ``request_scalar`` straight from the packed
    scalar columns, no per-request ``Request`` allocation.

    ``spans`` (a :class:`~repro.obs.spans.SpanRecorder` or the default
    no-op) records the timeline at chunk granularity — one ``sim.chunk``
    span per ``replay_span`` call, plus the replay/warmup envelopes.
    Chunk boundaries already land on the warmup edge and window
    rollovers, so the chunked timeline aligns with the object loop's
    phases; when disabled the loop pays one boolean check per *chunk*,
    not per request.

    Equivalence with the object loop is by construction and pinned by
    ``tests/sim/test_fastpath.py``: the trace is processed in chunks
    whose boundaries land exactly on the object loop's bookkeeping
    points (metadata probes after index ``i % interval == 0``, window
    rollovers every ``window_requests``, heartbeats at
    ``(i + 1) % heartbeat_interval == 0``, the warmup edge), and all
    aggregate/window accounting is reconstructed from the policy's own
    monotone counters as deltas at those boundaries — every request adds
    its size to exactly one of ``hit_bytes``/``miss_bytes``, so byte and
    hit totals over any index range are counter differences.  Each chunk
    goes through ``policy.replay_span`` in one call, so span-kernel
    policies pay Python dispatch per chunk, not per request.
    """
    obj_ids, sizes, times = packed.scalar_columns()
    total = len(obj_ids)
    replay_span = policy.replay_span
    interval = metadata_probe_interval
    warmup = min(warmup_requests, total)
    if spans is None:
        spans = NULL_SPANS
    spans_on = spans.enabled
    replay_span_handle = warmup_span_handle = None
    if spans_on:
        replay_span_handle = spans.begin(
            "sim.replay",
            cat="sim",
            policy=policy.name,
            trace=packed.name,
            requests=total,
            packed=True,
        )
        if warmup:
            warmup_span_handle = spans.begin(
                "sim.warmup", cat="sim", requests=warmup
            )
    # Measured-aggregate base: counters at the warmup edge (policies may
    # enter with non-zero totals; resumable replays accumulate).
    base_hits = policy.hits
    base_hit_bytes = policy.hit_bytes
    base_bytes = policy.hit_bytes + policy.miss_bytes
    window: WindowMetrics | None = None
    window_begin = 0
    win_hits = win_hit_bytes = win_bytes = win_evictions = 0
    start = time.perf_counter()
    peak_metadata = 0
    i = 0
    while i < total:
        stop = total
        if interval:
            aligned = ((i + interval - 1) // interval) * interval + 1
            if aligned < stop:
                stop = aligned
        if window_requests:
            if i % window_requests == 0:
                window = WindowMetrics(index=len(result.windows))
                result.windows.append(window)
                window_begin = i
                win_hits = policy.hits
                win_hit_bytes = policy.hit_bytes
                win_bytes = policy.hit_bytes + policy.miss_bytes
                win_evictions = policy.evictions
            boundary = (i // window_requests + 1) * window_requests
            if boundary < stop:
                stop = boundary
        if heartbeat_interval:
            boundary = (i // heartbeat_interval + 1) * heartbeat_interval
            if boundary < stop:
                stop = boundary
        if i < warmup < stop:
            stop = warmup
        if spans_on:
            chunk = spans.begin("sim.chunk", cat="sim", start=i, stop=stop)
            replay_span(obj_ids, sizes, times, i, stop)
            spans.end(chunk)
        else:
            replay_span(obj_ids, sizes, times, i, stop)
        if window is not None:
            window.requests = stop - window_begin
            window.hits = policy.hits - win_hits
            window.hit_bytes = policy.hit_bytes - win_hit_bytes
            window.total_bytes = policy.hit_bytes + policy.miss_bytes - win_bytes
            window.evictions = policy.evictions - win_evictions
        if stop == warmup:
            base_hits = policy.hits
            base_hit_bytes = policy.hit_bytes
            base_bytes = policy.hit_bytes + policy.miss_bytes
            if warmup_span_handle is not None:
                spans.end(warmup_span_handle)
                warmup_span_handle = None
        if interval and (stop - 1) % interval == 0:
            metadata = policy.metadata_bytes()
            if metadata > peak_metadata:
                peak_metadata = metadata
        if heartbeat_interval and stop % heartbeat_interval == 0:
            heartbeat(stop)
        i = stop
    result.runtime_seconds = time.perf_counter() - start
    result.peak_metadata_bytes = max(peak_metadata, policy.metadata_bytes())
    result.evictions = policy.evictions
    result.admissions = policy.admissions
    result.requests += total - warmup
    result.hits += policy.hits - base_hits
    result.hit_bytes += policy.hit_bytes - base_hit_bytes
    result.total_bytes += policy.hit_bytes + policy.miss_bytes - base_bytes
    if spans_on:
        if warmup_span_handle is not None:
            spans.end(warmup_span_handle)
        spans.end(
            replay_span_handle, requests=result.requests, hits=result.hits
        )
    return result
