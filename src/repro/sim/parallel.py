"""Parallel sweep execution over a process pool.

Every headline experiment is a grid of independent (policy, capacity)
simulations over one shared trace; this module fans those cells out to
worker processes.  Design constraints, in order:

* **Determinism** — results are bit-identical to a serial sweep and come
  back in grid order (the order of the input specs) regardless of which
  worker finishes first.  Policies are constructed *inside* the worker
  from a picklable :class:`CellSpec`, so every cell starts from the same
  seeded state it would have serially.
* **Cheap trace sharing** — the trace is columnarized into three NumPy
  arrays (:class:`~repro.traces.packed.PackedTrace`) and placed in one
  POSIX shared-memory segment; workers map it read-only through the pool
  initializer, so the request stream crosses the process boundary zero
  times (a short descriptor pickles instead).  Platforms without usable
  shared memory fall back to pickling the packed arrays once per worker.
  Workers replay the columns directly through the engine's scalar fast
  path; cells that need ``Request`` objects (observed or traced runs)
  unpack once per worker and reuse the rebuilt ``Trace``.
* **Failure containment** — a cell that raises is captured in the worker
  (policy name, capacity and full traceback) and reported after every
  sibling cell has finished; one bad cell never hangs the pool or
  corrupts the others' results.
* **Live progress (opt-in)** — given a
  :class:`~repro.obs.server.ProgressTracker`, workers post periodic
  heartbeats (cell id, requests replayed, running hit ratio, RSS) over a
  manager queue; the driver drains them into the tracker (and through it
  the metrics registry behind ``--serve``'s ``/progress`` and
  ``/metrics``) and emits a ``sweep.cell_stalled`` event when a running
  cell goes silent past the stall timeout.  With no tracker the sweep
  runs exactly the seed code path: no queue, no threads, no events.
* **One timeline (opt-in)** — when the driver's observation carries an
  enabled span recorder (``--trace-out``), every cell additionally runs
  under a worker-local :class:`~repro.obs.spans.SpanRecorder`; the span
  dicts ride the existing outcome tuple back (stamped with the worker's
  pid) and are absorbed grid-ordered under the driver's ``sweep.run``
  span, so a parallel run merges into one coherent multi-process
  timeline with one Perfetto lane per worker.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

import numpy as np

from repro.obs import NULL_OBS, MemoryRecorder, MetricsRegistry, Observation
from repro.obs.server import ProgressTracker, current_rss_bytes
from repro.obs.learner import LearnerTelemetry
from repro.obs.spans import SpanRecorder
from repro.obs.trace import TraceConfig
from repro.sim.engine import simulate
from repro.sim.metrics import SimulationResult, WindowMetrics, grid_order
from repro.util.bloom import _mix64
from repro.traces.packed import (
    PackedTrace,
    SharedTraceBuffers,
    SharedTraceDescriptor,
    attach_shared_trace,
)
from repro.traces.request import Trace

#: Default worker heartbeat cadence, in replayed requests per cell.
DEFAULT_HEARTBEAT_INTERVAL = 1000

#: Default seconds of worker silence before a cell is reported stalled.
DEFAULT_STALL_TIMEOUT = 30.0


__all__ = [
    "CellFailure",
    "CellSpec",
    "PackedTrace",  # re-exported; the class lives in repro.traces.packed
    "ShardSpec",
    "SweepCellError",
    "merge_shard_results",
    "run_sharded",
    "run_sweep",
    "shard_assignments",
    "shard_capacities",
    "shard_of",
]


@dataclass(frozen=True)
class CellSpec:
    """One sweep cell: which policy to build, at what capacity, and how.

    ``kwargs`` is stored as a sorted item tuple so specs pickle
    deterministically and never depend on dict insertion order.
    ``index`` is the cell's position in the grid; results are returned
    sorted by it.
    """

    policy: str
    capacity: int
    kwargs: tuple[tuple[str, object], ...] = ()
    index: int = -1

    @classmethod
    def make(
        cls,
        policy: str,
        capacity: int,
        kwargs: dict | None = None,
        index: int = -1,
    ) -> "CellSpec":
        items = tuple(sorted((kwargs or {}).items()))
        return cls(policy=policy, capacity=int(capacity), kwargs=items, index=index)

    def build(self):
        """Instantiate the policy (runs inside the worker)."""
        from repro.sim.runner import build_policy

        return build_policy(self.policy, self.capacity, **dict(self.kwargs))


@dataclass(frozen=True)
class CellFailure:
    """A captured worker-side exception for one cell."""

    index: int
    policy: str
    capacity: int
    error: str
    traceback: str

    def describe(self) -> str:
        return (
            f"cell ({self.policy!r}, capacity={self.capacity}) failed: "
            f"{self.error}\n{self.traceback}"
        )


class SweepCellError(RuntimeError):
    """One or more sweep cells raised.

    Raised only after every sibling cell has run to completion;
    ``results`` holds the surviving cells' results (``None`` at the
    failed indices) and ``failures`` the captured errors.
    """

    def __init__(
        self,
        failures: Sequence[CellFailure],
        results: Sequence[SimulationResult | None] = (),
    ):
        self.failures = list(failures)
        self.results = list(results)
        summary = "; ".join(
            f"({f.policy!r}, capacity={f.capacity}): {f.error}" for f in self.failures
        )
        details = "\n\n".join(f.describe() for f in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed — {summary}\n\n{details}"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: The shared trace, installed once per worker by the pool initializer
#: (or pointed at the caller's trace directly for in-process execution).
#: Workers hold the columnar representation; cells that need ``Request``
#: objects go through :func:`_cell_trace`.
_WORKER_TRACE: Trace | PackedTrace | None = None

#: Worker-local cache of the unpacked ``Trace`` — built at most once per
#: worker, only when an observed/traced cell needs the object path.
_WORKER_UNPACKED: Trace | None = None

#: The worker's handle on the shared-memory segment; kept alive for the
#: worker's lifetime because dropping it invalidates the mapped columns.
_WORKER_SHM = None

#: The heartbeat queue (a manager-queue proxy), installed alongside the
#: trace when the driver monitors progress; None otherwise.
_WORKER_HEARTBEAT_QUEUE = None


def _init_worker(packed: PackedTrace, heartbeat_queue=None) -> None:
    global _WORKER_TRACE, _WORKER_UNPACKED, _WORKER_HEARTBEAT_QUEUE
    _WORKER_TRACE = packed
    _WORKER_UNPACKED = None
    _WORKER_HEARTBEAT_QUEUE = heartbeat_queue


def _init_worker_shared(
    descriptor: SharedTraceDescriptor, heartbeat_queue=None
) -> None:
    """Pool initializer for the zero-copy path: map the driver's shared
    segment read-only instead of unpickling a trace copy."""
    global _WORKER_SHM
    packed, shm = attach_shared_trace(descriptor)
    _WORKER_SHM = shm
    _init_worker(packed, heartbeat_queue)


def _cell_trace(needs_objects: bool) -> Trace | PackedTrace:
    """The worker's trace, unpacked on demand (and cached) when a cell
    runs observed/traced and therefore replays the object path."""
    global _WORKER_UNPACKED
    trace = _WORKER_TRACE
    if not needs_objects or not isinstance(trace, PackedTrace):
        return trace
    if _WORKER_UNPACKED is None:
        _WORKER_UNPACKED = trace.unpack()
    return _WORKER_UNPACKED


#: One worker cell's outcome:
#: ``(index, result, failure, events, registry, spans)``.
#: ``events``/``registry`` are None unless the sweep runs observed;
#: ``spans`` (a list of span dicts recorded in the worker, stamped with
#: the worker's pid) is None unless the sweep records a timeline.
CellOutcome = tuple[
    int,
    SimulationResult | None,
    "CellFailure | None",
    "list[dict] | None",
    "MetricsRegistry | None",
    "list[dict] | None",
]


def _heartbeat_for(spec: CellSpec, policy, interval: int, sink):
    """Build the engine heartbeat callback for one cell, or None.

    ``sink`` is a callable taking the heartbeat dict (the inline path
    feeds the tracker directly); when absent, the worker's manager-queue
    proxy is used.  Queue posts are fire-and-forget: a full or broken
    queue drops the heartbeat rather than perturbing the simulation.
    """
    if interval <= 0:
        return None
    if sink is None:
        hb_queue = _WORKER_HEARTBEAT_QUEUE
        if hb_queue is None:
            return None

        def sink(message, _queue=hb_queue):
            try:
                _queue.put_nowait(message)
            except Exception:  # noqa: BLE001 — monitoring must never kill a cell
                pass

    def heartbeat(requests_done: int) -> None:
        sink(
            {
                "cell": spec.index,
                "requests": requests_done,
                "hits": policy.hits,
                "hit_ratio": policy.object_hit_ratio,
                "evictions": policy.evictions,
                "rss_bytes": current_rss_bytes(),
            }
        )

    return heartbeat


def _run_cell(
    spec: CellSpec,
    window_requests: int,
    warmup_requests: int,
    observe: bool,
    trace_config: TraceConfig | None = None,
    heartbeat_interval: int = 0,
    heartbeat_sink=None,
    record_spans: bool = False,
    record_learner: bool = False,
) -> CellOutcome:
    """Simulate one cell against the worker's shared trace.

    Never raises: failures come back as data so one exploding policy
    cannot poison the pool or its sibling cells.  When ``observe`` is
    set, the cell runs with a worker-local recorder and registry whose
    contents ship back with the result for the driver to merge — that is
    what keeps parallel runs as observable as serial ones.  When
    ``trace_config`` is set, the cell runs under a worker-local
    :class:`~repro.obs.trace.DecisionTracer` that ships back attached to
    the result (``result.decision_trace``) — results are grid-ordered,
    so the per-cell traces merge back exactly like recorders do.  A
    positive ``heartbeat_interval`` posts progress every that many
    requests (to ``heartbeat_sink``, or the worker's queue).

    When ``record_spans`` is set, the cell runs with a local
    :class:`~repro.obs.spans.SpanRecorder` — created here, *after* any
    fork, so its spans carry the worker's real pid — wrapping the replay
    in one ``cat="cell"`` span (plus the engine/LHR spans beneath it);
    the recorded dicts ride the outcome tuple back for the driver to
    absorb into one multi-process timeline.  Span recording alone does
    not force the object path: a spans-only observation keeps
    ``enabled`` False, so packed cells stay on the scalar fast path.

    When ``record_learner`` is set, the cell runs with its own
    :class:`~repro.obs.learner.LearnerTelemetry` sink; the engine stamps
    the per-window series onto ``result.learner``, which rides the
    outcome's result slot back for the driver to absorb grid-ordered.
    Like spans, learner telemetry alone keeps ``enabled`` False — the
    scalar fast path and accounting stay bit-identical.
    """
    span_recorder = SpanRecorder(role="worker") if record_spans else None
    learner = LearnerTelemetry() if record_learner else None
    if observe:
        cell_obs = Observation(
            recorder=MemoryRecorder(),
            registry=MetricsRegistry(),
            spans=span_recorder,
            learner=learner,
        )
    elif record_spans or record_learner:
        cell_obs = Observation.sidecars_only(
            spans=span_recorder, learner=learner
        )
    else:
        cell_obs = NULL_OBS
    cell_span = (
        span_recorder.begin(
            f"{spec.policy}@{spec.capacity}",
            cat="cell",
            cell=spec.index,
            policy=spec.policy,
            capacity=spec.capacity,
        )
        if span_recorder is not None
        else None
    )
    try:
        policy = spec.build()
        heartbeat = _heartbeat_for(spec, policy, heartbeat_interval, heartbeat_sink)
        result = simulate(
            policy,
            _cell_trace(observe or trace_config is not None),
            window_requests=window_requests,
            warmup_requests=warmup_requests,
            obs=cell_obs,
            tracer=trace_config.build() if trace_config is not None else None,
            heartbeat=heartbeat,
            heartbeat_interval=heartbeat_interval if heartbeat else 0,
        )
        result.cell_index = spec.index
        events = cell_obs.recorder.events if observe else None
        registry = cell_obs.registry if observe else None
        if cell_span is not None:
            span_recorder.end(
                cell_span, hit_ratio=round(result.object_hit_ratio, 6)
            )
        spans = span_recorder.as_dicts() if span_recorder is not None else None
        return spec.index, result, None, events, registry, spans
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe as data
        failure = CellFailure(
            index=spec.index,
            policy=spec.policy,
            capacity=spec.capacity,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        events = cell_obs.recorder.events if observe else None
        registry = cell_obs.registry if observe else None
        if cell_span is not None:
            span_recorder.end(cell_span, failed=True)
        spans = span_recorder.as_dicts() if span_recorder is not None else None
        return spec.index, None, failure, events, registry, spans


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


def run_sweep(
    trace: Trace | PackedTrace,
    specs: Sequence[CellSpec],
    window_requests: int = 0,
    warmup_requests: int = 0,
    jobs: int = 0,
    mp_context=None,
    obs: Observation = NULL_OBS,
    trace_config: TraceConfig | None = None,
    progress: ProgressTracker | None = None,
    heartbeat_interval_requests: int = DEFAULT_HEARTBEAT_INTERVAL,
    stall_timeout_seconds: float = DEFAULT_STALL_TIMEOUT,
    event_fields: dict | None = None,
) -> list[SimulationResult]:
    """Run every cell of ``specs`` over ``trace``; return grid-ordered results.

    ``jobs <= 1`` executes in-process (no pickling, no pool) with the
    exact same failure-capture semantics; ``jobs > 1`` fans out over a
    ``ProcessPoolExecutor``.  Either way the returned list is ordered by
    ``CellSpec.index`` and each cell's outcome is independent of how the
    others fared.

    When ``obs`` is enabled the sweep emits ``sweep.cell_start`` per cell
    up front, runs every cell under a cell-local recorder/registry, then
    replays the per-cell events and merges the per-cell registries into
    ``obs`` **in grid order** — so the observed stream is identical for
    serial and parallel execution — and finishes each cell with
    ``sweep.cell_done`` or ``sweep.cell_failed``.

    When ``trace_config`` is set, every cell additionally runs under its
    own :class:`~repro.obs.trace.DecisionTracer` built from the config;
    each returned result carries its cell's tracer in
    ``result.decision_trace``, grid-ordered with the results themselves.

    A ``progress`` tracker turns on live monitoring: the grid is
    registered up front, every cell posts a heartbeat each
    ``heartbeat_interval_requests`` replayed requests, and a running cell
    silent for longer than ``stall_timeout_seconds`` raises a
    ``sweep.cell_stalled`` event on ``obs`` (once per stall).  Heartbeats
    feed only the tracker — never the recorder stream — so observed
    serial/parallel equivalence is untouched, and with ``progress=None``
    the sweep runs the exact unmonitored code path.

    ``event_fields`` stamps extra constant fields onto every event the
    sweep contributes to ``obs`` (cell lifecycle events and the re-merged
    worker streams alike).  The workload lab uses it to tag each sweep of
    a scenario matrix with ``scenario=<name>`` so one recorder stream can
    be sliced per scenario afterwards; ``None`` (the default) emits the
    exact historical stream.
    """
    specs = [
        spec if spec.index >= 0 else replace(spec, index=i)
        for i, spec in enumerate(specs)
    ]
    indices = [spec.index for spec in specs]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate cell indices in sweep specs: {indices}")
    if not specs:
        return []

    if progress is not None:
        progress.register_cells(
            (spec.index, spec.policy, spec.capacity) for spec in specs
        )

    observing = obs.enabled
    record_spans = obs.spans.enabled
    record_learner = obs.learner.enabled
    tag = dict(event_fields or {})
    if observing:
        for spec in sorted(specs, key=lambda s: s.index):
            obs.emit(
                "sweep.cell_start",
                cell=spec.index,
                policy=spec.policy,
                capacity=spec.capacity,
                **tag,
            )

    heartbeat_interval = (
        heartbeat_interval_requests if progress is not None else 0
    )
    sweep_span = (
        obs.spans.begin(
            "sweep.run", cat="sweep", cells=len(specs), jobs=jobs or 1
        )
        if record_spans
        else None
    )
    try:
        if jobs and jobs > 1:
            outcomes = _run_pooled(
                trace, specs, window_requests, warmup_requests, jobs, mp_context,
                observing, trace_config, progress, heartbeat_interval,
                stall_timeout_seconds, obs, record_spans,
                record_learner=record_learner,
            )
        else:
            outcomes = _run_inline(
                trace, specs, window_requests, warmup_requests, observing,
                trace_config, progress, heartbeat_interval,
                record_spans=record_spans, record_learner=record_learner,
                learner_hub=obs.learner if record_learner else None,
            )

        by_index = {outcome[0]: outcome for outcome in outcomes}
        ordered = [by_index[spec.index] for spec in specs]
        if record_learner:
            # Worker->driver learner merge, grid-ordered: per-cell series
            # are independent and keyed by index, so absorption order
            # cannot change content — serial and parallel sweeps yield
            # identical series.  (Arrival-time absorption in the runners
            # already filed most cells for the live ``/learner`` view;
            # this pass is the deterministic final word.)
            for spec in sorted(specs, key=lambda s: s.index):
                result = by_index[spec.index][1]
                if result is not None:
                    obs.learner.absorb(spec.index, result.learner)
        if record_spans:
            # Grid-ordered absorption of cell span batches under the
            # sweep span.  Pooled outcomes arrive pre-absorbed (under
            # ``sweep.gather``, see ``_run_pooled``) with their span slot
            # cleared, so this covers the inline path — and keeps the
            # merged timeline structurally identical either way.
            for spec in sorted(specs, key=lambda s: s.index):
                obs.spans.absorb(by_index[spec.index][5], parent=sweep_span)
        if observing:
            _merge_observations(obs, specs, by_index, tag)
    finally:
        if sweep_span is not None:
            obs.spans.end(sweep_span)
    failures = [outcome[2] for outcome in ordered if outcome[2] is not None]
    results = [outcome[1] for outcome in ordered]
    if failures:
        raise SweepCellError(failures, results)
    return grid_order(results)


def _merge_observations(
    obs: Observation,
    specs: Sequence[CellSpec],
    by_index: dict[int, CellOutcome],
    tag: dict | None = None,
) -> None:
    """Fold per-cell events and registries into the parent, grid-ordered.

    ``tag`` fields (e.g. ``scenario=<name>``) are stamped onto every
    re-emitted event; an empty/None tag reproduces the historical stream
    byte for byte.
    """
    tag = tag or {}
    for spec in sorted(specs, key=lambda s: s.index):
        index, result, failure, events, registry = by_index[spec.index][:5]
        for event in events or ():
            fields = {
                k: v for k, v in event.items() if k not in ("event", "seq")
            }
            obs.emit(event["event"], cell=index, **fields, **tag)
        if registry is not None:
            obs.registry.merge(registry)
        if failure is not None:
            obs.emit(
                "sweep.cell_failed",
                cell=index,
                policy=spec.policy,
                capacity=spec.capacity,
                error=failure.error,
                **tag,
            )
        elif result is not None:
            obs.emit(
                "sweep.cell_done",
                cell=index,
                policy=spec.policy,
                capacity=spec.capacity,
                requests=result.requests,
                hits=result.hits,
                hit_ratio=round(result.object_hit_ratio, 6),
                runtime_seconds=round(result.runtime_seconds, 6),
                **tag,
            )


def _run_inline(
    trace: Trace | PackedTrace,
    specs: Sequence[CellSpec],
    window_requests: int,
    warmup_requests: int,
    observe: bool,
    trace_config: TraceConfig | None = None,
    progress: ProgressTracker | None = None,
    heartbeat_interval: int = 0,
    record_spans: bool = False,
    record_learner: bool = False,
    learner_hub=None,
) -> list[CellOutcome]:
    """Serial execution sharing the worker code path (and its capture).

    With a tracker, heartbeats skip the queue and feed it directly.
    ``learner_hub`` (the driver's learner sink) receives each cell's
    series as the cell completes, so a live ``/learner`` scrape during a
    serial sweep sees the finished cells."""
    global _WORKER_TRACE, _WORKER_UNPACKED
    previous = _WORKER_TRACE
    previous_unpacked = _WORKER_UNPACKED
    _WORKER_TRACE = trace
    _WORKER_UNPACKED = None
    sink = (
        (lambda message: progress.heartbeat(**message))
        if progress is not None
        else None
    )
    try:
        outcomes = []
        for spec in specs:
            outcome = _run_cell(
                spec, window_requests, warmup_requests, observe, trace_config,
                heartbeat_interval=heartbeat_interval, heartbeat_sink=sink,
                record_spans=record_spans, record_learner=record_learner,
            )
            if progress is not None:
                _track_outcome(progress, outcome)
            if learner_hub is not None and outcome[1] is not None:
                learner_hub.absorb(outcome[0], outcome[1].learner)
            outcomes.append(outcome)
        return outcomes
    finally:
        _WORKER_TRACE = previous
        _WORKER_UNPACKED = previous_unpacked


def _track_outcome(progress: ProgressTracker, outcome: CellOutcome) -> None:
    """Mark one finished cell on the tracker from its outcome tuple."""
    index, result, failure = outcome[0], outcome[1], outcome[2]
    if failure is not None:
        progress.cell_failed(index, error=failure.error)
    elif result is not None:
        progress.cell_done(
            index,
            requests=result.requests,
            hit_ratio=result.object_hit_ratio,
        )


def _drain_heartbeats(
    hb_queue,
    progress: ProgressTracker,
    stop_event: threading.Event,
    stall_timeout_seconds: float,
    obs: Observation,
) -> None:
    """Driver-side heartbeat pump: queue → tracker, plus stall checks.

    Runs in a daemon thread for the lifetime of the pool; after the stop
    event it keeps draining until the queue reads empty so no heartbeat
    posted before the last cell finished is lost.
    """
    stopping = False
    while True:
        try:
            message = hb_queue.get(timeout=0.2)
        except queue_module.Empty:
            if stopping:
                return
            stopping = stop_event.is_set()
            _check_stalls(progress, stall_timeout_seconds, obs)
            continue
        except (EOFError, OSError, BrokenPipeError):
            return  # manager shut down under us
        try:
            progress.heartbeat(**message)
        except Exception:  # noqa: BLE001 — monitoring must not kill the drain
            pass


def _check_stalls(
    progress: ProgressTracker, stall_timeout_seconds: float, obs: Observation
) -> None:
    if stall_timeout_seconds <= 0:
        return
    for stalled in progress.stalled_cells(stall_timeout_seconds):
        if obs.enabled:
            obs.emit(
                "sweep.cell_stalled",
                cell=stalled.cell.index,
                policy=stalled.cell.policy,
                capacity=stalled.cell.capacity,
                seconds_since_heartbeat=round(
                    stalled.seconds_since_heartbeat, 3
                ),
            )


def _run_pooled(
    trace: Trace | PackedTrace,
    specs: Sequence[CellSpec],
    window_requests: int,
    warmup_requests: int,
    jobs: int,
    mp_context,
    observe: bool,
    trace_config: TraceConfig | None = None,
    progress: ProgressTracker | None = None,
    heartbeat_interval: int = 0,
    stall_timeout_seconds: float = DEFAULT_STALL_TIMEOUT,
    obs: Observation = NULL_OBS,
    record_spans: bool = False,
    record_learner: bool = False,
) -> list[CellOutcome]:
    """Fan cells out over worker processes; the trace crosses the process
    boundary zero times via shared memory (or once per worker as pickled
    arrays where shared memory is unavailable).

    With ``record_spans``, the driver brackets the submit loop in a
    ``sweep.scatter`` span and the result drain in ``sweep.gather`` —
    the driver-lane complements to the workers' per-cell spans.

    With a tracker, a ``Manager`` queue proxy ships to every worker via
    the pool initializer (a plain ``multiprocessing.Queue`` cannot ride
    ``initargs``) and a driver-side thread drains it into the tracker,
    checking for stalled cells between reads.

    The driver owns the shared segment: the ``finally`` below releases it
    on normal completion, worker death (``BrokenProcessPool``) and
    ``KeyboardInterrupt`` alike — ``tests/sim/test_parallel.py`` checks
    :func:`~repro.traces.packed.live_segment_names` stays empty.
    """
    packed = trace if isinstance(trace, PackedTrace) else PackedTrace.from_trace(trace)
    workers = min(jobs, len(specs))
    outcomes: list[CellOutcome] = []

    manager = None
    hb_queue = None
    drainer = None
    stop_drain = threading.Event()
    if progress is not None and heartbeat_interval > 0:
        manager = (mp_context or multiprocessing).Manager()
        hb_queue = manager.Queue()
        drainer = threading.Thread(
            target=_drain_heartbeats,
            args=(hb_queue, progress, stop_drain, stall_timeout_seconds, obs),
            name="repro-sweep-heartbeats",
            daemon=True,
        )
        drainer.start()
    shared = None
    try:
        shared = SharedTraceBuffers.create(packed)
    except (OSError, ValueError):
        shared = None  # no usable /dev/shm — ship the arrays by pickle
    if shared is not None:
        initializer = _init_worker_shared
        payload = shared.descriptor
    else:
        initializer = _init_worker
        payload = packed
    initargs = (payload,) if hb_queue is None else (payload, hb_queue)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            scatter = (
                obs.spans.begin(
                    "sweep.scatter",
                    cat="sweep",
                    cells=len(specs),
                    workers=workers,
                )
                if record_spans
                else None
            )
            futures = {
                pool.submit(
                    _run_cell, spec, window_requests, warmup_requests,
                    observe, trace_config, heartbeat_interval,
                    record_spans=record_spans, record_learner=record_learner,
                ): spec
                for spec in specs
            }
            if scatter is not None:
                obs.spans.end(scatter)
            gather = (
                obs.spans.begin("sweep.gather", cat="sweep")
                if record_spans
                else None
            )
            for future in as_completed(futures):
                outcome = future.result()
                if gather is not None and outcome[5]:
                    # Absorb worker spans here, parented under the gather
                    # span: the driver spends gather *waiting* on cells,
                    # so the critical path descends through it into the
                    # straggler cell instead of dead-ending at the wait.
                    obs.spans.absorb(outcome[5], parent=gather)
                    outcome = outcome[:5] + (None,)
                if progress is not None:
                    _track_outcome(progress, outcome)
                if record_learner and outcome[1] is not None:
                    # Arrival-time absorb for the live /learner view; the
                    # grid-ordered pass in run_sweep re-files the same
                    # per-cell series, so order here is immaterial.
                    obs.learner.absorb(outcome[0], outcome[1].learner)
                outcomes.append(outcome)
            if gather is not None:
                obs.spans.end(gather, cells=len(outcomes))
    except BrokenProcessPool as exc:
        done = {outcome[0] for outcome in outcomes}
        missing = [spec for spec in specs if spec.index not in done]
        if progress is not None:
            for spec in missing:
                progress.cell_failed(
                    spec.index, error=f"worker process died: {exc}"
                )
        failures = [
            CellFailure(
                index=spec.index,
                policy=spec.policy,
                capacity=spec.capacity,
                error=f"worker process died: {exc}",
                traceback="".join(traceback.format_exception(exc)),
            )
            for spec in missing
        ]
        results: list[SimulationResult | None] = [None] * len(specs)
        by_index = {spec.index: pos for pos, spec in enumerate(specs)}
        for outcome in outcomes:
            results[by_index[outcome[0]]] = outcome[1]
        raise SweepCellError(failures, results) from exc
    finally:
        if shared is not None:
            shared.release()
        if drainer is not None:
            stop_drain.set()
            drainer.join(timeout=5.0)
        if manager is not None:
            manager.shutdown()
    return outcomes


# ----------------------------------------------------------------------
# Hash-sharded single-trace replay
# ----------------------------------------------------------------------
#
# ``run_sweep`` parallelizes *across* grid cells; one huge cell still
# replays serially.  ``run_sharded`` parallelizes *within* one cell by
# partitioning the object-id space: requests hash-route to one of N
# shards, each shard runs an independent policy instance at its slice of
# the capacity, and the per-shard counters merge back shard-ordered.
#
# Semantics, stated precisely:
#
# * The partition is a **deterministic pure function of the object id**
#   (SplitMix64 mixing, never Python ``hash()``), so the same trace
#   always splits the same way across runs, platforms and processes.
# * A sharded replay is **not** bit-identical to the unsharded cache —
#   eviction is a global competition that sharding decouples (except
#   ``shards=1``, which is the unsharded replay exactly).  What *is*
#   exact: sharded-parallel == sharded-serial, bit for bit, for every
#   policy — each shard is self-contained, so execution order and
#   process boundaries cannot change any counter.
# * Window/warmup edges are **global**: shard workers break their
#   subsequence at the positions where the global request index crosses
#   a window boundary (via ``searchsorted`` on the shard's global
#   indices), so the merged per-window series aligns with an unsharded
#   run's reporting grid.
#
# The trace crosses the process boundary the same way sweep cells do:
# one shared-memory segment, workers attach read-only and gather their
# own subsequence (each recomputes the assignment vector from the shared
# id column — vectorized, and cheaper than pickling index arrays).


def shard_of(obj_id: int, shards: int) -> int:
    """The shard owning ``obj_id`` — SplitMix64-mixed, mod ``shards``."""
    return _mix64(obj_id & ((1 << 64) - 1)) % shards


def shard_assignments(obj_ids, shards: int) -> np.ndarray:
    """Vectorized :func:`shard_of` over an id column.

    Bit-identical to the scalar form: uint64 arithmetic wraps exactly
    like the masked Python-int mixer (pinned by the parallel test
    suite), so driver and workers always agree on the partition.
    """
    value = np.asarray(obj_ids).astype(np.uint64)
    value = value + np.uint64(0x9E3779B97F4A7C15)
    value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    value = value ^ (value >> np.uint64(31))
    return (value % np.uint64(shards)).astype(np.int64)


def shard_capacities(capacity: int, shards: int) -> list[int]:
    """Split ``capacity`` across ``shards``: ``capacity // shards`` each,
    +1 byte for the first ``capacity % shards`` shards, so the slices
    sum exactly to the original capacity."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    base, remainder = divmod(int(capacity), shards)
    if base <= 0:
        raise ValueError(
            f"capacity {capacity} cannot be split into {shards} positive "
            "shard capacities"
        )
    return [base + 1 if s < remainder else base for s in range(shards)]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a sharded replay: which slice of the id space, at
    what slice of the capacity.  Picklable; the policy is constructed
    inside the worker, exactly like :class:`CellSpec`."""

    policy: str
    capacity: int  # this shard's capacity slice
    shard: int
    shards: int
    kwargs: tuple[tuple[str, object], ...] = ()

    def build(self):
        from repro.sim.runner import build_policy

        return build_policy(self.policy, self.capacity, **dict(self.kwargs))


def _replay_shard(
    policy,
    packed: PackedTrace,
    global_idx: np.ndarray,
    window_requests: int,
    warmup_requests: int,
    metadata_probe_interval: int = 1000,
) -> SimulationResult:
    """Replay one shard's subsequence through ``policy.replay_span``.

    ``global_idx`` holds the shard's request positions in the *global*
    trace, ascending.  All bookkeeping edges are global: the chunk loop
    breaks where the global index crosses a window boundary or the
    warmup edge (located locally via ``searchsorted``), and metadata is
    probed after exactly the requests the unsharded packed loop probes
    after (global index multiple of the probe interval) — so with one
    shard this reproduces ``_replay_packed``'s result field for field.

    Accounting is pure counter deltas at the edge snapshots, the same
    discipline ``_replay_packed`` uses, so any policy whose
    ``replay_span`` is exact at arbitrary chunkings (the fast-path
    contract) is exact here too.
    """
    total = len(packed)
    local_ids = packed.obj_ids[global_idx].tolist()
    local_sizes = packed.sizes[global_idx].tolist()
    local_times = packed.times[global_idx].tolist()
    m = int(global_idx.size)

    edges = [np.array([m], dtype=np.intp)]
    num_windows = 0
    closes = np.empty(0, dtype=np.intp)
    if window_requests:
        num_windows = -(-total // window_requests) if total else 0
        close_globals = np.minimum(
            np.arange(1, num_windows + 1, dtype=np.int64) * window_requests,
            total,
        )
        closes = np.searchsorted(global_idx, close_globals).astype(np.intp)
        edges.append(closes)
    warm_local = 0
    if warmup_requests:
        warm_local = int(np.searchsorted(global_idx, warmup_requests))
        edges.append(np.array([warm_local], dtype=np.intp))
    if metadata_probe_interval and m:
        probes = (
            np.nonzero(global_idx % metadata_probe_interval == 0)[0] + 1
        ).astype(np.intp)
        edges.append(probes)
    stops = np.unique(np.concatenate(edges)).tolist()

    def snap():
        return (
            policy.hits,
            policy.hit_bytes,
            policy.hit_bytes + policy.miss_bytes,
            policy.evictions,
        )

    snapshots = {0: snap()}
    replay_span = policy.replay_span
    peak_metadata = 0
    start = time.perf_counter()
    i = 0
    for stop in stops:
        if stop <= i:
            continue
        replay_span(local_ids, local_sizes, local_times, i, stop)
        i = stop
        snapshots[i] = snap()
        if (
            metadata_probe_interval
            and global_idx[i - 1] % metadata_probe_interval == 0
        ):
            metadata = policy.metadata_bytes()
            if metadata > peak_metadata:
                peak_metadata = metadata
    runtime = time.perf_counter() - start

    result = SimulationResult(
        policy=policy.name,
        trace=packed.name,
        capacity=policy.capacity,
    )
    base = snapshots[warm_local]
    final = snapshots[i] if i in snapshots else snap()
    result.requests = m - warm_local
    result.hits = final[0] - base[0]
    result.hit_bytes = final[1] - base[1]
    result.total_bytes = final[2] - base[2]
    result.evictions = policy.evictions
    result.admissions = policy.admissions
    result.runtime_seconds = runtime
    result.peak_metadata_bytes = max(peak_metadata, policy.metadata_bytes())
    previous = 0
    for k in range(num_windows):
        close = int(closes[k])
        before, after = snapshots[previous], snapshots[close]
        result.windows.append(
            WindowMetrics(
                index=k,
                requests=close - previous,
                hits=after[0] - before[0],
                hit_bytes=after[1] - before[1],
                total_bytes=after[2] - before[2],
                evictions=after[3] - before[3],
            )
        )
        previous = close
    return result


def _run_shard(
    spec: ShardSpec,
    window_requests: int,
    warmup_requests: int,
    metadata_probe_interval: int = 1000,
) -> tuple[int, SimulationResult | None, CellFailure | None]:
    """Worker entry for one shard; never raises (failures ride back as
    data, like sweep cells).  Recomputes the assignment vector from the
    worker's shared id column — no index arrays cross the pipe."""
    try:
        trace = _WORKER_TRACE
        packed = (
            trace
            if isinstance(trace, PackedTrace)
            else PackedTrace.from_trace(trace)
        )
        assignment = shard_assignments(packed.obj_ids, spec.shards)
        global_idx = np.nonzero(assignment == spec.shard)[0]
        policy = spec.build()
        result = _replay_shard(
            policy,
            packed,
            global_idx,
            window_requests,
            warmup_requests,
            metadata_probe_interval,
        )
        result.cell_index = spec.shard
        result.extra["shard"] = spec.shard
        result.extra["shards"] = spec.shards
        return spec.shard, result, None
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe as data
        failure = CellFailure(
            index=spec.shard,
            policy=spec.policy,
            capacity=spec.capacity,
            error=f"shard {spec.shard}/{spec.shards}: {type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        return spec.shard, None, failure


def merge_shard_results(
    shard_results: Sequence[SimulationResult],
    policy: str,
    trace_name: str,
    capacity: int,
) -> SimulationResult:
    """Fold per-shard results into one, shard-ordered.

    Counters and per-window series are exact sums (every request lands
    in exactly one shard).  ``peak_metadata_bytes`` is the *sum* of the
    per-shard peaks — an upper bound on the true simultaneous footprint,
    since shards may not peak at the same moment.  ``runtime_seconds``
    is the slowest shard (the parallel wall-clock floor); the driver
    overwrites it with measured wall clock.
    """
    ordered = sorted(shard_results, key=lambda r: r.cell_index)
    merged = SimulationResult(policy=policy, trace=trace_name, capacity=capacity)
    merged.extra["shards"] = len(ordered)
    for result in ordered:
        merged.requests += result.requests
        merged.hits += result.hits
        merged.hit_bytes += result.hit_bytes
        merged.total_bytes += result.total_bytes
        merged.evictions += result.evictions
        merged.admissions += result.admissions
        merged.peak_metadata_bytes += result.peak_metadata_bytes
        merged.runtime_seconds = max(
            merged.runtime_seconds, result.runtime_seconds
        )
        for k, window in enumerate(result.windows):
            if k >= len(merged.windows):
                merged.windows.append(WindowMetrics(index=k))
            target = merged.windows[k]
            target.requests += window.requests
            target.hits += window.hits
            target.hit_bytes += window.hit_bytes
            target.total_bytes += window.total_bytes
            target.evictions += window.evictions
    return merged


def run_sharded(
    trace: Trace | PackedTrace,
    policy: str,
    capacity: int,
    shards: int,
    kwargs: dict | None = None,
    window_requests: int = 0,
    warmup_requests: int = 0,
    jobs: int = 0,
    mp_context=None,
    metadata_probe_interval: int = 1000,
) -> SimulationResult:
    """Replay one trace through one policy, hash-sharded ``shards`` ways.

    ``jobs <= 1`` runs the shards serially in-process; ``jobs > 1`` fans
    them out over a process pool with the trace in one shared-memory
    segment (pickled-arrays fallback where shared memory is unusable).
    Either way the merged result is bit-identical — each shard is an
    independent policy instance over a deterministic slice of the id
    space, so scheduling cannot perturb any counter.  ``shards=1``
    reproduces the unsharded packed replay exactly.

    Raises :class:`SweepCellError` after every shard has run if any
    failed, with per-shard failures attached; the shared segment is
    released on every exit path (``live_segment_names`` stays clean).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if window_requests < 0:
        raise ValueError("window_requests must be non-negative")
    if warmup_requests < 0:
        raise ValueError("warmup_requests must be non-negative")
    if warmup_requests and warmup_requests >= len(trace):
        raise ValueError(
            f"warmup_requests ({warmup_requests}) must be smaller than the "
            f"trace ({len(trace)} requests); nothing would be measured"
        )
    packed = trace if isinstance(trace, PackedTrace) else PackedTrace.from_trace(trace)
    capacities = shard_capacities(capacity, shards)
    items = tuple(sorted((kwargs or {}).items()))
    specs = [
        ShardSpec(
            policy=policy,
            capacity=capacities[s],
            shard=s,
            shards=shards,
            kwargs=items,
        )
        for s in range(shards)
    ]
    specs[0].build()  # fail fast in the driver on bad policy/kwargs

    start = time.perf_counter()
    if jobs and jobs > 1 and shards > 1:
        outcomes = _run_shards_pooled(
            packed, specs, window_requests, warmup_requests, jobs, mp_context,
            metadata_probe_interval,
        )
    else:
        outcomes = _run_shards_inline(
            packed, specs, window_requests, warmup_requests,
            metadata_probe_interval,
        )
    outcomes.sort(key=lambda outcome: outcome[0])
    failures = [outcome[2] for outcome in outcomes if outcome[2] is not None]
    if failures:
        raise SweepCellError(failures, [outcome[1] for outcome in outcomes])
    merged = merge_shard_results(
        [outcome[1] for outcome in outcomes], policy, packed.name, capacity
    )
    merged.runtime_seconds = time.perf_counter() - start
    return merged


def _run_shards_inline(
    packed: PackedTrace,
    specs: Sequence[ShardSpec],
    window_requests: int,
    warmup_requests: int,
    metadata_probe_interval: int,
) -> list[tuple[int, SimulationResult | None, CellFailure | None]]:
    """Serial shard execution through the worker code path."""
    global _WORKER_TRACE, _WORKER_UNPACKED
    previous = _WORKER_TRACE
    previous_unpacked = _WORKER_UNPACKED
    _WORKER_TRACE = packed
    _WORKER_UNPACKED = None
    try:
        return [
            _run_shard(
                spec, window_requests, warmup_requests, metadata_probe_interval
            )
            for spec in specs
        ]
    finally:
        _WORKER_TRACE = previous
        _WORKER_UNPACKED = previous_unpacked


def _run_shards_pooled(
    packed: PackedTrace,
    specs: Sequence[ShardSpec],
    window_requests: int,
    warmup_requests: int,
    jobs: int,
    mp_context,
    metadata_probe_interval: int,
) -> list[tuple[int, SimulationResult | None, CellFailure | None]]:
    """Fan shards out over worker processes, sharing the trace the same
    way sweep cells do (one shared segment, pickle fallback); the driver
    owns and always releases the segment."""
    workers = min(jobs, len(specs))
    shared = None
    try:
        shared = SharedTraceBuffers.create(packed)
    except (OSError, ValueError):
        shared = None  # no usable /dev/shm — ship the arrays by pickle
    if shared is not None:
        initializer = _init_worker_shared
        payload = shared.descriptor
    else:
        initializer = _init_worker
        payload = packed
    outcomes: list[tuple[int, SimulationResult | None, CellFailure | None]] = []
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=initializer,
            initargs=(payload,),
        ) as pool:
            futures = {
                pool.submit(
                    _run_shard, spec, window_requests, warmup_requests,
                    metadata_probe_interval,
                ): spec
                for spec in specs
            }
            for future in as_completed(futures):
                outcomes.append(future.result())
    except BrokenProcessPool as exc:
        done = {outcome[0] for outcome in outcomes}
        failures = [
            CellFailure(
                index=spec.shard,
                policy=spec.policy,
                capacity=spec.capacity,
                error=f"worker process died: {exc}",
                traceback="".join(traceback.format_exception(exc)),
            )
            for spec in specs
            if spec.shard not in done
        ]
        raise SweepCellError(
            failures, [outcome[1] for outcome in outcomes]
        ) from exc
    finally:
        if shared is not None:
            shared.release()
    return outcomes
