"""Analytical LRU model: Che's approximation.

Under the Independent Reference Model with Poisson request rates
``lambda_i``, Che's approximation gives the per-content LRU hit
probability in closed form: content ``i`` hits with probability
``1 - exp(-lambda_i * T_C)`` where the *characteristic time* ``T_C``
solves ``sum_i s_i (1 - exp(-lambda_i T_C)) = C``.

This closes the theory loop of Section 3: the same per-content rate
estimates HRO uses also predict what LRU itself will achieve, so the gap
HRO-vs-Che is an analytical preview of the gap LHR tries to close.  The
model is validated against trace-driven LRU simulation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CheModel:
    """Fitted Che approximation for one (rates, sizes, capacity) system."""

    rates: np.ndarray
    sizes: np.ndarray
    capacity: int
    characteristic_time: float

    def hit_probability(self, index: int) -> float:
        """Stationary hit probability of content ``index``."""
        return float(1.0 - np.exp(-self.rates[index] * self.characteristic_time))

    def hit_probabilities(self) -> np.ndarray:
        return 1.0 - np.exp(-self.rates * self.characteristic_time)

    @property
    def object_hit_ratio(self) -> float:
        """Request-weighted aggregate hit probability."""
        weights = self.rates / self.rates.sum()
        return float(np.dot(weights, self.hit_probabilities()))

    @property
    def byte_hit_ratio(self) -> float:
        traffic = self.rates * self.sizes
        weights = traffic / traffic.sum()
        return float(np.dot(weights, self.hit_probabilities()))

    @property
    def expected_occupancy(self) -> float:
        """Expected cached bytes — equals capacity by construction."""
        return float(np.dot(self.sizes, self.hit_probabilities()))


def fit_che_model(
    rates,
    sizes,
    capacity: int,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> CheModel:
    """Solve for the characteristic time by bisection.

    ``rates`` and ``sizes`` are per-content arrays (or dicts with equal
    keys).  The expected-occupancy function is strictly increasing in
    ``T_C``, so bisection converges unconditionally.
    """
    if isinstance(rates, dict):
        keys = sorted(rates)
        if not isinstance(sizes, dict) or sorted(sizes) != keys:
            raise ValueError("rates and sizes dicts must share keys")
        rate_arr = np.asarray([rates[k] for k in keys], dtype=np.float64)
        size_arr = np.asarray([sizes[k] for k in keys], dtype=np.float64)
    else:
        rate_arr = np.asarray(rates, dtype=np.float64)
        size_arr = np.asarray(sizes, dtype=np.float64)
    if rate_arr.shape != size_arr.shape or rate_arr.ndim != 1:
        raise ValueError("rates and sizes must be 1-D arrays of equal length")
    if (rate_arr < 0).any() or (size_arr <= 0).any():
        raise ValueError("rates must be >= 0 and sizes > 0")
    if capacity <= 0:
        raise ValueError("capacity must be positive")

    total_bytes = float(size_arr.sum())
    if capacity >= total_bytes:
        # Everything fits: infinite characteristic time (hit prob -> 1 for
        # every content with a positive rate).
        return CheModel(rate_arr, size_arr, capacity, float("inf"))

    def occupancy(t: float) -> float:
        return float(np.dot(size_arr, 1.0 - np.exp(-rate_arr * t)))

    lo, hi = 0.0, 1.0
    while occupancy(hi) < capacity and hi < 1e18:
        hi *= 2.0
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        if occupancy(mid) < capacity:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * max(hi, 1.0):
            break
    return CheModel(rate_arr, size_arr, capacity, 0.5 * (lo + hi))


def che_hit_ratio_curve(rates, sizes, capacities) -> list[tuple[int, float]]:
    """Object hit ratio predicted by Che at each capacity."""
    return [
        (int(c), fit_che_model(rates, sizes, int(c)).object_hit_ratio)
        for c in capacities
    ]
