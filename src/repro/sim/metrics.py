"""Simulation metrics.

``SimulationResult`` captures everything the paper's evaluation reports
per (policy, trace, cache size) cell: object/byte hit ratios, WAN traffic
(= bytes fetched from the origin, i.e. all miss bytes — a miss must be
fetched to serve the user whether or not it is admitted), per-window hit
series (Figure 7), runtime and metadata overhead (Figure 9).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


@dataclass
class WindowMetrics:
    """Hit counters for one reporting window."""

    index: int
    requests: int = 0
    hits: int = 0
    hit_bytes: int = 0
    total_bytes: int = 0
    #: Evictions performed during this window (delta of the policy's
    #: monotone eviction counter at the window edges) — the per-window
    #: "eviction pressure" column the run ledger persists.
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0


@dataclass
class SimulationResult:
    """Aggregate outcome of one policy run over one trace."""

    policy: str
    trace: str
    capacity: int
    requests: int = 0
    hits: int = 0
    hit_bytes: int = 0
    total_bytes: int = 0
    evictions: int = 0
    admissions: int = 0
    runtime_seconds: float = 0.0
    peak_metadata_bytes: int = 0
    windows: list[WindowMetrics] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: The run's :class:`~repro.obs.trace.DecisionTracer`, when the
    #: simulation was traced (``simulate(..., tracer=...)`` or a sweep
    #: with ``trace_config``); ``None`` otherwise.  Rides the result
    #: across process boundaries so parallel sweeps return per-cell
    #: decision traces in grid order, exactly like recorders.
    decision_trace: object | None = None
    #: The run's per-window learner-health series
    #: (:class:`~repro.obs.learner.LearnerSeries`), when the simulation
    #: ran with the learner telemetry sink enabled; ``None`` otherwise.
    #: Plain numpy columns, so it pickles across the worker->driver pipe
    #: and sweeps return per-cell series in grid order.
    learner: object | None = None
    #: Position of this result in its sweep grid (-1 outside a sweep).
    #: Parallel execution completes cells out of order; this is the key
    #: that restores the caller's (capacity, policy) grid order.
    cell_index: int = -1

    @property
    def object_hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def miss_bytes(self) -> int:
        return self.total_bytes - self.hit_bytes

    @property
    def wan_traffic_bytes(self) -> int:
        """Bytes pulled over the WAN from the origin (every miss fetches)."""
        return self.miss_bytes

    @property
    def wan_traffic_ratio(self) -> float:
        """WAN bytes as a fraction of total requested bytes."""
        return self.miss_bytes / self.total_bytes if self.total_bytes else 0.0

    def counters(self) -> dict:
        """The integer counters that determinism tests compare exactly."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "total_bytes": self.total_bytes,
            "evictions": self.evictions,
            "admissions": self.admissions,
        }

    def window_series(self) -> list[tuple[int, int, int, int]]:
        """Per-window ``(requests, hits, hit_bytes, total_bytes)`` tuples."""
        return [
            (w.requests, w.hits, w.hit_bytes, w.total_bytes) for w in self.windows
        ]

    def as_row(self) -> dict:
        """Flat dict for result tables."""
        return {
            "policy": self.policy,
            "trace": self.trace,
            "capacity": self.capacity,
            "requests": self.requests,
            "object_hit_ratio": round(self.object_hit_ratio, 4),
            "byte_hit_ratio": round(self.byte_hit_ratio, 4),
            "wan_traffic_gb": round(self.wan_traffic_bytes / (1 << 30), 3),
            "evictions": self.evictions,
            "runtime_seconds": round(self.runtime_seconds, 3),
            "peak_metadata_mb": round(self.peak_metadata_bytes / (1 << 20), 3),
            **self.extra,
        }


def grid_order(results: Iterable[SimulationResult]) -> list[SimulationResult]:
    """Sort sweep results back into grid order by ``cell_index``.

    Results that never went through a sweep (``cell_index == -1``) keep
    their relative order and sort ahead of indexed ones only if every
    index is -1 (plain sorted() is stable, so a fully-unindexed list is
    returned unchanged).
    """
    return sorted(results, key=lambda result: result.cell_index)


def merge_sweeps(
    *sweeps: Sequence[SimulationResult],
) -> list[SimulationResult]:
    """Concatenate several sweeps, reindexing cells into one global grid."""
    merged: list[SimulationResult] = []
    for sweep in sweeps:
        for result in grid_order(sweep):
            result.cell_index = len(merged)
            merged.append(result)
    return merged
