"""Hit-rate curves from reuse distances (Mattson's stack algorithm).

A CDN operator provisioning cache sizes wants the whole curve
``hit_ratio(cache_size)`` rather than point simulations — the
"footprint descriptor" methodology (Sundarrajan et al., CoNEXT '17,
cited by the paper).  For LRU the curve follows from the *reuse
distance* of each request: the number of distinct bytes touched since
the previous request to the same content.  A request hits in an LRU
cache of capacity ``C`` iff its reuse distance is < ``C``, so one pass
over the trace yields the exact curve for every capacity at once.  (For
*variable* object sizes byte-LRU is not quite a stack algorithm — an
oversized insertion can evict deeper than the boundary — so the curve is
exact for unit sizes and a close approximation otherwise; the tests
quantify the gap at well under one hit-ratio point.)

This module computes byte-weighted reuse distances with a Fenwick tree
over request positions — O(n log n) total — and exposes:

* :class:`ReuseDistanceAnalyzer` — streaming reuse-distance computation.
* :func:`lru_hit_rate_curve` — exact LRU object/byte hit ratio at any
  set of capacities, from a single pass.

The curves are validated against direct LRU simulation in the tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.traces.request import Trace

#: Reuse distance assigned to first-ever requests (always a miss).
COLD = float("inf")


class _FenwickTree:
    """Prefix sums over request slots, for counting bytes in a range."""

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, value: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += value
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at slots 0..index inclusive."""
        i = index + 1
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over slots lo..hi inclusive."""
        if hi < lo:
            return 0
        total = self.prefix_sum(hi)
        if lo > 0:
            total -= self.prefix_sum(lo - 1)
        return total


class ReuseDistanceAnalyzer:
    """Byte-weighted reuse distances for a materialized trace.

    ``distances()`` returns, per request, the total bytes of *distinct*
    contents referenced strictly between the previous request to the same
    content and this one (inclusive of nothing) — i.e. the LRU stack
    depth in bytes the content sits at when re-requested.
    """

    def __init__(self, trace: Trace):
        self._trace = trace

    def distances(self, size_cap: float | None = None) -> np.ndarray:
        """Per-request byte reuse distances.

        ``size_cap`` excludes contents larger than it from the stack —
        objects bigger than the cache are never admitted by any byte
        cache, so they do not push other objects down.  Pass the cache
        capacity under study for capacity-faithful distances.
        """
        n = len(self._trace)
        tree = _FenwickTree(n)
        last_position: dict[int, int] = {}
        result = np.empty(n, dtype=np.float64)
        for i, req in enumerate(self._trace):
            counted = size_cap is None or req.size <= size_cap
            previous = last_position.get(req.obj_id)
            if previous is None:
                result[i] = COLD
            else:
                # Bytes of distinct contents touched after the previous
                # access: each content contributes at its *latest* slot.
                result[i] = float(tree.range_sum(previous + 1, n - 1))
                if counted:
                    tree.add(previous, -req.size)
            if counted:
                tree.add(i, req.size)
            last_position[req.obj_id] = i
        return result


@dataclass(frozen=True)
class HitRateCurve:
    """Exact LRU hit-rate curve over a capacity grid."""

    capacities: np.ndarray
    object_hit_ratios: np.ndarray
    byte_hit_ratios: np.ndarray
    trace_name: str

    def object_hit_at(self, capacity: int) -> float:
        """Interpolated object hit ratio at an arbitrary capacity."""
        return float(
            np.interp(capacity, self.capacities, self.object_hit_ratios)
        )

    def capacity_for_hit_ratio(self, target: float) -> float:
        """Smallest capacity achieving ``target`` object hit ratio.

        Returns ``inf`` if the target is unreachable (above the curve's
        ceiling — the compulsory-miss limit).
        """
        reachable = self.object_hit_ratios >= target
        if not reachable.any():
            return float("inf")
        return float(self.capacities[int(np.argmax(reachable))])


def lru_hit_rate_curve(
    trace: Trace,
    capacities: Sequence[int] | None = None,
    num_points: int = 32,
) -> HitRateCurve:
    """Exact LRU hit ratios at every capacity from one trace pass.

    ``capacities`` defaults to a log-spaced grid from the largest single
    object to the trace's unique bytes.
    """
    if not len(trace):
        raise ValueError("cannot build a curve from an empty trace")
    sizes = np.fromiter((req.size for req in trace), dtype=np.float64)
    max_size = float(sizes.max())
    if capacities is None:
        low = max(int(max_size), 1)
        high = max(trace.unique_bytes(), low + 1)
        grid = np.unique(
            np.logspace(np.log10(low), np.log10(high), num_points).astype(np.int64)
        )
    else:
        grid = np.asarray(sorted(capacities), dtype=np.int64)
        if (grid <= 0).any():
            raise ValueError("capacities must be positive")
    analyzer = ReuseDistanceAnalyzer(trace)
    # Objects larger than the capacity are never admitted and must not
    # count toward the stack depth; distances therefore depend on the
    # capacity whenever some object exceeds it (one extra pass per such
    # grid point — grid points above max_size share one pass).
    shared = analyzer.distances()
    object_ratios = np.empty(grid.size, dtype=np.float64)
    byte_ratios = np.empty(grid.size, dtype=np.float64)
    total_bytes = sizes.sum()
    for k, capacity in enumerate(grid):
        if capacity < max_size:
            distances = analyzer.distances(size_cap=float(capacity))
        else:
            distances = shared
        finite = np.isfinite(distances)
        # A request hits at capacity C iff distance + size <= C (the
        # object itself must also fit while resident).
        effective = np.where(finite, distances + sizes, np.inf)
        hit_mask = effective <= capacity
        object_ratios[k] = hit_mask.mean()
        byte_ratios[k] = sizes[hit_mask].sum() / total_bytes
    return HitRateCurve(
        capacities=grid,
        object_hit_ratios=object_ratios,
        byte_hit_ratios=byte_ratios,
        trace_name=trace.name,
    )
