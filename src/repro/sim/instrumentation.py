"""Policy instrumentation: lifetime and admission diagnostics.

Wraps any :class:`CachePolicy` and records the distributions papers and
postmortems always end up needing:

* eviction age — how long evicted objects sat in the cache,
* hits-per-residency — how many hits an object served before eviction,
* admission ratio over time — how selective the admission policy is,
* dead-on-arrival rate — admitted objects evicted without a single hit
  (wasted admissions; the quantity admission policies exist to minimize).

The wrapper is transparent: it forwards ``request`` to the inner policy
and observes outcomes from the outside, so it works with every policy in
the registry including LHR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.stats import PercentileTracker, RunningStats


@dataclass
class _Residency:
    admitted_at: float
    hits: int = 0


class InstrumentedPolicy:
    """Transparent diagnostics wrapper around a cache policy."""

    def __init__(self, policy: CachePolicy):
        self.policy = policy
        self.name = f"instrumented({policy.name})"
        self._residency: dict[int, _Residency] = {}
        self._now = 0.0
        self.eviction_ages = RunningStats()
        self.eviction_age_percentiles = PercentileTracker(capacity=8192, seed=1)
        self.hits_per_residency = RunningStats()
        self.dead_on_arrival = 0
        self.completed_residencies = 0
        self.miss_requests = 0
        self.admitted_requests = 0
        # Intercept evictions at the source (O(1) per eviction instead of
        # scanning the residency table per request).
        original_on_evict = policy._on_evict

        def hooked_on_evict(obj_id: int) -> None:
            self._finish(obj_id, self._now)
            original_on_evict(obj_id)

        policy._on_evict = hooked_on_evict

    # ------------------------------------------------------------------

    def request(self, req: Request) -> bool:
        self._now = req.time
        hit = self.policy.request(req)
        if hit:
            record = self._residency.get(req.obj_id)
            if record is not None:
                record.hits += 1
        else:
            self.miss_requests += 1
            if self.policy.contains(req.obj_id):
                self.admitted_requests += 1
                self._residency[req.obj_id] = _Residency(admitted_at=req.time)
        return hit

    def _finish(self, obj_id: int, now: float) -> None:
        record = self._residency.pop(obj_id, None)
        if record is None:
            return
        age = max(now - record.admitted_at, 0.0)
        self.eviction_ages.add(age)
        self.eviction_age_percentiles.add(age)
        self.hits_per_residency.add(float(record.hits))
        self.completed_residencies += 1
        if record.hits == 0:
            self.dead_on_arrival += 1

    def process(self, requests) -> None:
        for req in requests:
            self.request(req)

    # ------------------------------------------------------------------
    # Pass-throughs so the wrapper quacks like the inner policy.
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self.policy, name)

    # ------------------------------------------------------------------

    @property
    def admission_ratio(self) -> float:
        """Fraction of misses that were admitted."""
        return (
            self.admitted_requests / self.miss_requests
            if self.miss_requests
            else 0.0
        )

    @property
    def dead_on_arrival_ratio(self) -> float:
        """Fraction of completed residencies that served zero hits."""
        return (
            self.dead_on_arrival / self.completed_residencies
            if self.completed_residencies
            else 0.0
        )

    def report(self) -> dict:
        return {
            "policy": self.policy.name,
            "object_hit_ratio": round(self.policy.object_hit_ratio, 4),
            "admission_ratio": round(self.admission_ratio, 4),
            "dead_on_arrival_ratio": round(self.dead_on_arrival_ratio, 4),
            "mean_eviction_age_s": round(self.eviction_ages.mean, 2),
            "p90_eviction_age_s": round(
                self.eviction_age_percentiles.percentile(90), 2
            ),
            "mean_hits_per_residency": round(self.hits_per_residency.mean, 3),
        }
