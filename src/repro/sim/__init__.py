"""Trace-driven cache simulation: engine, metrics, network model and
experiment sweep runner.
"""

from repro.sim.analytical import CheModel, che_hit_ratio_curve, fit_che_model
from repro.sim.engine import simulate
from repro.sim.hierarchy import TieredCache
from repro.sim.instrumentation import InstrumentedPolicy
from repro.sim.hitrate_curve import (
    HitRateCurve,
    ReuseDistanceAnalyzer,
    lru_hit_rate_curve,
)
from repro.sim.metrics import (
    SimulationResult,
    WindowMetrics,
    grid_order,
    merge_sweeps,
)
from repro.sim.network import LatencyReport, NetworkModel, measure_latency
from repro.sim.parallel import (
    CellFailure,
    CellSpec,
    PackedTrace,
    ShardSpec,
    SweepCellError,
    merge_shard_results,
    run_sharded,
    run_sweep,
    shard_assignments,
    shard_capacities,
    shard_of,
)
from repro.sim.replication import ReplicatedResult, replicate_comparison
from repro.sim.runner import (
    best_policy,
    build_policy,
    format_table,
    is_known_policy,
    known_policies,
    run_comparison,
    sweep_specs,
)

__all__ = [
    "CellFailure",
    "CellSpec",
    "CheModel",
    "HitRateCurve",
    "InstrumentedPolicy",
    "LatencyReport",
    "NetworkModel",
    "PackedTrace",
    "ReplicatedResult",
    "ReuseDistanceAnalyzer",
    "ShardSpec",
    "SimulationResult",
    "SweepCellError",
    "TieredCache",
    "che_hit_ratio_curve",
    "fit_che_model",
    "grid_order",
    "is_known_policy",
    "lru_hit_rate_curve",
    "merge_sweeps",
    "WindowMetrics",
    "best_policy",
    "build_policy",
    "format_table",
    "known_policies",
    "measure_latency",
    "merge_shard_results",
    "replicate_comparison",
    "run_comparison",
    "run_sharded",
    "run_sweep",
    "shard_assignments",
    "shard_capacities",
    "shard_of",
    "simulate",
    "sweep_specs",
]
