"""Trace-driven cache simulation: engine, metrics, network model and
experiment sweep runner.
"""

from repro.sim.analytical import CheModel, che_hit_ratio_curve, fit_che_model
from repro.sim.engine import simulate
from repro.sim.hierarchy import TieredCache
from repro.sim.instrumentation import InstrumentedPolicy
from repro.sim.hitrate_curve import (
    HitRateCurve,
    ReuseDistanceAnalyzer,
    lru_hit_rate_curve,
)
from repro.sim.metrics import SimulationResult, WindowMetrics
from repro.sim.network import LatencyReport, NetworkModel, measure_latency
from repro.sim.replication import ReplicatedResult, replicate_comparison
from repro.sim.runner import (
    best_policy,
    build_policy,
    format_table,
    known_policies,
    run_comparison,
)

__all__ = [
    "CheModel",
    "HitRateCurve",
    "InstrumentedPolicy",
    "LatencyReport",
    "NetworkModel",
    "ReplicatedResult",
    "ReuseDistanceAnalyzer",
    "SimulationResult",
    "TieredCache",
    "che_hit_ratio_curve",
    "fit_che_model",
    "lru_hit_rate_curve",
    "WindowMetrics",
    "best_policy",
    "build_policy",
    "format_table",
    "known_policies",
    "measure_latency",
    "replicate_comparison",
    "run_comparison",
    "simulate",
]
