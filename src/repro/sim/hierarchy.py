"""Two-level cache hierarchy.

A production CDN node is a hierarchy: a small RAM cache over a large
flash cache (the ATS deployment of Section 6.1).  The prototype code
hard-wires that pairing; this module provides the general, composable
form — any policy at either level — so hierarchy effects (inclusive
caching, promotion traffic) can be studied with the same simulator.

Semantics (inclusive-on-read, like ATS):

* L1 hit — served from L1.
* L1 miss, L2 hit — served from L2 and *promoted* into L1.
* both miss — fetched from origin; the request is offered to both
  levels' admission policies.

The wrapper quacks like a :class:`CachePolicy` (request/hits/misses/
metadata), so :func:`repro.sim.simulate` works unchanged; per-level
statistics are exposed for deeper analysis.
"""

from __future__ import annotations

from repro.obs import Observation
from repro.policies.base import CachePolicy
from repro.traces.request import Request


class TieredCache(CachePolicy):
    """Inclusive two-level cache composed of two policies.

    Parameters
    ----------
    l1, l2:
        Pre-constructed policies; ``l1.capacity`` should be smaller than
        ``l2.capacity`` for the hierarchy to make sense (not enforced —
        inverted hierarchies are occasionally useful in experiments).
    """

    name = "tiered"

    def __init__(self, l1: CachePolicy, l2: CachePolicy):
        super().__init__(l1.capacity + l2.capacity)
        self.l1 = l1
        self.l2 = l2
        self.name = f"tiered({l1.name}/{l2.name})"
        self.l1_hits = 0
        self.l2_hits = 0
        self.promotions = 0

    # The base class machinery (admission/eviction loop) is bypassed: the
    # two inner policies own all cache state.
    def request(self, req: Request) -> bool:
        hit_l1 = self.l1.request(req)
        if hit_l1:
            # Keep L2's recency/learning state in sync with the request
            # stream (ATS consults its index on every request too).
            self.l2.request(req)
            self.l1_hits += 1
            self.hits += 1
            self.hit_bytes += req.size
            return True
        hit_l2 = self.l2.request(req)
        if hit_l2:
            # Promotion: the L1 request above already offered the object
            # to L1's admission path on its miss.
            self.l2_hits += 1
            self.promotions += self.l1.contains(req.obj_id)
            self.hits += 1
            self.hit_bytes += req.size
            return True
        self.misses += 1
        self.miss_bytes += req.size
        return False

    @property
    def used_bytes(self) -> int:
        return self.l1.used_bytes + self.l2.used_bytes

    @property
    def num_objects(self) -> int:
        return self.l1.num_objects + self.l2.num_objects

    def contains(self, obj_id: int) -> bool:
        return self.l1.contains(obj_id) or self.l2.contains(obj_id)

    @property
    def admissions(self) -> int:  # type: ignore[override]
        return self.l1.admissions + self.l2.admissions

    @admissions.setter
    def admissions(self, value: int) -> None:
        # The base constructor assigns 0; inner policies own the counts.
        pass

    @property
    def evictions(self) -> int:  # type: ignore[override]
        return self.l1.evictions + self.l2.evictions

    @evictions.setter
    def evictions(self, value: int) -> None:
        pass

    def _select_victim(self, incoming: Request) -> int:
        raise RuntimeError("tiered cache delegates eviction to its levels")

    def metadata_bytes(self) -> int:
        return self.l1.metadata_bytes() + self.l2.metadata_bytes()

    def attach_observation(self, obs: Observation) -> None:
        """Propagate the handle into both levels, so an LHR at either
        level keeps emitting its lifecycle events under the hierarchy."""
        super().attach_observation(obs)
        self.l1.attach_observation(obs)
        self.l2.attach_observation(obs)

    def level_report(self) -> dict:
        """Per-level accounting for hierarchy studies."""
        total = self.hits + self.misses
        return {
            "l1_hit_ratio": self.l1_hits / total if total else 0.0,
            "l2_hit_ratio": self.l2_hits / total if total else 0.0,
            "overall_hit_ratio": self.object_hit_ratio,
            "promotions": self.promotions,
            "l1_used_bytes": self.l1.used_bytes,
            "l2_used_bytes": self.l2.used_bytes,
        }
