"""Command-line interface: ``python -m repro <command> ...``.

Subcommands cover the everyday workflows:

* ``trace generate|summarize|convert`` — create stand-in traces, inspect
  them (Table-1 columns), convert between CSV and webcachesim formats.
* ``simulate`` — run one policy over a trace.
* ``compare`` — run several policies across several cache sizes.
* ``analyze`` — decision-trace a policy and HRO over the same trace and
  report the miss taxonomy plus the per-window divergence between the
  policy's admission decisions and the oracle it imitates.
* ``bounds`` — compute offline/online bounds for a trace and cache size.
* ``curve`` — the exact LRU hit-rate curve over a capacity grid
  (reuse-distance analysis; no simulation sweep needed).
* ``prototype`` — replay a trace through the emulated ATS or Caffeine
  deployment (LHR vs the stock baseline).
* ``profile`` — replay under the sampling profiler and report the
  per-phase cost table plus a collapsed-stack (flamegraph) file.
* ``bench-compare`` — regression-check two or more ``repro-bench/1``
  telemetry files against each other (the benchmark sentinel).
* ``workload list|describe|generate|run`` — the non-stationary workload
  lab: enumerate the scenario registry, inspect a scenario's parameters,
  materialize a scenario trace, or sweep a policy grid over a scenario
  matrix and report hit ratios plus drift/retrain activity
  (``docs/WORKLOADS.md``).

* ``timeline`` — phase self-time breakdown, critical path, per-worker
  utilization and straggler cells of a run recorded with
  ``--trace-out`` (see ``docs/OBSERVABILITY.md``).
* ``learner`` — per-window learner-health report (calibration against
  realized reuse, Zipf alpha +/- stderr, shadow drift statistics,
  retrain-cause attribution) of a run recorded with ``--learner``
  (see ``docs/OBSERVABILITY.md``).

``simulate`` and ``compare`` additionally take ``--serve PORT`` to
expose ``/metrics``, ``/healthz`` and ``/progress`` over HTTP while the
run is live, and — together with ``workload run`` — ``--trace-out
PATH`` to record a cross-process span timeline and export it as Chrome
trace-event JSON (see ``docs/OBSERVABILITY.md``).

Capacities accept human-readable suffixes: ``512MB``, ``4GB``, ``1TB``,
or a plain byte count.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bounds import belady_size, infinite_cap, pfoo_lower, pfoo_upper
from repro.core import hro_bound
from repro.core.lhr import LhrCache
from repro.obs import (
    NULL_OBS,
    BaselineTolerance,
    FanoutRecorder,
    JsonlRecorder,
    LearnerTelemetry,
    MemoryRecorder,
    NullRecorder,
    Observation,
    ObsServer,
    ProgressTracker,
    RunLedger,
    SloSpec,
    SpanRecorder,
    TextRecorder,
    analyze_learner,
    analyze_spans,
    compare_files,
    compare_with_history,
    current_rss_bytes,
    diff_records,
    evaluate_slo,
    load_telemetry,
    profile_simulation,
    record_from_results,
)
from repro.obs.learner import columns_to_series
from repro.proto import (
    AtsServer,
    make_ats_baseline,
    make_caffeine_baseline,
    make_caffeine_lhr,
    run_caffeine,
    run_prototype,
)
from repro.sim import (
    build_policy,
    format_table,
    known_policies,
    run_comparison,
    run_sharded,
    simulate,
)
from repro.traces import PackedTrace, generate_production_trace, summarize_trace
from repro.traces.loader import (
    load_trace_csv,
    load_trace_webcachesim,
    save_trace_csv,
    save_trace_webcachesim,
)
from repro.traces.production import PRODUCTION_SPECS
from repro.traces.request import Trace
from repro.workloads import (
    ScenarioConfig,
    generate_trace,
    get_scenario,
    known_scenarios,
    run_workload_lab,
)

_SIZE_SUFFIXES = {
    "kb": 1 << 10,
    "mb": 1 << 20,
    "gb": 1 << 30,
    "tb": 1 << 40,
    "b": 1,
}


def parse_size(text: str) -> int:
    """Parse ``"4GB"``/``"512mb"``/``"1048576"`` into bytes.

    Non-positive sizes are rejected rather than silently clamped: a
    ``"-1GB"`` cache is a typo, not a one-byte cache.
    """
    raw = text.strip().lower()
    value: float | None = None
    for suffix, multiplier in _SIZE_SUFFIXES.items():
        if raw.endswith(suffix):
            number = raw[: -len(suffix)].strip()
            try:
                value = float(number) * multiplier
            except ValueError:
                value = None
            break
    if value is None:
        try:
            value = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"cannot parse size {text!r}"
            ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"size must be positive, got {text!r}")
    # Sub-byte fractions like "0.5b" round up to the 1-byte minimum.
    return max(int(value), 1)


def load_any_trace(path: str) -> Trace:
    """Load a trace, dispatching on extension (.csv vs anything else)."""
    file_path = Path(path)
    if not file_path.exists():
        raise SystemExit(f"error: trace file {path!r} does not exist")
    if file_path.suffix.lower() == ".csv":
        return load_trace_csv(file_path)
    return load_trace_webcachesim(file_path)


def _save_any_trace(trace: Trace, path: str, fmt: str) -> None:
    if fmt == "csv":
        save_trace_csv(trace, path)
    else:
        save_trace_webcachesim(trace, path)


# ----------------------------------------------------------------------
# Observability plumbing (--log-json / --metrics-out / --verbose)
# ----------------------------------------------------------------------


def _build_observation(
    args: argparse.Namespace,
    require: bool = False,
    spans: SpanRecorder | None = None,
    learner: LearnerTelemetry | None = None,
) -> Observation:
    """Assemble the observation handle the flags ask for.

    Returns :data:`NULL_OBS` (the zero-overhead disabled handle) when no
    observability flag is set, unless ``require`` forces an enabled
    handle (``--serve`` needs a live registry to scrape even without any
    logging flag).  A ``spans`` recorder (``--trace-out``) and a
    ``learner`` telemetry hub (``--learner``) ride the handle as extra
    sinks; when they are the *only* things asked for, the handle stays
    disabled (``Observation.sidecars_only``) so the replay keeps the
    packed fast path — spans land at chunk granularity and learner rows
    at window granularity either way.  If a later recorder constructor
    fails, the ones already built are closed — no leaked file handles
    on bad flags.
    """
    recorders = []
    try:
        if getattr(args, "log_json", None):
            recorders.append(JsonlRecorder(args.log_json))
        if getattr(args, "verbose", False):
            recorders.append(TextRecorder(sys.stderr))
    except Exception:
        for recorder in recorders:
            recorder.close()
        raise
    if not recorders and not getattr(args, "metrics_out", None) and not require:
        if spans is not None or learner is not None:
            return Observation.sidecars_only(spans=spans, learner=learner)
        return NULL_OBS
    recorder = None
    if len(recorders) == 1:
        recorder = recorders[0]
    elif recorders:
        recorder = FanoutRecorder(*recorders)
    return Observation(recorder=recorder, spans=spans, learner=learner)


def _finish_observation(obs: Observation, args: argparse.Namespace) -> None:
    """Flush/close the recorder and write the metrics snapshot, if any."""
    if not obs.enabled:
        return
    obs.close()
    if getattr(args, "log_json", None):
        print(f"wrote event log to {args.log_json}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        obs.registry.write(metrics_out)
        print(f"wrote metrics snapshot to {metrics_out}")


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-json", metavar="PATH", default=None,
        help="write structured JSONL events (sim.window, lhr.*, sweep.*) here",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a metrics-registry snapshot here (.prom/.txt = "
        "Prometheus text, anything else = JSON)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each structured event to stderr as it happens",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="record a span timeline of this run and write it here as "
        "Chrome trace-event JSON (loadable in Perfetto / chrome://tracing); "
        "the spans also land in the run ledger for `repro timeline`",
    )


def _span_recorder_for(args: argparse.Namespace) -> SpanRecorder | None:
    """A driver-side span recorder when ``--trace-out`` asked for one."""
    if getattr(args, "trace_out", None):
        return SpanRecorder(role="driver")
    return None


def _write_trace(spans: SpanRecorder | None, args: argparse.Namespace) -> None:
    """Write the recorded timeline as Chrome trace-event JSON, if asked."""
    if spans is None:
        return
    spans.write_chrome_trace(args.trace_out)
    print(f"wrote timeline trace ({len(spans)} spans) to {args.trace_out}")


def _add_learner_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--learner", action="store_true",
        help="record per-window learner-health telemetry (calibration, "
        "Zipf alpha +/- stderr, shadow drift statistics, retrain causes); "
        "the series lands in the run ledger for `repro learner`",
    )


def _learner_for(args: argparse.Namespace) -> LearnerTelemetry | None:
    """A driver-side learner telemetry hub when ``--learner`` asked."""
    if getattr(args, "learner", False):
        return LearnerTelemetry()
    return None


def _add_serve_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve", metavar="PORT", type=int, default=None,
        help="serve /metrics, /healthz, /progress (and /runs when the "
        "ledger is on) over HTTP on this port for the duration of the "
        "run (0 = any free port)",
    )


def _start_server(
    args: argparse.Namespace,
    obs: Observation,
    tracker: ProgressTracker | None,
    ledger: RunLedger | None = None,
    learner: LearnerTelemetry | None = None,
) -> ObsServer | None:
    """Start the HTTP exporter when ``--serve`` was given."""
    port = getattr(args, "serve", None)
    if port is None:
        return None
    server = ObsServer(
        registry=obs.registry,
        tracker=tracker,
        port=port,
        ledger=ledger,
        learner=learner,
    )
    server.start()
    endpoints = "/metrics /healthz /progress" + (
        " /learner" if learner is not None else ""
    )
    print(f"serving {endpoints} at {server.url}", flush=True)
    return server


# ----------------------------------------------------------------------
# Run-ledger plumbing (--ledger / --no-ledger, `repro runs ...`)
# ----------------------------------------------------------------------


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or "
        ".repro/runs); every run appends a RunRecord there",
    )
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not persist a RunRecord for this invocation",
    )


def _ledger_for(args: argparse.Namespace) -> RunLedger | None:
    """The ledger this invocation records to, or None with ``--no-ledger``."""
    if getattr(args, "no_ledger", False):
        return None
    return RunLedger(getattr(args, "ledger", None))


def _capture_events(obs: Observation) -> MemoryRecorder | None:
    """Splice a :class:`MemoryRecorder` into an enabled observation so
    the ledger can digest the event stream; returns the recorder, or
    None when ``obs`` is disabled (an unledgered event digest is better
    than forcing every run off the packed fast path)."""
    if not obs.enabled:
        return None
    capture = MemoryRecorder()
    base = obs.recorder
    if type(base) is NullRecorder:
        obs.recorder = capture
    else:
        obs.recorder = FanoutRecorder(base, capture)
    return capture


def _record_run(
    ledger: RunLedger | None,
    command: str,
    config: dict,
    results,
    name: str = "",
    capture: MemoryRecorder | None = None,
    cell_tags=None,
    spans: SpanRecorder | None = None,
) -> None:
    """Persist one RunRecord; a ledger failure warns, never kills a run
    whose results are already in hand."""
    if ledger is None:
        return
    try:
        record = record_from_results(
            command,
            config,
            results,
            name=name,
            events=capture.events if capture is not None else None,
            cell_tags=cell_tags,
            spans=spans.as_dicts() if spans is not None else None,
        )
        run_id = ledger.record(record)
    except Exception as exc:  # noqa: BLE001 — bookkeeping must not fail the run
        print(f"warning: run ledger write failed: {exc}", file=sys.stderr)
        return
    print(f"run ledger: recorded {run_id} in {ledger.root}", file=sys.stderr)


def _open_ledger(args: argparse.Namespace) -> RunLedger:
    """The ledger a ``repro runs`` subcommand operates on."""
    return RunLedger(getattr(args, "ledger", None))


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def cmd_trace_generate(args: argparse.Namespace) -> int:
    """Generate a stand-in trace and write it to disk."""
    trace = generate_production_trace(args.spec, scale=args.scale, seed=args.seed)
    _save_any_trace(trace, args.output, args.format)
    print(
        f"wrote {len(trace)} requests "
        f"({trace.unique_bytes() / (1 << 30):.2f} GB unique) to {args.output}"
    )
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Print the Table-1 style summary of a trace file."""
    trace = load_any_trace(args.trace)
    for key, value in summarize_trace(trace).as_table_row().items():
        print(f"{key:<30} {value}")
    return 0


def cmd_trace_convert(args: argparse.Namespace) -> int:
    """Convert a trace between CSV and webcachesim formats."""
    trace = load_any_trace(args.input)
    fmt = "csv" if Path(args.output).suffix.lower() == ".csv" else "webcachesim"
    _save_any_trace(trace, args.output, fmt)
    print(f"converted {len(trace)} requests -> {args.output} ({fmt})")
    return 0


def _simulate_sharded(args: argparse.Namespace, trace) -> int:
    """`repro simulate --shards N`: hash-sharded single-trace replay.

    The sharded path replays the packed columns through independent
    per-shard policies (see :func:`repro.sim.parallel.run_sharded`); it
    has no single policy object to instrument, so the observation /
    span / serve surfaces are rejected up front rather than silently
    ignored.
    """
    for flag, name in (
        (getattr(args, "log_json", None), "--log-json"),
        (getattr(args, "metrics_out", None), "--metrics-out"),
        (getattr(args, "verbose", False), "--verbose"),
        (getattr(args, "trace_out", None), "--trace-out"),
        (getattr(args, "learner", False), "--learner"),
        (getattr(args, "serve", None) is not None, "--serve"),
    ):
        if flag:
            raise SystemExit(
                f"error: {name} is not supported with --shards; sharded "
                "replay runs uninstrumented per-shard fast paths"
            )
    ledger = _ledger_for(args)
    try:
        result = run_sharded(
            PackedTrace.from_trace(trace),
            args.policy,
            args.capacity,
            shards=args.shards,
            window_requests=args.window,
            warmup_requests=args.warmup,
            jobs=args.jobs,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    _record_run(
        ledger,
        "simulate",
        {
            "trace": args.trace,
            "policy": args.policy,
            "capacity": args.capacity,
            "window": args.window,
            "warmup": args.warmup,
            "shards": args.shards,
            "jobs": args.jobs,
        },
        [result],
        name=Path(args.trace).name,
    )
    print(format_table([result]))
    if args.window and result.windows:
        series = "  ".join(f"{w.hit_ratio:.3f}" for w in result.windows)
        print(f"per-window hit ratio: {series}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one policy over a trace and print the result row."""
    trace = load_any_trace(args.trace)
    if getattr(args, "shards", 1) > 1:
        return _simulate_sharded(args, trace)
    policy = build_policy(args.policy, args.capacity)
    serving = args.serve is not None
    spans = _span_recorder_for(args)
    learner = _learner_for(args)
    obs = _build_observation(args, require=serving, spans=spans, learner=learner)
    ledger = _ledger_for(args)
    capture = _capture_events(obs) if ledger is not None else None
    tracker = None
    heartbeat = None
    heartbeat_interval = 0
    if serving:
        tracker = ProgressTracker(registry=obs.registry)
        tracker.register_cells([(0, args.policy, args.capacity)])

        def heartbeat(requests_done: int) -> None:
            tracker.heartbeat(
                0,
                requests=requests_done,
                hits=policy.hits,
                hit_ratio=policy.object_hit_ratio,
                evictions=policy.evictions,
                rss_bytes=current_rss_bytes(),
            )

        heartbeat_interval = 1000
    server = _start_server(args, obs, tracker, ledger, learner=learner)
    # Unobserved replays take the columnar fast path; observed ones keep
    # the reference object stream (the engine would unpack anyway).
    replay_trace = trace if obs.enabled else PackedTrace.from_trace(trace)
    try:
        with obs:
            with obs.spans.span("cli.simulate", cat="cli", trace=args.trace):
                result = simulate(
                    policy,
                    replay_trace,
                    window_requests=args.window,
                    warmup_requests=args.warmup,
                    obs=obs,
                    heartbeat=heartbeat,
                    heartbeat_interval=heartbeat_interval,
                )
            if tracker is not None:
                tracker.cell_done(
                    0,
                    requests=result.requests,
                    hit_ratio=result.object_hit_ratio,
                )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    finally:
        if server is not None:
            server.stop()
        _finish_observation(obs, args)
    _record_run(
        ledger,
        "simulate",
        {
            "trace": args.trace,
            "policy": args.policy,
            "capacity": args.capacity,
            "window": args.window,
            "warmup": args.warmup,
        },
        [result],
        name=Path(args.trace).name,
        capture=capture,
        spans=spans,
    )
    _write_trace(spans, args)
    print(format_table([result]))
    if args.window and result.windows:
        series = "  ".join(f"{w.hit_ratio:.3f}" for w in result.windows)
        print(f"per-window hit ratio: {series}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run several policies across several capacities."""
    trace = load_any_trace(args.trace)
    names = [name.strip() for name in args.policies.split(",") if name.strip()]
    serving = args.serve is not None
    spans = _span_recorder_for(args)
    learner = _learner_for(args)
    obs = _build_observation(args, require=serving, spans=spans, learner=learner)
    ledger = _ledger_for(args)
    capture = _capture_events(obs) if ledger is not None else None
    tracker = ProgressTracker(registry=obs.registry) if serving else None
    server = _start_server(args, obs, tracker, ledger, learner=learner)
    try:
        with obs:
            with obs.spans.span("cli.compare", cat="cli", trace=args.trace):
                results = run_comparison(
                    trace if obs.enabled else PackedTrace.from_trace(trace),
                    names,
                    args.capacities,
                    window_requests=args.window,
                    warmup_requests=args.warmup,
                    parallel=args.jobs,
                    obs=obs,
                    progress=tracker,
                )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    finally:
        if server is not None:
            server.stop()
        _finish_observation(obs, args)
    _record_run(
        ledger,
        "compare",
        {
            "trace": args.trace,
            "policies": names,
            "capacities": list(args.capacities),
            "window": args.window,
            "warmup": args.warmup,
            "jobs": args.jobs,
        },
        results,
        name=Path(args.trace).name,
        capture=capture,
        spans=spans,
    )
    _write_trace(spans, args)
    print(format_table(results))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Miss taxonomy + policy↔HRO divergence report for one trace."""
    from repro.obs.analyze import analyze_trace

    trace = load_any_trace(args.trace)
    try:
        report = analyze_trace(
            trace,
            args.capacity,
            policy=args.policy,
            window_requests=args.window,
            window_multiple=args.window_multiple,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    if args.csv:
        report.divergence.write_csv(args.csv)
        print(f"wrote per-window divergence series to {args.csv}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print offline/online bounds for a trace and capacity."""
    trace = load_any_trace(args.trace)
    requests = trace.requests
    rows = [
        infinite_cap(requests),
        pfoo_upper(requests, args.capacity),
        hro_bound(trace, args.capacity, min_window_requests=512),
        belady_size(requests, args.capacity),
        pfoo_lower(requests, args.capacity),
    ]
    print(f"{'bound':<14}{'hit ratio':>10}{'byte hit':>10}")
    for row in rows:
        print(f"{row.name:<14}{row.hit_ratio:>10.4f}{row.byte_hit_ratio:>10.4f}")
    return 0


def cmd_curve(args: argparse.Namespace) -> int:
    """Print the exact LRU hit-rate curve (and an optional target query)."""
    from repro.sim import lru_hit_rate_curve

    trace = load_any_trace(args.trace)
    curve = lru_hit_rate_curve(trace, num_points=args.points)
    print(f"{'capacity':>14}{'object hit':>12}{'byte hit':>10}")
    for capacity, object_hit, byte_hit in zip(
        curve.capacities, curve.object_hit_ratios, curve.byte_hit_ratios
    ):
        print(f"{int(capacity):>14}{object_hit:>12.4f}{byte_hit:>10.4f}")
    if args.target is not None:
        needed = curve.capacity_for_hit_ratio(args.target)
        if needed == float("inf"):
            print(f"target {args.target:.0%} object hits: unreachable")
        else:
            print(f"target {args.target:.0%} object hits: {int(needed)} bytes")
    return 0


def cmd_prototype(args: argparse.Namespace) -> int:
    """Replay a stand-in trace through the emulated ATS or Caffeine node."""
    spec = PRODUCTION_SPECS[args.spec]
    trace = generate_production_trace(spec, scale=args.scale, seed=args.seed)
    obs = _build_observation(args)
    try:
        if args.system == "ats":
            capacity = spec.scaled_cache_bytes(spec.prototype_cache_gb, args.scale)
            lhr_server = AtsServer(LhrCache(capacity, seed=0))
            baseline = make_ats_baseline(capacity)
            if obs.enabled:
                lhr_server.policy.attach_observation(obs)
                baseline.policy.attach_observation(obs)
            reports = [
                run_prototype(lhr_server, trace, "lhr"),
                run_prototype(baseline, trace, "ats"),
            ]
        else:
            capacity = spec.scaled_cache_bytes(spec.caffeine_cache_gb, args.scale)
            lhr_server = make_caffeine_lhr(capacity)
            baseline = make_caffeine_baseline(capacity)
            if obs.enabled:
                lhr_server.policy.attach_observation(obs)
                baseline.policy.attach_observation(obs)
            reports = [
                run_caffeine(lhr_server, trace, "lhr"),
                run_caffeine(baseline, trace, "caffeine"),
            ]
    finally:
        _finish_observation(obs, args)
    rows = [report.as_row() for report in reports]
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Replay under the sampling profiler; print the phase/hotspot report."""
    trace = load_any_trace(args.trace)
    try:
        report = profile_simulation(
            trace,
            args.policy,
            args.capacity,
            window_requests=args.window,
            warmup_requests=args.warmup,
            interval_seconds=args.interval_ms / 1000.0,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    if args.collapsed:
        path = report.write_collapsed(args.collapsed)
        print(f"wrote collapsed stacks to {path}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Regression-check telemetry: consecutive file pairs, or one new
    payload against the rolling ledger history (``--ledger``)."""
    try:
        tolerance = BaselineTolerance(
            throughput_drop_pct=args.throughput_tolerance,
            rss_growth_pct=args.rss_tolerance,
            hit_ratio_drop=args.hit_ratio_tolerance,
        )
        if args.ledger is not None:
            if len(args.files) != 1:
                raise ValueError(
                    "--ledger compares exactly one new telemetry file "
                    "against the recorded history"
                )
            current = load_telemetry(args.files[0])
            history = RunLedger(args.ledger).bench_history(
                current["name"],
                limit=args.history,
                exclude=current.get("run_id") or None,
            )
            if not history:
                raise ValueError(
                    f"no prior {current['name']!r} benchmark runs recorded "
                    f"in ledger {args.ledger}"
                )
            verdicts = [compare_with_history(history, current, tolerance)]
        else:
            verdicts = compare_files(args.files, tolerance)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.format == "json":
        print(
            json.dumps(
                [verdict.as_dict() for verdict in verdicts],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print("\n\n".join(verdict.render_text() for verdict in verdicts))
    regressed = any(verdict.regressed for verdict in verdicts)
    if regressed and args.warn_only:
        print("warn-only: regression detected but exiting 0", file=sys.stderr)
        return 0
    return 1 if regressed else 0


# ----------------------------------------------------------------------
# Run ledger (repro runs ...)
# ----------------------------------------------------------------------


def cmd_runs_list(args: argparse.Namespace) -> int:
    """One line per recorded run, oldest first."""
    ledger = _open_ledger(args)
    rows = ledger.summaries(limit=args.limit)
    if args.format == "json":
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"run ledger {ledger.root}: no runs recorded")
        return 0
    header = (
        f"{'run id':<34}{'created (utc)':<22}{'command':<10}"
        f"{'cells':>6}{'windows':>9}  name"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['run_id']:<34}{row['created_utc']:<22}"
            f"{row['command']:<10}{row['cells']:>6}{row['windows']:>9}"
            f"  {row['name']}"
        )
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    """Full manifest (and per-cell table) of one run."""
    ledger = _open_ledger(args)
    try:
        record = ledger.load(args.run)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.format == "json":
        print(json.dumps(record.manifest(), indent=2, sort_keys=True))
        return 0
    print(f"run {record.run_id}  ({record.command}: {record.name})")
    print(f"  created  {record.created_utc}")
    print(f"  git rev  {record.git_rev}")
    print(f"  config   {record.config_digest}")
    for key, value in sorted(record.metrics.items()):
        print(f"  {key:<22} {value}")
    for key, value in sorted(record.events.items()):
        print(f"  events.{key:<15} {value}")
    if record.span_count():
        print(
            f"  spans    {record.span_count()} recorded  "
            f"(view: repro timeline {record.run_id})"
        )
    else:
        print("  spans    none recorded (capture with --trace-out)")
    if record.learner_window_count():
        print(
            f"  learner  {record.learner_window_count()} windows recorded  "
            f"(view: repro learner {record.run_id})"
        )
    else:
        print("  learner  none recorded (capture with --learner)")
    if not record.series:
        print("  series   none recorded (per-window series need --window N)")
    if record.cells:
        header = (
            f"  {'policy':<14}{'capacity':>12}{'hit':>8}{'byte-hit':>10}"
            f"{'evict':>8}{'windows':>9}"
        )
        print(header)
        print("  " + "-" * (len(header) - 2))
        for cell in record.cells:
            label = cell.get("policy", "?")
            if cell.get("scenario"):
                label = f"{cell['scenario']}/{label}"
            print(
                f"  {label:<14}{cell.get('capacity', 0):>12}"
                f"{cell.get('object_hit_ratio', 0.0):>8.4f}"
                f"{cell.get('byte_hit_ratio', 0.0):>10.4f}"
                f"{cell.get('evictions', 0):>8}{cell.get('windows', 0):>9}"
            )
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    """Per-cell and per-window deltas between two runs."""
    ledger = _open_ledger(args)
    try:
        diff = diff_records(ledger.load(args.run_a), ledger.load(args.run_b))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.format == "json":
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render_text())
    return 0


def cmd_runs_export(args: argparse.Namespace) -> int:
    """Flatten one run's window series to CSV."""
    ledger = _open_ledger(args)
    try:
        rows = ledger.export_csv(args.run, args.csv)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"wrote {rows} window rows to {args.csv}")
    if rows == 0:
        print(
            "note: this run has no per-window series (run with --window N "
            "to record one)"
        )
    return 0


def cmd_runs_check(args: argparse.Namespace) -> int:
    """Evaluate an SLO spec against one run; exit 1 on violation
    (matching ``bench-compare`` semantics)."""
    ledger = _open_ledger(args)
    try:
        spec = SloSpec.from_file(args.slo)
        record = ledger.load(args.run, series=False)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {args.slo}: {exc}") from None
    report = evaluate_slo(spec, record)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    if not report.ok and args.warn_only:
        print("warn-only: SLO violated but exiting 0", file=sys.stderr)
        return 0
    return 0 if report.ok else 1


def cmd_timeline(args: argparse.Namespace) -> int:
    """Phase breakdown, critical path and straggler stats of one traced
    run (recorded with ``--trace-out``)."""
    ledger = _open_ledger(args)
    try:
        record = ledger.load(args.run, series=False)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if not record.spans:
        # A run without a spans sidecar is a normal state (recorded
        # without --trace-out), not a broken invocation: say so clearly
        # and exit cleanly.
        if args.format == "json":
            print(json.dumps({"run": record.run_id, "spans": 0}, indent=2))
        else:
            print(
                f"run {record.run_id} recorded no spans; re-run with "
                "--trace-out to capture a timeline"
            )
        return 0
    report = analyze_spans(record.spans)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"timeline of run {record.run_id}  ({record.command}: "
              f"{record.name})")
        print(report.render_text())
    return 0


def cmd_learner(args: argparse.Namespace) -> int:
    """Per-window learner-health report (calibration, drift evidence,
    retrain causes) of one run recorded with ``--learner``."""
    ledger = _open_ledger(args)
    try:
        record = ledger.load(args.run, series=False, spans=False, learner=True)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if not record.learner:
        # Like `repro timeline` on an untraced run: absence of the
        # sidecar is a normal state, reported clearly with exit 0.
        if args.format == "json":
            print(
                json.dumps(
                    {"run": record.run_id, "cells": [], "thrash": []},
                    indent=2,
                )
            )
        else:
            print(
                f"run {record.run_id} recorded no learner telemetry; "
                "re-run with --learner to capture it"
            )
        return 0
    cells = columns_to_series(record.learner, record.cells)
    report = analyze_learner(record.run_id, cells)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"({record.command}: {record.name})")
        print(report.render_text(timeline=not args.no_timeline))
    return 0


def cmd_runs_gc(args: argparse.Namespace) -> int:
    """Prune all but the newest ``--keep`` runs."""
    ledger = _open_ledger(args)
    try:
        doomed = ledger.gc(args.keep, dry_run=args.dry_run)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    verb = "would prune" if args.dry_run else "pruned"
    print(
        f"{verb} {len(doomed)} run(s), kept {len(ledger.run_ids())} "
        f"in {ledger.root}"
    )
    for run_id in doomed:
        print(f"  {run_id}")
    return 0


# ----------------------------------------------------------------------
# Workload lab (repro workload ...)
# ----------------------------------------------------------------------


def _parse_scenario_params(pairs: list[str] | None) -> dict:
    """Parse repeated ``--param key=value`` overrides (numbers only)."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --param expects key=value, got {pair!r}")
        try:
            value: float = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise SystemExit(
                    f"error: --param {key} expects a number, got {raw!r}"
                ) from None
        params[key] = value
    return params


def _scenario_configs(args: argparse.Namespace) -> list[ScenarioConfig]:
    """Resolve ``--scenario`` (name, comma list or ``all``) into configs."""
    names = [name.strip() for name in args.scenario.split(",") if name.strip()]
    if "all" in names:
        names = known_scenarios()
    params = _parse_scenario_params(getattr(args, "param", None))
    try:
        return [
            ScenarioConfig.make(name, args.requests, args.seed, **params)
            for name in names
        ]
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def cmd_workload_list(args: argparse.Namespace) -> int:
    """One line per registered scenario."""
    for name in known_scenarios():
        print(f"{name:<16} {get_scenario(name).description}")
    return 0


def cmd_workload_describe(args: argparse.Namespace) -> int:
    """Parameters and defaults for one scenario."""
    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"{scenario.name}: {scenario.description}")
    print("parameters (name = default):")
    for key, value in sorted(scenario.defaults.items()):
        print(f"  {key} = {value}")
    return 0


def cmd_workload_generate(args: argparse.Namespace) -> int:
    """Materialize one scenario trace and write it to disk."""
    configs = _scenario_configs(args)
    if len(configs) != 1:
        raise SystemExit("error: generate takes exactly one --scenario")
    trace = generate_trace(configs[0])
    _save_any_trace(trace, args.output, args.format)
    print(
        f"wrote {len(trace)} requests ({configs[0].describe()}) to {args.output}"
    )
    return 0


def cmd_workload_run(args: argparse.Namespace) -> int:
    """Sweep the policy grid over a scenario matrix; print the lab report."""
    configs = _scenario_configs(args)
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    ledger = _ledger_for(args)
    recorder = MemoryRecorder()
    spans = _span_recorder_for(args)
    root_span = (
        spans.begin("cli.workload-run", cat="cli", scenarios=len(configs))
        if spans is not None
        else None
    )
    try:
        report = run_workload_lab(
            configs,
            policies,
            capacity_fraction=args.capacity_fraction,
            jobs=args.jobs,
            window_requests=args.window,
            analyze=args.analyze,
            recorder=recorder,
            spans=spans,
            learner=args.learner,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    if root_span is not None:
        spans.end(root_span)
    if ledger is not None:
        # Flatten the scenario × policy matrix into one cell grid; each
        # cell carries its scenario tag so diffs/SLOs can select on it.
        results = []
        tags = []
        for scenario_report in report.reports:
            for cell in scenario_report.cells:
                if cell.result is None:
                    continue
                results.append(cell.result)
                tags.append(
                    {
                        "scenario": scenario_report.scenario,
                        "drift_windows": cell.drift_windows,
                        "drift_detections": cell.drift_detections,
                        "retrains": cell.retrains,
                    }
                )
        _record_run(
            ledger,
            "workload",
            {
                "scenarios": [config.as_dict() for config in configs],
                "policies": policies,
                "capacity_fraction": args.capacity_fraction,
                "window": args.window,
            },
            results,
            name=",".join(config.scenario for config in configs),
            capture=recorder,
            cell_tags=tags,
            spans=spans,
        )
    _write_trace(spans, args)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    if args.json_out:
        Path(args.json_out).write_text(report.to_json() + "\n")
        print(f"wrote lab report to {args.json_out}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Learning from Optimal Caching for "
        "Content Delivery' (CoNEXT 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="generate / summarize / convert traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    gen = trace_sub.add_parser("generate", help="generate a stand-in trace")
    gen.add_argument("--spec", choices=sorted(PRODUCTION_SPECS), default="cdn-a")
    gen.add_argument("--scale", type=float, default=0.01)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--format", choices=("csv", "webcachesim"), default="csv")
    gen.add_argument("--output", "-o", required=True)
    gen.set_defaults(func=cmd_trace_generate)

    summ = trace_sub.add_parser("summarize", help="Table-1 style summary")
    summ.add_argument("trace")
    summ.set_defaults(func=cmd_trace_summarize)

    conv = trace_sub.add_parser("convert", help="convert between formats")
    conv.add_argument("input")
    conv.add_argument("output")
    conv.set_defaults(func=cmd_trace_convert)

    sim = sub.add_parser("simulate", help="run one policy over a trace")
    sim.add_argument("--trace", required=True)
    sim.add_argument("--policy", choices=known_policies(), default="lhr")
    sim.add_argument("--capacity", type=parse_size, required=True)
    sim.add_argument("--window", type=int, default=0, help="per-window series")
    sim.add_argument(
        "--warmup", type=int, default=0,
        help="requests replayed before metrics start counting",
    )
    sim.add_argument(
        "--shards", type=int, default=1,
        help="hash-shard the object-id space across this many independent "
        "policy instances (capacity split evenly); 1 = unsharded replay",
    )
    sim.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes for --shards (0/1 = serial; result is "
        "bit-identical either way)",
    )
    _add_observability_flags(sim)
    _add_trace_flag(sim)
    _add_learner_flag(sim)
    _add_serve_flag(sim)
    _add_ledger_flags(sim)
    sim.set_defaults(func=cmd_simulate)

    comp = sub.add_parser("compare", help="sweep policies x cache sizes")
    comp.add_argument("--trace", required=True)
    comp.add_argument(
        "--policies", default="lhr,lru,w-tinylfu", help="comma-separated names"
    )
    comp.add_argument(
        "--capacities", type=parse_size, nargs="+", required=True
    )
    comp.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes for the sweep (0/1 = serial; results are "
        "bit-identical either way)",
    )
    comp.add_argument("--window", type=int, default=0, help="sliding window size")
    comp.add_argument(
        "--warmup", type=int, default=0,
        help="requests replayed before metrics start counting",
    )
    _add_observability_flags(comp)
    _add_trace_flag(comp)
    _add_learner_flag(comp)
    _add_serve_flag(comp)
    _add_ledger_flags(comp)
    comp.set_defaults(func=cmd_compare)

    analyze = sub.add_parser(
        "analyze",
        help="miss taxonomy + policy-vs-HRO divergence report",
    )
    analyze.add_argument("--trace", required=True)
    analyze.add_argument("--policy", choices=known_policies(), default="lhr")
    analyze.add_argument("--capacity", type=parse_size, required=True)
    analyze.add_argument(
        "--window", type=int, default=1000,
        help="requests per divergence-report window",
    )
    analyze.add_argument(
        "--window-multiple", type=float, default=4.0,
        help="HRO sliding-window size as a multiple of the cache size",
    )
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format",
    )
    analyze.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the per-window divergence time series as CSV",
    )
    analyze.set_defaults(func=cmd_analyze)

    bounds = sub.add_parser("bounds", help="offline/online bounds for a trace")
    bounds.add_argument("--trace", required=True)
    bounds.add_argument("--capacity", type=parse_size, required=True)
    bounds.set_defaults(func=cmd_bounds)

    curve = sub.add_parser("curve", help="exact LRU hit-rate curve")
    curve.add_argument("--trace", required=True)
    curve.add_argument("--points", type=int, default=16)
    curve.add_argument("--target", type=float, default=None,
                       help="also report the capacity for this hit ratio")
    curve.set_defaults(func=cmd_curve)

    proto = sub.add_parser("prototype", help="emulated ATS/Caffeine deployment")
    proto.add_argument("--spec", choices=sorted(PRODUCTION_SPECS), default="cdn-a")
    proto.add_argument("--system", choices=("ats", "caffeine"), default="ats")
    proto.add_argument("--scale", type=float, default=0.01)
    proto.add_argument("--seed", type=int, default=0)
    _add_observability_flags(proto)
    proto.set_defaults(func=cmd_prototype)

    prof = sub.add_parser(
        "profile",
        help="sampling-profile a replay: phase table + collapsed stacks",
    )
    prof.add_argument("trace", help="trace file to replay")
    prof.add_argument("policy", choices=known_policies(), help="policy to profile")
    prof.add_argument("--capacity", type=parse_size, required=True)
    prof.add_argument("--window", type=int, default=0, help="per-window series")
    prof.add_argument(
        "--warmup", type=int, default=0,
        help="requests replayed before metrics start counting",
    )
    prof.add_argument(
        "--interval-ms", type=float, default=5.0,
        help="stack sampling interval in milliseconds",
    )
    prof.add_argument(
        "--collapsed", metavar="PATH", default=None,
        help="write collapsed-stack output (flamegraph.pl / speedscope) here",
    )
    prof.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format",
    )
    prof.set_defaults(func=cmd_profile)

    bench = sub.add_parser(
        "bench-compare",
        help="regression-check repro-bench/1 telemetry files (oldest first)",
    )
    bench.add_argument(
        "files", nargs="+",
        help="two or more BENCH_*.json files, oldest first; consecutive "
        "pairs are compared",
    )
    bench.add_argument(
        "--throughput-tolerance", type=float, default=10.0, metavar="PCT",
        help="max relative throughput drop before REGRESS (default 10%%)",
    )
    bench.add_argument(
        "--rss-tolerance", type=float, default=20.0, metavar="PCT",
        help="max relative peak-RSS growth before REGRESS (default 20%%)",
    )
    bench.add_argument(
        "--hit-ratio-tolerance", type=float, default=0.01, metavar="ABS",
        help="max absolute per-cell hit-ratio drop before REGRESS",
    )
    bench.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format",
    )
    bench.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI advisory mode)",
    )
    bench.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="compare one new telemetry file against the rolling median of "
        "prior runs recorded in this run-ledger directory",
    )
    bench.add_argument(
        "--history", type=int, default=3, metavar="N",
        help="number of prior ledger runs in the rolling baseline "
        "(default 3)",
    )
    bench.set_defaults(func=cmd_bench_compare)

    workload = sub.add_parser(
        "workload",
        help="non-stationary scenario lab: list / describe / generate / run",
    )
    workload_sub = workload.add_subparsers(dest="workload_command", required=True)

    wl_list = workload_sub.add_parser("list", help="registered scenarios")
    wl_list.set_defaults(func=cmd_workload_list)

    wl_desc = workload_sub.add_parser(
        "describe", help="parameters and defaults for one scenario"
    )
    wl_desc.add_argument("--scenario", required=True)
    wl_desc.set_defaults(func=cmd_workload_describe)

    wl_gen = workload_sub.add_parser(
        "generate", help="materialize one scenario trace to a file"
    )
    wl_gen.add_argument("--scenario", required=True)
    wl_gen.add_argument("--requests", type=int, default=4000)
    wl_gen.add_argument("--seed", type=int, default=0)
    wl_gen.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable)",
    )
    wl_gen.add_argument("--format", choices=("csv", "webcachesim"), default="csv")
    wl_gen.add_argument("--output", "-o", required=True)
    wl_gen.set_defaults(func=cmd_workload_generate)

    wl_run = workload_sub.add_parser(
        "run", help="policy grid over a scenario matrix (the drift stress grid)"
    )
    wl_run.add_argument(
        "--scenario", default="all",
        help="scenario name, comma-separated list, or 'all'",
    )
    wl_run.add_argument(
        "--policies", default="lhr,lru,w-tinylfu", help="comma-separated names"
    )
    wl_run.add_argument("--requests", type=int, default=4000)
    wl_run.add_argument("--seed", type=int, default=0)
    wl_run.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="override a scenario parameter for every scenario (repeatable)",
    )
    wl_run.add_argument(
        "--capacity-fraction", type=float, default=0.1,
        help="cache capacity as a fraction of each scenario's unique bytes",
    )
    wl_run.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes per sweep (0/1 = serial; bit-identical)",
    )
    wl_run.add_argument("--window", type=int, default=0, help="sliding window size")
    wl_run.add_argument(
        "--analyze", action="store_true",
        help="also run the LHR-vs-HRO divergence audit per scenario",
    )
    wl_run.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout report format",
    )
    wl_run.add_argument(
        "--json", dest="json_out", metavar="PATH", default=None,
        help="also write the full report as JSON here",
    )
    _add_trace_flag(wl_run)
    _add_learner_flag(wl_run)
    _add_ledger_flags(wl_run)
    wl_run.set_defaults(func=cmd_workload_run)

    runs = sub.add_parser(
        "runs",
        help="run ledger: list / show / diff / export / check / gc",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger", metavar="DIR", default=None,
            help="ledger directory (default $REPRO_LEDGER_DIR or .repro/runs)",
        )

    r_list = runs_sub.add_parser("list", help="one line per recorded run")
    _runs_common(r_list)
    r_list.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="only the newest N runs (0 = all)",
    )
    r_list.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    r_list.set_defaults(func=cmd_runs_list)

    r_show = runs_sub.add_parser("show", help="full manifest of one run")
    _runs_common(r_show)
    r_show.add_argument(
        "run", help="run id, unique prefix, 'latest', or 'latest~N'"
    )
    r_show.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    r_show.set_defaults(func=cmd_runs_show)

    r_diff = runs_sub.add_parser(
        "diff", help="per-cell and per-window deltas between two runs"
    )
    _runs_common(r_diff)
    r_diff.add_argument("run_a", help="baseline run ref")
    r_diff.add_argument("run_b", help="candidate run ref")
    r_diff.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    r_diff.set_defaults(func=cmd_runs_diff)

    r_export = runs_sub.add_parser(
        "export", help="flatten one run's window series to CSV"
    )
    _runs_common(r_export)
    r_export.add_argument("run", help="run ref (see 'runs show')")
    r_export.add_argument(
        "--csv", metavar="PATH", required=True, help="output CSV path"
    )
    r_export.set_defaults(func=cmd_runs_export)

    r_check = runs_sub.add_parser(
        "check", help="evaluate an SLO spec against one run (exit 1 on "
        "violation)"
    )
    _runs_common(r_check)
    r_check.add_argument("run", help="run ref (see 'runs show')")
    r_check.add_argument(
        "--slo", metavar="PATH", required=True,
        help="repro-slo/1 JSON spec file",
    )
    r_check.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    r_check.add_argument(
        "--warn-only", action="store_true",
        help="report violations but exit 0 (CI advisory mode)",
    )
    r_check.set_defaults(func=cmd_runs_check)

    r_gc = runs_sub.add_parser(
        "gc", help="prune all but the newest --keep runs"
    )
    _runs_common(r_gc)
    r_gc.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="number of newest runs to keep",
    )
    r_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be pruned without deleting",
    )
    r_gc.set_defaults(func=cmd_runs_gc)

    timeline = sub.add_parser(
        "timeline",
        help="phase breakdown, critical path and stragglers of a traced run",
    )
    timeline.add_argument(
        "run", nargs="?", default="latest",
        help="run ref (id, unique prefix, 'latest', 'latest~N'); "
        "default latest",
    )
    timeline.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger directory (default $REPRO_LEDGER_DIR or .repro/runs)",
    )
    timeline.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    timeline.set_defaults(func=cmd_timeline)

    learner = sub.add_parser(
        "learner",
        help="per-window learner-health report of a run recorded with "
        "--learner (calibration, drift evidence, retrain causes)",
    )
    learner.add_argument(
        "run", nargs="?", default="latest",
        help="run ref (id, unique prefix, 'latest', 'latest~N'); "
        "default latest",
    )
    learner.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="ledger directory (default $REPRO_LEDGER_DIR or .repro/runs)",
    )
    learner.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    learner.add_argument(
        "--no-timeline", action="store_true",
        help="omit the per-window drift-evidence timeline table",
    )
    learner.set_defaults(func=cmd_learner)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
