"""Bloom filter used by the B-LRU admission policy (Section 6.2 of the paper).

B-LRU ("Bloom Filter LRU") only admits a content the *second* time it is
seen, which filters out one-hit wonders.  The filter here is a standard
partitioned Bloom filter over ``k`` hash functions derived from two base
hashes (Kirsch-Mitzenmacker double hashing).
"""

from __future__ import annotations

import math

import numpy as np

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer; a cheap, well-distributed 64-bit mixer."""
    value = (value + _GOLDEN64) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class BloomFilter:
    """Fixed-size Bloom filter over integer keys.

    Parameters
    ----------
    expected_items:
        Number of distinct keys the filter is sized for.
    false_positive_rate:
        Target false-positive probability at ``expected_items`` inserts.
    """

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must lie in (0, 1)")
        ln2 = math.log(2.0)
        bits = math.ceil(-expected_items * math.log(false_positive_rate) / (ln2 * ln2))
        self._num_bits = max(64, bits)
        self._num_hashes = max(1, round((self._num_bits / expected_items) * ln2))
        self._bits = np.zeros((self._num_bits + 63) // 64, dtype=np.uint64)
        self._count = 0

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    def __len__(self) -> int:
        """Number of ``add`` calls for keys not already (apparently) present."""
        return self._count

    def _positions(self, key: int):
        h1 = _mix64(key & _MASK64)
        h2 = _mix64(h1) | 1
        for i in range(self._num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self._num_bits

    def add(self, key: int) -> bool:
        """Insert ``key``; return True if it appeared to be present already."""
        present = True
        for pos in self._positions(key):
            word, bit = divmod(pos, 64)
            mask = np.uint64(1 << bit)
            if not self._bits[word] & mask:
                present = False
                self._bits[word] |= mask
        if not present:
            self._count += 1
        return present

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[pos // 64] & np.uint64(1 << (pos % 64))
            for pos in self._positions(key)
        )

    def clear(self) -> None:
        self._bits.fill(0)
        self._count = 0

    def fill_ratio(self) -> float:
        """Fraction of bits set; used to decide when to rotate the filter."""
        set_bits = int(np.unpackbits(self._bits.view(np.uint8)).sum())
        return set_bits / self._num_bits

    def metadata_bytes(self) -> int:
        """Approximate memory footprint in bytes (for overhead accounting)."""
        return self._bits.nbytes
