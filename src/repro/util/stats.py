"""Streaming statistics used across the simulator and prototype harnesses.

The prototype experiments (Tables 2-4) report P90/P99 latency percentiles,
peak memory and average throughput over long request streams; these helpers
compute them incrementally without retaining the full sample.
"""

from __future__ import annotations

import math

import numpy as np


class RunningStats:
    """Welford's online mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def merge(self, other: "RunningStats") -> None:
        """Fold ``other`` into this accumulator (Chan et al. parallel
        Welford update) — used when per-worker registries merge."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        combined = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / combined
        self._mean += delta * other._count / combined
        self._count = combined
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)


class PercentileTracker:
    """Percentile estimation over a bounded reservoir sample.

    Keeps a uniform reservoir of at most ``capacity`` observations, so the
    quantile estimate is unbiased for arbitrarily long streams while memory
    stays constant.  Deterministic for a given seed.
    """

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._reservoir: list[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        self._seen += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            slot = int(self._rng.integers(0, self._seen))
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        return self._seen

    def percentile(self, q: float) -> float:
        """Return the q-th percentile (q in [0, 100]) of the stream so far."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must lie in [0, 100]")
        if not self._reservoir:
            return 0.0
        return float(np.percentile(self._reservoir, q))

    def merge(self, other: "PercentileTracker") -> None:
        """Fold ``other``'s reservoir into this one.

        The result is an approximation (the merged reservoir re-samples
        the other's already-sampled values) but stays deterministic and
        bounded, which is what registry merging across sweep workers
        needs.
        """
        for value in other._reservoir:
            self.add(value)
        # Count the observations the other tracker saw but no longer holds.
        self._seen += max(other._seen - len(other._reservoir), 0)


class EwmaEstimator:
    """Exponentially weighted moving average with optional bias correction.

    Used by AdaptSize-style tuners and the resource-accounting harness to
    smooth noisy per-window measurements.
    """

    def __init__(self, alpha: float = 0.125) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self._alpha = alpha
        self._value = 0.0
        self._weight = 0.0

    def add(self, value: float) -> None:
        self._value = (1 - self._alpha) * self._value + self._alpha * value
        self._weight = (1 - self._alpha) * self._weight + self._alpha

    @property
    def value(self) -> float:
        """Bias-corrected average; 0.0 before any observation."""
        return self._value / self._weight if self._weight else 0.0

    @property
    def initialized(self) -> bool:
        return self._weight > 0.0
