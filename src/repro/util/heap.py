"""Lazy-deletion priority queue keyed by object id.

Cache eviction policies repeatedly need "pop the object with the smallest
priority" while priorities of cached objects change on every hit.  A binary
heap with lazy deletion gives amortized O(log n) updates: stale entries are
left in the heap and skipped at pop time.  This is the eviction engine
behind GDSF, LFU-DA, LHR's eviction rule and several other policies.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator


class LazyHeap:
    """Min-heap mapping ``key -> priority`` with O(log n) update and pop.

    Ties are broken by insertion order (FIFO among equal priorities), which
    matches how classic cache policies (e.g. LFU) behave in simulators.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []
        self._priority: dict[int, float] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._priority)

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __iter__(self) -> Iterator[int]:
        return iter(self._priority)

    def priority(self, key: int) -> float:
        return self._priority[key]

    def push(self, key: int, priority: float) -> None:
        """Insert ``key`` or update its priority."""
        self._priority[key] = priority
        heapq.heappush(self._heap, (priority, self._counter, key))
        self._counter += 1

    def remove(self, key: int) -> None:
        """Remove ``key``; its heap entries become stale and are skipped."""
        del self._priority[key]

    def _compact(self) -> None:
        live = [
            entry
            for entry in self._heap
            if entry[2] in self._priority and self._priority[entry[2]] == entry[0]
        ]
        heapq.heapify(live)
        self._heap = live

    def peek(self) -> tuple[int, float]:
        """Return ``(key, priority)`` of the minimum without removing it."""
        while self._heap:
            priority, _, key = self._heap[0]
            current = self._priority.get(key)
            if current is not None and current == priority:
                return key, priority
            heapq.heappop(self._heap)
        raise IndexError("peek from an empty heap")

    def pop(self) -> tuple[int, float]:
        """Remove and return the ``(key, priority)`` with smallest priority."""
        while self._heap:
            priority, _, key = heapq.heappop(self._heap)
            current = self._priority.get(key)
            if current is not None and current == priority:
                del self._priority[key]
                if len(self._heap) > 8 and len(self._heap) > 4 * len(self._priority):
                    self._compact()
                return key, priority
        raise IndexError("pop from an empty heap")

    def clear(self) -> None:
        self._heap.clear()
        self._priority.clear()
        self._counter = 0
