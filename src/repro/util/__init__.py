"""Shared utility substrate: probabilistic data structures, heaps, sampling,
curve fitting and streaming statistics.

These are the building blocks the caching policies, bounds and the LHR core
are assembled from.  Everything here is deterministic given an explicit seed
and has no dependency on the rest of the package.
"""

from repro.util.bloom import BloomFilter
from repro.util.fitting import ZipfFit, fit_zipf
from repro.util.heap import LazyHeap
from repro.util.sampling import ZipfSampler, zipf_weights
from repro.util.sketch import CountMinSketch
from repro.util.stats import EwmaEstimator, PercentileTracker, RunningStats

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "EwmaEstimator",
    "LazyHeap",
    "PercentileTracker",
    "RunningStats",
    "ZipfFit",
    "ZipfSampler",
    "fit_zipf",
    "zipf_weights",
]
