"""A set of integer keys supporting O(1) add/remove/uniform-sample.

Sampling-based eviction (LRB's 64-candidate sampling, LHR's eviction rule)
needs "pick k random cached objects" in O(k); a dict alone cannot do that,
so we pair a dense list with a key -> slot index.
"""

from __future__ import annotations

import numpy as np


class IndexedSet:
    """Integer-key set with O(1) membership, insertion, removal, sampling."""

    def __init__(self) -> None:
        self._order: list[int] = []
        self._slot: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: int) -> bool:
        return key in self._slot

    def __iter__(self):
        return iter(self._order)

    def add(self, key: int) -> None:
        if key in self._slot:
            return
        self._slot[key] = len(self._order)
        self._order.append(key)

    def remove(self, key: int) -> None:
        slot = self._slot.pop(key)
        last = self._order.pop()
        if last != key:
            self._order[slot] = last
            self._slot[last] = slot

    def discard(self, key: int) -> None:
        if key in self._slot:
            self.remove(key)

    def sample(self, count: int, rng: np.random.Generator) -> list[int]:
        """Uniformly sample up to ``count`` distinct keys."""
        if count >= len(self._order):
            return list(self._order)
        idx = rng.choice(len(self._order), size=count, replace=False)
        # tolist() up front: indexing a list with Python ints (and handing
        # the caller Python-int keys for its dict probes) is measurably
        # faster than doing either with NumPy scalars.
        order = self._order
        return [order[i] for i in idx.tolist()]

    def clear(self) -> None:
        self._order.clear()
        self._slot.clear()
