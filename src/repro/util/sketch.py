"""Count-min sketch with periodic aging, as used by (W-)TinyLFU.

TinyLFU estimates content request frequencies in a compact sketch and
halves all counters every ``sample_size`` increments ("reset" aging), so
the estimate tracks a sliding window of roughly the last ``sample_size``
requests.  This is the frequency oracle behind the Caffeine baseline in
Appendix A.3 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.util.bloom import _mix64

_MASK64 = (1 << 64) - 1


class CountMinSketch:
    """Conservative-update count-min sketch over integer keys.

    Parameters
    ----------
    width:
        Counters per row; rounded up to a power of two.
    depth:
        Number of hash rows.
    sample_size:
        After this many increments every counter is halved (TinyLFU aging).
        ``0`` disables aging.
    max_count:
        Counter saturation value (TinyLFU uses 4-bit counters, i.e. 15).
    """

    def __init__(
        self,
        width: int = 1024,
        depth: int = 4,
        sample_size: int = 0,
        max_count: int = 15,
    ):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if max_count <= 0:
            raise ValueError("max_count must be positive")
        self._width = 1 << (width - 1).bit_length()
        self._depth = depth
        self._mask = self._width - 1
        self._table = np.zeros((depth, self._width), dtype=np.uint32)
        self._sample_size = sample_size
        self._max_count = max_count
        self._increments = 0
        self._seeds = [_mix64(0xC0FFEE + 31 * row) for row in range(depth)]

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    def _indices(self, key: int) -> list[int]:
        return [
            _mix64((key ^ seed) & _MASK64) & self._mask for seed in self._seeds
        ]

    def add(self, key: int, count: int = 1) -> None:
        """Increment ``key`` with conservative update and TinyLFU aging."""
        if count <= 0:
            raise ValueError("count must be positive")
        idx = self._indices(key)
        current = min(int(self._table[row, col]) for row, col in enumerate(idx))
        target = min(current + count, self._max_count)
        for row, col in enumerate(idx):
            if self._table[row, col] < target:
                self._table[row, col] = target
        self._increments += count
        if self._sample_size and self._increments >= self._sample_size:
            self._age()

    def _age(self) -> None:
        self._table >>= 1
        self._increments //= 2

    def estimate(self, key: int) -> int:
        return min(
            int(self._table[row, col]) for row, col in enumerate(self._indices(key))
        )

    def clear(self) -> None:
        self._table.fill(0)
        self._increments = 0

    def metadata_bytes(self) -> int:
        return self._table.nbytes
