"""Least-squares Zipf parameter estimation (Section 5.2.2).

LHR's detection mechanism estimates the Zipf skew ``alpha`` of each
sliding window by regressing ``log p_i`` on ``log i`` — the paper's
"LSM-based model" — and retrains the admission model only when alpha
drifts by more than ``epsilon`` between consecutive windows.  The fit is
O(N) in the number of unique contents.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ZipfFit:
    """Result of a least-squares Zipf fit.

    Attributes
    ----------
    alpha:
        Estimated skew (the negated slope of the log-log regression).
    log_amplitude:
        Estimated intercept ``log A``.
    r_squared:
        Coefficient of determination of the regression.
    num_contents:
        Number of unique contents the fit was computed over.
    alpha_stderr:
        Standard error of the slope estimate — the sampling-noise scale
        of ``alpha``.  Infinite when the fit has no residual degrees of
        freedom (exactly two points), so noise-scaled consumers stay
        conservative instead of trusting a zero-residual fit.
    """

    alpha: float
    log_amplitude: float
    r_squared: float
    num_contents: int
    alpha_stderr: float = float("inf")


def fit_zipf(frequencies: np.ndarray) -> ZipfFit:
    """Fit ``p_i = A / i^alpha`` to a vector of per-content request counts.

    ``frequencies`` need not be sorted or normalized; zero entries are
    dropped.  Raises ``ValueError`` when fewer than two distinct contents
    remain, since a slope is then undefined.
    """
    counts = np.asarray(frequencies, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size < 2:
        raise ValueError("need at least two non-zero frequencies to fit Zipf")
    counts = np.sort(counts)[::-1]
    probabilities = counts / counts.sum()
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(probabilities)
    x_mean = x.mean()
    y_mean = y.mean()
    x_centered = x - x_mean
    denom = float(np.dot(x_centered, x_centered))
    if denom == 0.0:
        raise ValueError("degenerate rank axis")
    slope = float(np.dot(x_centered, y - y_mean)) / denom
    intercept = y_mean - slope * x_mean
    residuals = y - (intercept + slope * x)
    ssr = float(np.dot(residuals, residuals))
    total = float(np.dot(y - y_mean, y - y_mean))
    r_squared = 1.0 - ssr / total if total > 0 else 1.0
    dof = counts.size - 2
    alpha_stderr = (
        float(np.sqrt((ssr / dof) / denom)) if dof > 0 else float("inf")
    )
    return ZipfFit(
        alpha=-slope,
        log_amplitude=intercept,
        r_squared=r_squared,
        num_contents=int(counts.size),
        alpha_stderr=alpha_stderr,
    )


def fit_zipf_from_requests(content_ids) -> ZipfFit:
    """Convenience wrapper: fit Zipf directly from a request id stream."""
    counter = Counter(content_ids)
    if not counter:
        raise ValueError("empty request stream")
    return fit_zipf(np.fromiter(counter.values(), dtype=np.float64))
