"""Zipf popularity sampling for synthetic workloads.

Section 5.2.2 of the paper models content popularity within a sliding
window as Zipf: the i-th most popular content is requested with
probability ``p_i = A / i^alpha``.  The responsiveness experiments in
Section 7.6 ("Syn One" / "Syn Two") draw requests from Markov-modulated
Zipf distributions.  This module provides the samplers those generators
are built on.
"""

from __future__ import annotations

import numpy as np


def require_seed(seed: int | None) -> int:
    """Validate an explicit generator seed.

    ``None`` means "use OS entropy" to ``numpy`` — two such runs would
    silently diverge, which a regression corpus cannot tolerate.  Every
    trace/scenario generation path therefore demands a real integer (or
    an explicit ``rng``, whose provenance is the caller's business).
    """
    if seed is None:
        raise ValueError(
            "trace generation requires an explicit integer seed; "
            "seed=None would draw OS entropy and silently diverge between runs"
        )
    return int(seed)


def zipf_weights(num_contents: int, alpha: float) -> np.ndarray:
    """Normalized Zipf probabilities ``A / i^alpha`` for ranks 1..N."""
    if num_contents <= 0:
        raise ValueError("num_contents must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, num_contents + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


class ZipfSampler:
    """Draws content ranks from a (possibly reversed) Zipf distribution.

    Parameters
    ----------
    num_contents:
        Catalogue size N.
    alpha:
        Zipf skew parameter.
    reverse:
        If True, the *least* popular rank under the forward distribution
        becomes the most popular (``p_j = A/(N-j+1)^alpha``) — the second
        state of the "Syn One" Markov chain in Section 7.6.
    rng:
        NumPy random generator; pass one to share a stream with other
        samplers.  When omitted, a generator seeded with ``seed`` is
        created — draws are reproducible either way (nothing in this
        package consumes OS entropy).
    seed:
        Seed for the internally created generator when ``rng`` is None.
    """

    def __init__(
        self,
        num_contents: int,
        alpha: float,
        reverse: bool = False,
        rng: np.random.Generator | None = None,
        seed: int | None = 0,
    ):
        self.num_contents = num_contents
        self.alpha = alpha
        self.reverse = reverse
        weights = zipf_weights(num_contents, alpha)
        if reverse:
            weights = weights[::-1].copy()
        self._weights = weights
        self._cdf = np.cumsum(weights)
        self._cdf[-1] = 1.0
        self._rng = rng if rng is not None else np.random.default_rng(require_seed(seed))

    @property
    def weights(self) -> np.ndarray:
        """Probability of each content id (0-based)."""
        return self._weights

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` content ids in ``[0, num_contents)``."""
        if count <= 0:
            raise ValueError("count must be positive")
        uniform = self._rng.random(count)
        return np.searchsorted(self._cdf, uniform, side="right").astype(np.int64)

    def probability(self, content_id: int) -> float:
        return float(self._weights[content_id])


def lognormal_sizes(
    count: int,
    mean_bytes: float,
    sigma: float,
    max_bytes: float,
    min_bytes: float = 1024.0,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Heavy-tailed content sizes matching production CDN characteristics.

    Production traces in Table 1 have mean sizes of tens of MB with maxima
    of tens of GB — roughly lognormal bodies with truncated tails.  Sizes
    are clipped to ``[min_bytes, max_bytes]`` and rescaled so the sample
    mean approximates ``mean_bytes``.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if mean_bytes <= 0 or max_bytes < mean_bytes:
        raise ValueError("need 0 < mean_bytes <= max_bytes")
    generator = rng if rng is not None else np.random.default_rng(require_seed(seed))
    mu = np.log(mean_bytes) - sigma**2 / 2.0
    sizes = generator.lognormal(mean=mu, sigma=sigma, size=count)
    sizes = np.clip(sizes, min_bytes, max_bytes)
    scale = mean_bytes / sizes.mean()
    sizes = np.clip(sizes * scale, min_bytes, max_bytes)
    return np.round(sizes).astype(np.int64)
