"""Non-stationary scenario generators — the workload lab's registry.

The paper evaluates LHR on stationary-ish CDN traces; its drift detector
and retraining loop only earn their keep under *non*-stationarity.  This
module provides a registry of parameterized scenario generators covering
the regimes the related work treats as the default for edge content
delivery:

* ``churn`` — popularity churn at a controllable mixing rate: a fraction
  of the rank→content mapping is re-shuffled every phase.
* ``flash-crowd`` — a stationary Zipf background interrupted by a burst
  in which a handful of previously-cold contents absorb most traffic at
  an elevated arrival rate.
* ``diurnal`` — day/night popularity cycling: requests blend two Zipf
  profiles with a sinusoidal mixing weight, arrival rate modulated in
  phase.
* ``one-hit-flood`` — an admission-poisoning adversary: a window of the
  trace is flooded with never-repeated one-hit-wonder objects.
* ``size-shift`` — a correlated size/popularity shift: popularity mass
  moves from the small-object half of the catalogue to the large-object
  half at a configurable point.

Every scenario is generated from one seeded ``numpy`` RNG and emitted
through a single column builder, so :func:`generate_trace` (the
``Request``-list reference path) and :func:`generate_packed` (the
columnar fast path) are bit-identical by construction —
``tests/workloads/test_generators.py`` pins that, plus seeded
determinism, monotone timestamps and positive sizes, for every
registered scenario.

Scenario selection is declarative: a :class:`ScenarioConfig` names the
scenario, its parameter overrides, the seed and the length, and
round-trips through plain dicts (``repro workload`` drives everything
from it).  Seeds are mandatory — ``seed=None`` raises instead of
silently drawing OS entropy, so two runs of the same config can never
diverge.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.traces.packed import PackedTrace
from repro.traces.request import Request, Trace
from repro.util.sampling import lognormal_sizes, require_seed, zipf_weights

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "ScenarioColumns",
    "generate_packed",
    "generate_trace",
    "get_scenario",
    "known_scenarios",
    "register_scenario",
    "require_seed",
]


# ----------------------------------------------------------------------
# Declarative configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioConfig:
    """One scenario instance: name, length, seed and parameter overrides.

    ``params`` is stored as a sorted item tuple (like
    :class:`~repro.sim.parallel.CellSpec`) so configs hash, pickle and
    compare deterministically.  Unknown parameters are rejected against
    the scenario's declared defaults at construction time.
    """

    scenario: str
    num_requests: int
    seed: int
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        spec = get_scenario(self.scenario)
        object.__setattr__(self, "seed", require_seed(self.seed))
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        unknown = sorted(set(dict(self.params)) - set(spec.defaults))
        if unknown:
            known = ", ".join(sorted(spec.defaults))
            raise ValueError(
                f"unknown parameters {unknown} for scenario "
                f"{self.scenario!r}; known: {known}"
            )

    @classmethod
    def make(
        cls,
        scenario: str,
        num_requests: int,
        seed: int,
        **params: float,
    ) -> "ScenarioConfig":
        return cls(
            scenario=scenario,
            num_requests=int(num_requests),
            seed=seed,
            params=tuple(sorted(params.items())),
        )

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioConfig":
        """Build from the declarative dict schema ``{name, length, seed,
        params}`` (``scenario``/``num_requests`` accepted as aliases)."""
        data = dict(payload)
        name = data.pop("name", None) or data.pop("scenario", None)
        if not name:
            raise ValueError("scenario config needs a 'name'")
        length = data.pop("length", None) or data.pop("num_requests", None)
        if length is None:
            raise ValueError("scenario config needs a 'length'")
        seed = require_seed(data.pop("seed", None))
        params = dict(data.pop("params", {}))
        if data:
            raise ValueError(f"unknown scenario config keys: {sorted(data)}")
        return cls.make(name, int(length), seed, **params)

    def as_dict(self) -> dict:
        return {
            "name": self.scenario,
            "length": self.num_requests,
            "seed": self.seed,
            "params": dict(self.params),
        }

    def resolved_params(self) -> dict:
        """Scenario defaults overlaid with this config's overrides."""
        spec = get_scenario(self.scenario)
        resolved = dict(spec.defaults)
        resolved.update(dict(self.params))
        return resolved

    def describe(self) -> str:
        params = ", ".join(
            f"{key}={value}" for key, value in sorted(self.resolved_params().items())
        )
        return (
            f"{self.scenario}(length={self.num_requests}, seed={self.seed}, "
            f"{params})"
        )


#: ``(times, obj_ids, sizes, metadata)`` — what every column builder returns.
ScenarioColumns = tuple[np.ndarray, np.ndarray, np.ndarray, dict]


@dataclass(frozen=True)
class Scenario:
    """A registered scenario generator."""

    name: str
    description: str
    defaults: dict = field(default_factory=dict)
    build_columns: Callable[[int, int, dict], ScenarioColumns] = None

    def columns(self, config: ScenarioConfig) -> ScenarioColumns:
        """The scenario's raw ``(times, obj_ids, sizes, metadata)``."""
        params = config.resolved_params()
        times, obj_ids, sizes, metadata = self.build_columns(
            config.num_requests, config.seed, params
        )
        metadata = {
            "scenario": self.name,
            "seed": config.seed,
            "params": params,
            **metadata,
        }
        return times, obj_ids, sizes, metadata


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

SCENARIO_REGISTRY: dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, defaults: dict
) -> Callable[[Callable], Callable]:
    """Register ``fn(num_requests, seed, params) -> ScenarioColumns``."""

    def wrap(fn: Callable[[int, int, dict], ScenarioColumns]) -> Callable:
        if name in SCENARIO_REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIO_REGISTRY[name] = Scenario(
            name=name,
            description=description,
            defaults=dict(defaults),
            build_columns=fn,
        )
        return fn

    return wrap


def known_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIO_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario; ValueError names the known set."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        known = ", ".join(known_scenarios())
        raise ValueError(f"unknown scenario {name!r}; known: {known}") from None


def generate_packed(config: ScenarioConfig) -> PackedTrace:
    """The scenario as a columnar :class:`PackedTrace` (fast-path native)."""
    times, obj_ids, sizes, metadata = get_scenario(config.scenario).columns(config)
    return PackedTrace.from_arrays(
        times, obj_ids, sizes, name=config.scenario, metadata=metadata
    )


def generate_trace(config: ScenarioConfig) -> Trace:
    """The scenario as a reference ``Request``-list :class:`Trace`.

    Built from the same columns as :func:`generate_packed`, so the two
    emissions are bit-identical (``PackedTrace.from_trace`` of this trace
    reproduces the packed columns exactly).
    """
    times, obj_ids, sizes, metadata = get_scenario(config.scenario).columns(config)
    requests = [
        Request(time=t, obj_id=o, size=s, index=i)
        for i, (t, o, s) in enumerate(
            zip(times.tolist(), obj_ids.tolist(), sizes.tolist())
        )
    ]
    return Trace(requests, name=config.scenario, metadata=metadata)


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------


def _arrival_times(
    rng: np.random.Generator, rates: float | np.ndarray, count: int
) -> np.ndarray:
    """Poisson arrival times; ``rates`` may vary per request."""
    gaps = rng.exponential(1.0, size=count) / rates
    return np.cumsum(gaps)


def _catalogue_sizes(
    rng: np.random.Generator, count: int, mean_size: float
) -> np.ndarray:
    """Per-content sizes, fixed for the trace (ids never change size)."""
    return lognormal_sizes(count, mean_size, 1.2, 64.0 * mean_size, rng=rng)


def _zipf_cdf(num_contents: int, alpha: float) -> np.ndarray:
    cdf = np.cumsum(zipf_weights(num_contents, alpha))
    cdf[-1] = 1.0
    return cdf


def _draw_ranks(
    rng: np.random.Generator, cdf: np.ndarray, count: int
) -> np.ndarray:
    return np.searchsorted(cdf, rng.random(count), side="right").astype(np.int64)


# ----------------------------------------------------------------------
# Scenario: popularity churn at a controllable mixing rate
# ----------------------------------------------------------------------


@register_scenario(
    "churn",
    "popularity churn: a fraction of the rank→content mapping is "
    "re-shuffled every phase (mixing rate = churn_fraction / phase_requests)",
    defaults={
        "num_contents": 300,
        "alpha": 0.8,
        "phase_requests": 1000,
        "churn_fraction": 0.4,
        "request_rate": 100.0,
        "mean_size": float(1 << 16),
    },
)
def _churn_columns(num_requests: int, seed: int, params: dict) -> ScenarioColumns:
    rng = np.random.default_rng(seed)
    num_contents = int(params["num_contents"])
    phase_requests = max(int(params["phase_requests"]), 1)
    churn_fraction = float(params["churn_fraction"])
    if not 0.0 <= churn_fraction <= 1.0:
        raise ValueError("churn_fraction must be in [0, 1]")
    sizes_by_id = _catalogue_sizes(rng, num_contents, params["mean_size"])
    cdf = _zipf_cdf(num_contents, params["alpha"])
    ranks = _draw_ranks(rng, cdf, num_requests)
    mapping = np.arange(num_contents, dtype=np.int64)
    shuffled = max(int(round(churn_fraction * num_contents)), 0)
    obj_ids = np.empty(num_requests, dtype=np.int64)
    boundaries = []
    for start in range(0, num_requests, phase_requests):
        if start:
            boundaries.append(start)
            if shuffled > 1:
                chosen = rng.choice(num_contents, size=shuffled, replace=False)
                mapping[chosen] = mapping[rng.permutation(chosen)]
        stop = min(start + phase_requests, num_requests)
        obj_ids[start:stop] = mapping[ranks[start:stop]]
    times = _arrival_times(rng, params["request_rate"], num_requests)
    return times, obj_ids, sizes_by_id[obj_ids], {"phase_boundaries": boundaries}


# ----------------------------------------------------------------------
# Scenario: flash crowd
# ----------------------------------------------------------------------


@register_scenario(
    "flash-crowd",
    "stationary Zipf background interrupted by a burst in which "
    "flash_contents cold objects absorb flash_weight of the traffic at "
    "rate_boost times the arrival rate",
    defaults={
        "num_contents": 300,
        "alpha": 0.8,
        "flash_contents": 20,
        "flash_start": 0.4,
        "flash_duration": 0.25,
        "flash_weight": 0.7,
        "rate_boost": 4.0,
        "request_rate": 100.0,
        "mean_size": float(1 << 16),
    },
)
def _flash_crowd_columns(
    num_requests: int, seed: int, params: dict
) -> ScenarioColumns:
    rng = np.random.default_rng(seed)
    num_contents = int(params["num_contents"])
    flash_contents = max(int(params["flash_contents"]), 1)
    flash_weight = float(params["flash_weight"])
    if not 0.0 <= flash_weight <= 1.0:
        raise ValueError("flash_weight must be in [0, 1]")
    start = int(float(params["flash_start"]) * num_requests)
    stop = min(start + int(float(params["flash_duration"]) * num_requests),
               num_requests)
    sizes_by_id = _catalogue_sizes(
        rng, num_contents + flash_contents, params["mean_size"]
    )
    cdf = _zipf_cdf(num_contents, params["alpha"])
    background = _draw_ranks(rng, cdf, num_requests)
    # During the flare, each request defects to the flash set with
    # probability flash_weight; flash popularity is itself Zipf so the
    # crowd has a head, like a viral release would.
    flash_cdf = _zipf_cdf(flash_contents, 1.0)
    defect = rng.random(num_requests) < flash_weight
    flash_ids = num_contents + _draw_ranks(rng, flash_cdf, num_requests)
    in_flare = np.zeros(num_requests, dtype=bool)
    in_flare[start:stop] = True
    flare_mask = in_flare & defect
    obj_ids = np.where(flare_mask, flash_ids, background)
    rates = np.full(num_requests, float(params["request_rate"]))
    rates[start:stop] *= float(params["rate_boost"])
    times = _arrival_times(rng, rates, num_requests)
    metadata = {"flash_window": [start, stop]}
    return times, obj_ids, sizes_by_id[obj_ids], metadata


# ----------------------------------------------------------------------
# Scenario: diurnal cycle
# ----------------------------------------------------------------------


@register_scenario(
    "diurnal",
    "day/night popularity cycle: requests blend a day profile and a "
    "rank-reversed night profile with sinusoidal weight, arrival rate "
    "modulated in phase",
    defaults={
        "num_contents": 300,
        "alpha_day": 1.0,
        "alpha_night": 0.6,
        "cycle_requests": 2000,
        "request_rate": 100.0,
        "rate_amplitude": 0.5,
        "mean_size": float(1 << 16),
    },
)
def _diurnal_columns(num_requests: int, seed: int, params: dict) -> ScenarioColumns:
    rng = np.random.default_rng(seed)
    num_contents = int(params["num_contents"])
    cycle = max(int(params["cycle_requests"]), 1)
    amplitude = float(params["rate_amplitude"])
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("rate_amplitude must be in [0, 1)")
    sizes_by_id = _catalogue_sizes(rng, num_contents, params["mean_size"])
    day_cdf = _zipf_cdf(num_contents, params["alpha_day"])
    night_weights = zipf_weights(num_contents, params["alpha_night"])[::-1]
    night_cdf = np.cumsum(night_weights)
    night_cdf[-1] = 1.0
    phase = 2.0 * np.pi * np.arange(num_requests) / cycle
    day_weight = 0.5 * (1.0 + np.sin(phase))
    is_day = rng.random(num_requests) < day_weight
    draws = rng.random(num_requests)
    day_ids = np.searchsorted(day_cdf, draws, side="right")
    night_ids = np.searchsorted(night_cdf, draws, side="right")
    obj_ids = np.where(is_day, day_ids, night_ids).astype(np.int64)
    rates = float(params["request_rate"]) * (1.0 + amplitude * np.sin(phase))
    times = _arrival_times(rng, rates, num_requests)
    return times, obj_ids, sizes_by_id[obj_ids], {"cycle_requests": cycle}


# ----------------------------------------------------------------------
# Scenario: one-hit-wonder flood (admission-poisoning adversary)
# ----------------------------------------------------------------------


@register_scenario(
    "one-hit-flood",
    "admission-poisoning adversary: a window of the trace is flooded "
    "with never-repeated one-hit-wonder objects at flood_rate",
    defaults={
        "num_contents": 300,
        "alpha": 0.8,
        "flood_rate": 0.5,
        "flood_start": 0.3,
        "flood_duration": 0.4,
        "request_rate": 100.0,
        "mean_size": float(1 << 16),
    },
)
def _one_hit_flood_columns(
    num_requests: int, seed: int, params: dict
) -> ScenarioColumns:
    rng = np.random.default_rng(seed)
    num_contents = int(params["num_contents"])
    flood_rate = float(params["flood_rate"])
    if not 0.0 <= flood_rate <= 1.0:
        raise ValueError("flood_rate must be in [0, 1]")
    start = int(float(params["flood_start"]) * num_requests)
    stop = min(start + int(float(params["flood_duration"]) * num_requests),
               num_requests)
    sizes_by_id = _catalogue_sizes(rng, num_contents, params["mean_size"])
    cdf = _zipf_cdf(num_contents, params["alpha"])
    obj_ids = _draw_ranks(rng, cdf, num_requests)
    sizes = sizes_by_id[obj_ids]
    flooded = np.zeros(num_requests, dtype=bool)
    flooded[start:stop] = rng.random(stop - start) < flood_rate
    count = int(flooded.sum())
    if count:
        # Fresh ids beyond the catalogue, each requested exactly once.
        obj_ids[flooded] = num_contents + np.arange(count, dtype=np.int64)
        sizes[flooded] = _catalogue_sizes(rng, count, params["mean_size"])
    times = _arrival_times(rng, params["request_rate"], num_requests)
    metadata = {"flood_window": [start, stop], "flood_requests": count}
    return times, obj_ids, sizes, metadata


# ----------------------------------------------------------------------
# Scenario: correlated size/popularity shift
# ----------------------------------------------------------------------


@register_scenario(
    "size-shift",
    "correlated size/popularity shift: popularity mass moves from the "
    "small-object half of the catalogue to the large-object half at "
    "shift_at",
    defaults={
        "num_contents": 400,
        "alpha": 0.8,
        "shift_at": 0.5,
        "small_mean_size": float(1 << 14),
        "large_mean_size": float(1 << 18),
        "request_rate": 100.0,
    },
)
def _size_shift_columns(
    num_requests: int, seed: int, params: dict
) -> ScenarioColumns:
    rng = np.random.default_rng(seed)
    num_contents = int(params["num_contents"])
    half = max(num_contents // 2, 1)
    shift_at = float(params["shift_at"])
    if not 0.0 <= shift_at <= 1.0:
        raise ValueError("shift_at must be in [0, 1]")
    shift_index = int(shift_at * num_requests)
    small_sizes = _catalogue_sizes(rng, half, params["small_mean_size"])
    large_sizes = _catalogue_sizes(
        rng, num_contents - half, params["large_mean_size"]
    )
    sizes_by_id = np.concatenate([small_sizes, large_sizes])
    cdf = _zipf_cdf(num_contents, params["alpha"])
    ranks = _draw_ranks(rng, cdf, num_requests)
    # Phase 1: top ranks map onto the small-object ids (0..half-1);
    # phase 2: onto the large-object ids — same skew, shifted mass.
    before = np.concatenate(
        [np.arange(half), np.arange(half, num_contents)]
    ).astype(np.int64)
    after = np.concatenate(
        [np.arange(half, num_contents), np.arange(half)]
    ).astype(np.int64)
    obj_ids = np.where(
        np.arange(num_requests) < shift_index, before[ranks], after[ranks]
    )
    times = _arrival_times(rng, params["request_rate"], num_requests)
    return times, obj_ids, sizes_by_id[obj_ids], {"shift_index": shift_index}
