"""The non-stationary workload lab: scenario matrix × policy grid.

``run_workload_lab`` drives the full policy grid over a matrix of
registered scenarios through the existing parallel sweep engine and
folds the results into an icarus-style experiment report: per-scenario,
per-policy hit ratios plus the drift/retrain activity the
:mod:`repro.obs` event stream recorded for each cell (``lhr.drift`` /
``lhr.retrain``), and — optionally — the LHR-vs-HRO divergence summary
from :mod:`repro.obs.analyze`.

The report is what pins *where the drift detector saves LHR versus where
it thrashes*: a cell whose retrain count tracks the scenario's injected
change points is adapting; one that retrains every window on a
stationary scenario is thrashing (see ``docs/WORKLOADS.md``).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs import MemoryRecorder, MetricsRegistry, Observation
from repro.obs.learner import LearnerSeries, LearnerTelemetry
from repro.sim.metrics import SimulationResult
from repro.sim.runner import run_comparison
from repro.traces.packed import PackedTrace
from repro.workloads.scenarios import ScenarioConfig, generate_packed

__all__ = [
    "ScenarioCell",
    "ScenarioReport",
    "WorkloadLabReport",
    "packed_unique_bytes",
    "run_workload_lab",
]


def packed_unique_bytes(packed: PackedTrace) -> int:
    """Sum of distinct-content sizes, straight from the columns."""
    _, first_index = np.unique(packed.obj_ids, return_index=True)
    return int(packed.sizes[first_index].sum())


@dataclass
class ScenarioCell:
    """One (scenario, policy) cell of the lab grid."""

    policy: str
    capacity: int
    requests: int
    hits: int
    object_hit_ratio: float
    byte_hit_ratio: float
    evictions: int
    admissions: int
    #: Windows the drift detector inspected / flagged, and GBM refits —
    #: from the cell's ``lhr.drift``/``lhr.retrain`` events (0 for
    #: policies without a drift pipeline).
    drift_windows: int = 0
    drift_detections: int = 0
    retrains: int = 0
    #: The cell's full :class:`~repro.sim.metrics.SimulationResult`
    #: (window series included) — kept for the run ledger; deliberately
    #: excluded from ``as_dict`` so report JSON (and the golden corpus)
    #: is unchanged.
    result: SimulationResult | None = field(
        default=None, repr=False, compare=False
    )
    #: Learner-health digest (windows, Brier score, shadow-detector
    #: drifts, noise-dominated detections) when the lab ran with
    #: ``learner=True`` and the policy has a learner; ``None`` otherwise
    #: — absent from ``as_dict`` so the golden corpus JSON is unchanged
    #: for non-learner runs.
    learner_health: dict | None = None

    def as_dict(self) -> dict:
        payload = {
            "policy": self.policy,
            "capacity": self.capacity,
            "requests": self.requests,
            "hits": self.hits,
            "object_hit_ratio": round(self.object_hit_ratio, 6),
            "byte_hit_ratio": round(self.byte_hit_ratio, 6),
            "evictions": self.evictions,
            "admissions": self.admissions,
            "drift_windows": self.drift_windows,
            "drift_detections": self.drift_detections,
            "retrains": self.retrains,
        }
        if self.learner_health is not None:
            payload["learner"] = self.learner_health
        return payload


@dataclass
class ScenarioReport:
    """All policy cells for one scenario instance."""

    scenario: str
    config: dict
    capacity: int
    unique_bytes: int
    num_requests: int
    #: Scenario defaults overlaid with the config's overrides.
    params: dict = field(default_factory=dict)
    cells: list[ScenarioCell] = field(default_factory=list)
    #: Compact LHR-vs-HRO divergence summary (``repro analyze``), present
    #: only when the lab ran with ``analyze=True``.
    divergence: dict | None = None

    def cell(self, policy: str) -> ScenarioCell:
        for cell in self.cells:
            if cell.policy == policy:
                return cell
        raise KeyError(f"no cell for policy {policy!r} in {self.scenario!r}")

    def as_dict(self) -> dict:
        payload = {
            "scenario": self.scenario,
            "config": self.config,
            "params": self.params,
            "capacity": self.capacity,
            "unique_bytes": self.unique_bytes,
            "num_requests": self.num_requests,
            "cells": [cell.as_dict() for cell in self.cells],
        }
        if self.divergence is not None:
            payload["divergence"] = self.divergence
        return payload


@dataclass
class WorkloadLabReport:
    """The lab's full scenario × policy experiment tree."""

    reports: list[ScenarioReport]
    policies: list[str]
    capacity_fraction: float

    def scenario(self, name: str) -> ScenarioReport:
        for report in self.reports:
            if report.scenario == name:
                return report
        raise KeyError(f"no scenario {name!r} in this report")

    def as_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "capacity_fraction": self.capacity_fraction,
            "scenarios": [report.as_dict() for report in self.reports],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """icarus-style experiment tree: one block per scenario, one row
        per policy cell."""
        lines: list[str] = []
        for report in self.reports:
            param_text = ", ".join(
                f"{key}={value}" for key, value in sorted(report.params.items())
            )
            lines.append(
                f"scenario {report.scenario}  (length={report.num_requests}, "
                f"seed={report.config.get('seed')}, {param_text})"
            )
            lines.append(
                f"  capacity {report.capacity} bytes "
                f"({self.capacity_fraction:.0%} of {report.unique_bytes} "
                f"unique bytes)"
            )
            has_learner = any(
                cell.learner_health is not None for cell in report.cells
            )
            header = (
                f"  {'policy':<12}{'hit':>8}{'byte-hit':>10}{'evict':>8}"
                f"{'windows':>9}{'drift':>7}{'retrain':>9}"
            )
            if has_learner:
                header += f"{'brier':>9}{'shadow':>8}{'noisy':>7}"
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for cell in report.cells:
                row = (
                    f"  {cell.policy:<12}{cell.object_hit_ratio:>8.4f}"
                    f"{cell.byte_hit_ratio:>10.4f}{cell.evictions:>8}"
                    f"{cell.drift_windows:>9}{cell.drift_detections:>7}"
                    f"{cell.retrains:>9}"
                )
                if has_learner:
                    health = cell.learner_health
                    if health is None:
                        row += f"{'-':>9}{'-':>8}{'-':>7}"
                    else:
                        brier = health["brier"]
                        row += (
                            f"{brier:>9.4f}" if brier is not None
                            else f"{'-':>9}"
                        )
                        row += (
                            f"{health['shadow_drifts']:>8}"
                            f"{health['noise_dominated_detections']:>7}"
                        )
                lines.append(row)
            if report.divergence is not None:
                div = report.divergence
                lines.append(
                    f"  divergence vs hro ({div['policy']}): "
                    f"agreement {div['agreement_rate']:.4f}  "
                    f"policy hit {div['policy_hit_ratio']:.4f}  "
                    f"hro hit {div['hro_hit_ratio']:.4f}"
                )
            lines.append("")
        return "\n".join(lines).rstrip("\n")


def _event_counts(events: Sequence[dict], lab_run: int) -> dict[int, dict]:
    """Per-cell drift/retrain tallies from one lab recorder stream.

    Sweeps are tagged ``scenario=<name>, lab_run=<index>``
    (``run_comparison``'s ``event_fields``), so a single recorder holds
    the whole matrix and repeated configs of one scenario stay distinct.
    """
    counts: dict[int, dict] = {}
    for event in events:
        if event.get("lab_run") != lab_run:
            continue
        cell = event.get("cell")
        if cell is None:
            continue
        tally = counts.setdefault(
            cell, {"drift_windows": 0, "drift_detections": 0, "retrains": 0}
        )
        if event["event"] == "lhr.drift":
            tally["drift_windows"] += 1
            if event.get("drifted"):
                tally["drift_detections"] += 1
        elif event["event"] == "lhr.retrain":
            tally["retrains"] += 1
    return counts


def _learner_health(series: LearnerSeries | None) -> dict | None:
    """Per-cell learner-health digest for the lab report.

    ``None`` for policies without a learner (no window pipeline records
    a series) — the row then renders dashes rather than fake zeros.
    """
    if series is None or not series.windows:
        return None
    brier = series.calibration().brier
    cols = series.columns
    return {
        "windows": series.windows,
        "brier": round(float(brier), 6) if np.isfinite(brier) else None,
        "shadow_drifts": int(cols["shadow_drift"].sum()),
        "noise_dominated_detections": series.noise_dominated_detections(),
    }


def _divergence_summary(
    trace, capacity: int, policy: str, window_requests: int
) -> dict:
    """Compact ``repro analyze`` digest for one scenario."""
    from repro.obs.analyze import analyze_trace

    report = analyze_trace(
        trace, capacity, policy=policy, window_requests=window_requests
    )
    totals = report.divergence.totals
    return {
        "policy": report.policy,
        "agreement_rate": round(totals.agreement_rate, 6),
        "false_admits": totals.false_admits,
        "false_rejects": totals.false_rejects,
        "policy_hit_ratio": round(report.policy_hit_ratio, 6),
        "hro_hit_ratio": round(report.hro_hit_ratio, 6),
        "miss_taxonomy": report.policy_taxonomy.as_dict(),
    }


def run_workload_lab(
    configs: Sequence[ScenarioConfig],
    policies: Sequence[str],
    capacity_fraction: float = 0.1,
    jobs: int = 0,
    window_requests: int = 0,
    policy_kwargs: dict[str, dict] | None = None,
    analyze: bool = False,
    analyze_policy: str = "lhr",
    analyze_window: int = 1000,
    recorder: MemoryRecorder | None = None,
    spans=None,
    learner: bool = False,
) -> WorkloadLabReport:
    """Run ``policies`` over every scenario in ``configs``.

    Each scenario generates its packed trace, derives the cell capacity
    as ``capacity_fraction`` of the scenario's unique bytes, and fans the
    policy grid out through :func:`~repro.sim.runner.run_comparison`
    (``jobs`` workers; serial and parallel runs are bit-identical).  The
    whole matrix runs under one observed recorder with sweeps tagged by
    scenario, so drift/retrain counts per cell come straight from the
    ``lhr.drift``/``lhr.retrain`` events.

    With ``analyze=True`` each scenario additionally runs the
    decision-trace divergence audit (``repro analyze``) for
    ``analyze_policy`` — slower, but it pins *why* the learned policy
    lost hits where it did.

    Pass a ``recorder`` to keep the raw event stream (e.g. to write it
    out as JSONL afterwards); one is created internally otherwise.  Pass
    a ``spans`` recorder (:class:`~repro.obs.spans.SpanRecorder`) to
    record the lab's timeline: one ``cat="lab"`` span per scenario
    (generation + sweep), with each sweep's driver/worker spans nested
    beneath it — the CLI's ``--trace-out`` rides this.

    With ``learner=True`` every sweep also records per-window
    learner-health telemetry (:mod:`repro.obs.learner`); each cell's
    series rides its ``SimulationResult`` and the report grows
    ``learner`` columns (Brier score, shadow-detector drifts,
    noise-dominated detections) — the stationary-thrash evidence in one
    table.
    """
    if not configs:
        raise ValueError("no scenario configs to run")
    if not 0.0 < capacity_fraction <= 1.0:
        raise ValueError("capacity_fraction must be in (0, 1]")
    recorder = recorder if recorder is not None else MemoryRecorder()
    obs = Observation(
        recorder=recorder,
        registry=MetricsRegistry(),
        spans=spans,
        # One hub gates learner recording for every sweep; the per-cell
        # series the report consumes ride each SimulationResult (the hub
        # itself reuses cell indices across scenarios, so it is only the
        # on/off switch here, not the data path).
        learner=LearnerTelemetry() if learner else None,
    )
    policies = list(policies)
    reports: list[ScenarioReport] = []
    for lab_run, config in enumerate(configs):
        scenario_span = (
            obs.spans.begin(
                f"scenario {config.scenario}",
                cat="lab",
                scenario=config.scenario,
                lab_run=lab_run,
            )
            if obs.spans.enabled
            else None
        )
        with obs.spans.span("lab.generate", cat="lab"):
            packed = generate_packed(config)
        unique_bytes = packed_unique_bytes(packed)
        capacity = max(int(capacity_fraction * unique_bytes), 1)
        results: list[SimulationResult] = run_comparison(
            packed,
            policies,
            [capacity],
            window_requests=window_requests,
            policy_kwargs=policy_kwargs,
            parallel=jobs,
            obs=obs,
            event_fields={"scenario": config.scenario, "lab_run": lab_run},
        )
        counts = _event_counts(recorder.events, lab_run)
        cells = []
        for index, (policy, result) in enumerate(zip(policies, results)):
            tally = counts.get(index, {})
            cells.append(
                ScenarioCell(
                    policy=policy,
                    capacity=capacity,
                    requests=result.requests,
                    hits=result.hits,
                    object_hit_ratio=result.object_hit_ratio,
                    byte_hit_ratio=result.byte_hit_ratio,
                    evictions=result.evictions,
                    admissions=result.admissions,
                    drift_windows=tally.get("drift_windows", 0),
                    drift_detections=tally.get("drift_detections", 0),
                    retrains=tally.get("retrains", 0),
                    result=result,
                    learner_health=_learner_health(
                        getattr(result, "learner", None)
                    ),
                )
            )
        report = ScenarioReport(
            scenario=config.scenario,
            config=config.as_dict(),
            capacity=capacity,
            unique_bytes=unique_bytes,
            num_requests=len(packed),
            params=config.resolved_params(),
            cells=cells,
        )
        if analyze and analyze_policy in policies:
            with obs.spans.span("lab.analyze", cat="lab"):
                report.divergence = _divergence_summary(
                    packed.unpack(), capacity, analyze_policy, analyze_window
                )
        if scenario_span is not None:
            obs.spans.end(scenario_span)
        reports.append(report)
    return WorkloadLabReport(
        reports=reports,
        policies=policies,
        capacity_fraction=capacity_fraction,
    )
