"""Non-stationary workload lab: scenario registry, generators and the
scenario-matrix experiment runner.

See ``docs/WORKLOADS.md`` for the scenario catalogue and the drift-thrash
findings, and ``repro workload --help`` for the CLI surface.
"""

from repro.workloads.lab import (
    ScenarioCell,
    ScenarioReport,
    WorkloadLabReport,
    packed_unique_bytes,
    run_workload_lab,
)
from repro.workloads.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    ScenarioConfig,
    generate_packed,
    generate_trace,
    get_scenario,
    known_scenarios,
    register_scenario,
    require_seed,
)

__all__ = [
    "SCENARIO_REGISTRY",
    "Scenario",
    "ScenarioCell",
    "ScenarioConfig",
    "ScenarioReport",
    "WorkloadLabReport",
    "generate_packed",
    "generate_trace",
    "get_scenario",
    "known_scenarios",
    "packed_unique_bytes",
    "register_scenario",
    "require_seed",
    "run_workload_lab",
]
