"""Request and trace records — the common currency of the whole package.

Every policy, bound and prototype consumes a stream of
``(time, content id, size)`` tuples; nothing downstream depends on where
the stream came from (synthetic generator, production stand-in or a CSV on
disk).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Request:
    """A single content request.

    Attributes
    ----------
    time:
        Arrival timestamp in seconds (monotonically non-decreasing within
        a trace).
    obj_id:
        Integer content identifier.
    size:
        Content size in bytes.
    index:
        Zero-based sequence number within the trace; ``-1`` if unknown.
    """

    time: float
    obj_id: int
    size: int
    index: int = -1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.time < 0:
            raise ValueError(f"request time must be non-negative, got {self.time}")


@dataclass
class Trace:
    """A materialized request trace with optional provenance metadata."""

    requests: list[Request]
    name: str = "trace"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.requests = [
            req if req.index == idx else Request(req.time, req.obj_id, req.size, idx)
            for idx, req in enumerate(self.requests)
        ]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Trace(list(self.requests[item]), name=self.name, metadata=dict(self.metadata))
        return self.requests[item]

    @classmethod
    def from_tuples(
        cls, rows: Iterable[tuple[float, int, int]], name: str = "trace"
    ) -> "Trace":
        """Build a trace from ``(time, obj_id, size)`` tuples."""
        requests = [
            Request(time=float(t), obj_id=int(o), size=int(s), index=i)
            for i, (t, o, s) in enumerate(rows)
        ]
        return cls(requests, name=name)

    @property
    def duration(self) -> float:
        """Trace span in seconds (0 for traces with fewer than 2 requests)."""
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].time - self.requests[0].time

    def unique_contents(self) -> dict[int, int]:
        """Map of content id -> size for every distinct content."""
        sizes: dict[int, int] = {}
        for req in self.requests:
            sizes[req.obj_id] = req.size
        return sizes

    def total_bytes(self) -> int:
        return sum(req.size for req in self.requests)

    def unique_bytes(self) -> int:
        return sum(self.unique_contents().values())

    def validate(self) -> None:
        """Raise ``ValueError`` if timestamps regress or sizes are inconsistent.

        A content that changes size mid-trace would silently corrupt the
        byte accounting of every policy, so we check for it here.
        """
        sizes: dict[int, int] = {}
        last_time = -1.0
        for req in self.requests:
            if req.time < last_time:
                raise ValueError(
                    f"timestamps regress at index {req.index}: "
                    f"{req.time} < {last_time}"
                )
            last_time = req.time
            known = sizes.setdefault(req.obj_id, req.size)
            if known != req.size:
                raise ValueError(
                    f"content {req.obj_id} changes size {known} -> {req.size}"
                )
