"""Columnar trace representation — the replay engine's native format.

A ``Trace`` is a list of ``Request`` dataclass instances; that is the
*reference* representation every policy understands.  ``PackedTrace``
carries the same information as three primitive NumPy columns
``(times, obj_ids, sizes)``:

* it pickles in a few contiguous buffers instead of per-object records,
* :func:`repro.sim.engine.replay_into` drives policies straight from the
  columns through ``CachePolicy.request_scalar`` — no per-request
  ``Request`` allocation on the hot path,
* :class:`SharedTraceBuffers` places the columns in POSIX shared memory
  once so sweep workers map them read-only instead of unpickling their
  own copy of a million-request trace.

The object path remains the semantic reference: ``unpack()`` rebuilds the
exact ``Trace`` and the equivalence suite (``tests/sim/test_fastpath.py``)
pins both paths to bit-identical hit/miss streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.traces.request import Request, Trace

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _int64_column(values, column: str) -> np.ndarray:
    """Convert ``values`` to an int64 array, naming the offender on overflow."""
    try:
        return np.asarray(values, dtype=np.int64)
    except OverflowError as exc:
        for index, value in enumerate(values):
            if not _INT64_MIN <= value <= _INT64_MAX:
                raise ValueError(
                    f"request {index}: {column}={value} does not fit the "
                    f"packed int64 column (range [{_INT64_MIN}, {_INT64_MAX}])"
                ) from exc
        raise


@dataclass(frozen=True)
class PackedTrace:
    """Columnar ``(times, obj_ids, sizes)`` view of a request trace.

    ``times`` is float64; ``obj_ids`` and ``sizes`` are int64, so ids and
    sizes beyond 2**63 - 1 are rejected at packing time with a clear
    error rather than wrapping silently.
    """

    times: np.ndarray
    obj_ids: np.ndarray
    sizes: np.ndarray
    name: str
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {
            self.times.shape[0],
            self.obj_ids.shape[0],
            self.sizes.shape[0],
        }
        if len(lengths) != 1:
            raise ValueError(
                "packed columns disagree on length: "
                f"times={self.times.shape[0]}, obj_ids={self.obj_ids.shape[0]}, "
                f"sizes={self.sizes.shape[0]}"
            )

    @classmethod
    def from_trace(cls, trace: Trace) -> "PackedTrace":
        times = np.asarray([req.time for req in trace], dtype=np.float64)
        obj_ids = _int64_column([req.obj_id for req in trace], "obj_id")
        sizes = _int64_column([req.size for req in trace], "size")
        return cls(times, obj_ids, sizes, trace.name, dict(trace.metadata))

    @classmethod
    def from_arrays(
        cls,
        times,
        obj_ids,
        sizes,
        name: str = "trace",
        metadata: dict | None = None,
    ) -> "PackedTrace":
        """Build from array-likes, validating what ``Request`` would."""
        times = np.asarray(times, dtype=np.float64)
        obj_ids = _int64_column(obj_ids, "obj_id")
        sizes = _int64_column(sizes, "size")
        packed = cls(times, obj_ids, sizes, name, dict(metadata or {}))
        if len(packed) and float(times.min()) < 0:
            index = int(np.argmin(times))
            raise ValueError(
                f"request {index}: time must be non-negative, got {times[index]}"
            )
        if len(packed) and int(sizes.min()) <= 0:
            index = int(np.argmin(sizes))
            raise ValueError(
                f"request {index}: size must be positive, got {sizes[index]}"
            )
        return packed

    def unpack(self) -> Trace:
        """Rebuild the reference ``Trace`` (requests carry their indices)."""
        requests = [
            Request(time=t, obj_id=o, size=s, index=i)
            for i, (t, o, s) in enumerate(
                zip(self.times.tolist(), self.obj_ids.tolist(), self.sizes.tolist())
            )
        ]
        return Trace(requests, name=self.name, metadata=dict(self.metadata))

    def scalar_columns(self) -> tuple[list, list, list]:
        """``(obj_ids, sizes, times)`` as plain Python lists.

        Plain lists of ints/floats are the fastest iteration substrate for
        the scalar replay loop (NumPy scalar extraction boxes per element);
        the conversion happens once and is cached on the instance.
        """
        scalars = self.__dict__.get("_scalars")
        if scalars is None:
            scalars = (
                self.obj_ids.tolist(),
                self.sizes.tolist(),
                self.times.tolist(),
            )
            object.__setattr__(self, "_scalars", scalars)
        return scalars

    def iter_scalars(self):
        """Yield ``(obj_id, size, time)`` per request, in trace order."""
        obj_ids, sizes, times = self.scalar_columns()
        return zip(obj_ids, sizes, times)

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __getstate__(self):
        # The scalar-column cache can triple the payload; rebuild lazily
        # on the receiving side instead of shipping it.
        state = dict(self.__dict__)
        state.pop("_scalars", None)
        return state


# ----------------------------------------------------------------------
# Shared-memory transport (driver creates, workers attach read-only)
# ----------------------------------------------------------------------

#: Segment names created by this process and not yet released — the leak
#: check surface for tests and post-mortem debugging.
_LIVE_SEGMENTS: set[str] = set()


def live_segment_names() -> tuple[str, ...]:
    """Names of shared trace segments this process currently owns."""
    return tuple(sorted(_LIVE_SEGMENTS))


@dataclass(frozen=True)
class SharedTraceDescriptor:
    """Picklable handle a worker needs to map a shared packed trace."""

    segment: str
    count: int
    name: str
    metadata: dict = field(default_factory=dict)


class SharedTraceBuffers:
    """Driver-side owner of one shared-memory segment holding the packed
    columns back to back (``times | obj_ids | sizes``, 24 bytes/request).

    The creating process owns the segment's lifetime: ``release()`` (or
    process exit via the resource tracker) unlinks it.  Workers attach
    through :func:`attach_shared_trace` with the picklable ``descriptor``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, descriptor: SharedTraceDescriptor):
        self._shm = shm
        self.descriptor = descriptor
        self._released = False

    @classmethod
    def create(cls, packed: PackedTrace) -> "SharedTraceBuffers":
        count = len(packed)
        # A zero-length segment is invalid; one spare byte keeps the empty
        # trace on the same code path.
        shm = shared_memory.SharedMemory(create=True, size=max(24 * count, 1))
        try:
            np.ndarray(count, dtype=np.float64, buffer=shm.buf)[:] = packed.times
            np.ndarray(count, dtype=np.int64, buffer=shm.buf, offset=8 * count)[
                :
            ] = packed.obj_ids
            np.ndarray(count, dtype=np.int64, buffer=shm.buf, offset=16 * count)[
                :
            ] = packed.sizes
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        descriptor = SharedTraceDescriptor(
            segment=shm.name,
            count=count,
            name=packed.name,
            metadata=dict(packed.metadata),
        )
        _LIVE_SEGMENTS.add(shm.name)
        return cls(shm, descriptor)

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Close and unlink the segment; safe to call more than once."""
        if self._released:
            return
        self._released = True
        _LIVE_SEGMENTS.discard(self._shm.name)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover — already gone
            pass


def attach_shared_trace(
    descriptor: SharedTraceDescriptor,
) -> tuple[PackedTrace, shared_memory.SharedMemory]:
    """Map a shared packed trace read-only (worker side).

    Returns the columnar view plus the ``SharedMemory`` handle the caller
    must keep alive while the arrays are in use (dropping it invalidates
    the buffer).

    Resource-tracker note: ``SharedMemory`` registers every attach with
    the resource tracker, which sweep workers *share* with the driver
    (both fork and spawn children inherit the tracker process), so the
    duplicate registration is an idempotent set-add there.  The driver's
    ``release()`` unlinks and removes the single cache entry; explicitly
    unregistering here would strip the driver's registration instead —
    producing tracker KeyError noise at exit and losing the crash
    protection that unlinks the segment if the driver dies hard.
    """
    shm = shared_memory.SharedMemory(name=descriptor.segment)
    count = descriptor.count
    times = np.ndarray(count, dtype=np.float64, buffer=shm.buf)
    obj_ids = np.ndarray(count, dtype=np.int64, buffer=shm.buf, offset=8 * count)
    sizes = np.ndarray(count, dtype=np.int64, buffer=shm.buf, offset=16 * count)
    for column in (times, obj_ids, sizes):
        column.flags.writeable = False
    packed = PackedTrace(
        times, obj_ids, sizes, descriptor.name, dict(descriptor.metadata)
    )
    return packed, shm
