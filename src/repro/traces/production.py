"""Stand-ins for the paper's four production CDN traces.

The originals (CDN-A, CDN-B, CDN-C, Wikipedia — Table 1) are proprietary.
Each :class:`TraceSpec` below encodes the published per-trace statistics:
duration, unique contents, request count, content-size distribution
(mean / max / shape) and popularity skew, plus two behavioural knobs the
paper describes qualitatively — the one-hit-wonder share (CDN-C "most
contents are only requested once") and popularity drift (all traces are
non-stationary; Section 5.2.3).

``generate_production_trace(spec, scale=...)`` materializes a synthetic
trace with those statistics.  ``scale`` shrinks request and catalogue
counts proportionally so unit tests and CI benchmarks stay fast; cache
sizes for experiments must then be shrunk by the same factor, which
``TraceSpec.scaled_cache_bytes`` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.request import Request, Trace
from repro.util.sampling import lognormal_sizes, require_seed, zipf_weights

GB = 1 << 30
MB = 1 << 20


@dataclass(frozen=True)
class TraceSpec:
    """Statistical profile of one production trace (one column of Table 1)."""

    name: str
    duration_hours: float
    unique_contents: int
    total_requests: int
    mean_size_mb: float
    max_size_mb: float
    size_sigma: float
    alpha: float
    one_hit_fraction: float
    drift_segments: int
    drift_alpha_amplitude: float
    #: Spearman-style correlation between popularity and size.  CDN video
    #: workloads skew positive (popular titles are large); request-for-
    #: content traces like CDN-C are near zero.
    size_popularity_corr: float
    cache_sizes_gb: tuple[int, ...]
    prototype_cache_gb: int
    caffeine_cache_gb: int
    description: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        return self.duration_hours * 3600.0

    @property
    def request_rate(self) -> float:
        """Mean aggregate arrival rate in requests per second."""
        return self.total_requests / self.duration_seconds

    def scaled_cache_bytes(self, cache_gb: float, scale: float) -> int:
        """Cache capacity matching a paper cache size at reduced trace scale.

        Content sizes are not scaled, so the working set shrinks linearly
        with the catalogue; cache sizes must shrink by the same factor for
        the hit-ratio regime to match the paper's.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return max(int(cache_gb * GB * scale), 1)


PRODUCTION_SPECS: dict[str, TraceSpec] = {
    "cdn-a": TraceSpec(
        name="cdn-a",
        duration_hours=24.0,
        unique_contents=330_446,
        total_requests=970_000,
        mean_size_mb=25.5,
        max_size_mb=7_790.0,
        size_sigma=1.8,
        alpha=0.85,
        one_hit_fraction=0.55,
        size_popularity_corr=0.35,
        drift_segments=12,
        drift_alpha_amplitude=0.10,
        cache_sizes_gb=(256, 512),
        prototype_cache_gb=512,
        caffeine_cache_gb=64,
        description="mixed web and video traffic from several nodes",
    ),
    "cdn-b": TraceSpec(
        name="cdn-b",
        duration_hours=9.9,
        unique_contents=162_104,
        total_requests=1_000_000,
        mean_size_mb=68.4,
        max_size_mb=38_392.0,
        size_sigma=1.9,
        alpha=0.95,
        one_hit_fraction=0.40,
        size_popularity_corr=0.5,
        drift_segments=8,
        drift_alpha_amplitude=0.12,
        cache_sizes_gb=(512, 1024),
        prototype_cache_gb=1024,
        caffeine_cache_gb=128,
        description="mobile video from one live-streaming system",
    ),
    "cdn-c": TraceSpec(
        name="cdn-c",
        duration_hours=330.0,
        unique_contents=297_920,
        total_requests=600_000,
        mean_size_mb=100.0,
        max_size_mb=101.0,
        size_sigma=0.02,
        alpha=0.55,
        one_hit_fraction=0.75,
        size_popularity_corr=0.0,
        drift_segments=20,
        drift_alpha_amplitude=0.06,
        cache_sizes_gb=(64, 128),
        prototype_cache_gb=128,
        caffeine_cache_gb=16,
        description="local-network requests; mostly one-hit contents",
    ),
    "wiki": TraceSpec(
        name="wiki",
        duration_hours=0.1,
        unique_contents=406_883,
        total_requests=1_000_000,
        mean_size_mb=69.5,
        max_size_mb=92_100.0,
        size_sigma=2.0,
        alpha=0.80,
        one_hit_fraction=0.50,
        size_popularity_corr=0.25,
        drift_segments=10,
        drift_alpha_amplitude=0.08,
        cache_sizes_gb=(512, 1024),
        prototype_cache_gb=1024,
        caffeine_cache_gb=128,
        description="Wikipedia west-coast node; photos and media",
    ),
}


def _popularity_with_one_hit_mass(
    num_contents: int,
    num_requests: int,
    alpha: float,
    one_hit_fraction: float,
) -> tuple[np.ndarray, int]:
    """Split the catalogue into a Zipf "head" and a one-hit "tail".

    Returns the Zipf weights over the head and the head size.  Tail
    contents are each requested exactly once, reproducing the
    one-hit-wonder share production traces exhibit.
    """
    num_one_hit = int(num_contents * one_hit_fraction)
    num_one_hit = min(num_one_hit, max(num_requests - 1, 0))
    head = num_contents - num_one_hit
    if head < 2:
        raise ValueError("catalogue too small for the requested one-hit share")
    return zipf_weights(head, alpha), head


def generate_production_trace(
    spec: TraceSpec | str,
    scale: float = 1.0,
    seed: int | None = 0,
) -> Trace:
    """Generate a synthetic stand-in trace for ``spec`` at ``scale``.

    The trace matches the spec's request count, catalogue size, size
    distribution and duration (all scaled), has a Zipf-distributed head
    with the spec's skew, a one-hit-wonder tail, and per-segment
    popularity drift: the Zipf skew oscillates around ``spec.alpha`` and
    the rank-to-content mapping rotates between segments.
    """
    if isinstance(spec, str):
        spec = PRODUCTION_SPECS[spec.lower()]
    if scale <= 0:
        raise ValueError("scale must be positive")
    seed = require_seed(seed)
    rng = np.random.default_rng(seed)

    num_requests = max(int(spec.total_requests * scale), 1000)
    num_contents = max(int(spec.unique_contents * scale), 200)
    num_contents = min(num_contents, num_requests)

    sizes = lognormal_sizes(
        num_contents,
        mean_bytes=spec.mean_size_mb * MB,
        sigma=spec.size_sigma,
        max_bytes=spec.max_size_mb * MB,
        min_bytes=10 * 1024,
        rng=rng,
    )

    head_weights, head = _popularity_with_one_hit_mass(
        num_contents, num_requests, spec.alpha, spec.one_hit_fraction
    )
    num_one_hit = num_contents - head
    head_requests = num_requests - num_one_hit


    # Head requests: Zipf draws with per-segment drift.  Each segment uses
    # a perturbed skew and a rotated rank permutation, so both the shape
    # and the identity of the popular set move over time.
    segments = max(spec.drift_segments, 1)
    per_segment = np.full(segments, head_requests // segments, dtype=np.int64)
    per_segment[: head_requests % segments] += 1
    permutation = rng.permutation(head)

    # Correlate popularity and size within the head.  Rank r (0 = most
    # popular under the base Zipf order) maps to content permutation[r];
    # reassign the drawn head sizes so the content at rank r gets a size
    # whose rank-correlation with popularity matches the spec (video
    # workloads have large popular titles; CDN-C has none).  The per-
    # segment rotation below shifts ranks only gradually, so the long-run
    # correlation survives the drift.
    rho = spec.size_popularity_corr
    if head > 1 and rho != 0.0:
        rank_scores = -np.arange(head, dtype=np.float64)
        rank_scores = (rank_scores - rank_scores.mean()) / max(rank_scores.std(), 1e-12)
        noise = rng.standard_normal(head)
        blend = rho * rank_scores + np.sqrt(max(1.0 - rho * rho, 0.0)) * noise
        head_sizes = np.sort(sizes[permutation])[::-1]
        sizes[permutation[np.argsort(-blend)]] = head_sizes

    head_ids_parts: list[np.ndarray] = []
    for seg_index, seg_count in enumerate(per_segment):
        if seg_count == 0:
            continue
        drift = spec.drift_alpha_amplitude * np.sin(
            2.0 * np.pi * seg_index / segments
        )
        seg_alpha = max(spec.alpha + drift, 0.05)
        weights = zipf_weights(head, seg_alpha)
        cdf = np.cumsum(weights)
        cdf[-1] = 1.0
        ranks = np.searchsorted(cdf, rng.random(seg_count), side="right")
        head_ids_parts.append(permutation[ranks])
        # Popularity churn between segments: a few contents trade rank
        # slots (risers and fallers), while the bulk of the catalogue
        # keeps its long-run popularity — unlike a rotation, this leaves
        # the popularity/size correlation intact.
        churn = max(head // (8 * segments), 1)
        slots_a = rng.integers(0, head, churn)
        slots_b = rng.integers(0, head, churn)
        permutation[slots_a], permutation[slots_b] = (
            permutation[slots_b].copy(),
            permutation[slots_a].copy(),
        )
    head_ids = np.concatenate(head_ids_parts) if head_ids_parts else np.empty(0, np.int64)

    # One-hit tail: each tail content appears exactly once, at a uniformly
    # random position in the stream.
    ids = np.empty(num_requests, dtype=np.int64)
    tail_positions = rng.choice(num_requests, size=num_one_hit, replace=False)
    tail_mask = np.zeros(num_requests, dtype=bool)
    tail_mask[tail_positions] = True
    ids[tail_mask] = head + rng.permutation(num_one_hit)
    ids[~tail_mask] = head_ids

    gaps = rng.exponential(1.0, size=num_requests)
    times = np.cumsum(gaps)
    times *= spec.duration_seconds / times[-1]

    requests = [
        Request(
            time=float(times[i]),
            obj_id=int(ids[i]),
            size=int(sizes[ids[i]]),
            index=i,
        )
        for i in range(num_requests)
    ]
    return Trace(
        requests,
        name=spec.name,
        metadata={
            "spec": spec.name,
            "scale": scale,
            "seed": seed,
            "head_contents": head,
            "one_hit_contents": num_one_hit,
        },
    )
