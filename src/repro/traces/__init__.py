"""Trace substrate: request records, synthetic workloads, production-trace
stand-ins, trace I/O and trace characterization.

The paper evaluates on four proprietary CDN traces (Table 1).  Those traces
are not public, so :mod:`repro.traces.production` generates synthetic
stand-ins calibrated to the published per-trace statistics; see DESIGN.md
for the substitution rationale.
"""

from repro.traces.loader import load_trace_csv, save_trace_csv
from repro.traces.packed import (
    PackedTrace,
    SharedTraceBuffers,
    SharedTraceDescriptor,
    attach_shared_trace,
)
from repro.traces.production import (
    PRODUCTION_SPECS,
    TraceSpec,
    generate_production_trace,
)
from repro.traces.request import Request, Trace
from repro.traces.stats import TraceSummary, summarize_trace
from repro.traces.synthetic import (
    MarkovModulatedGenerator,
    irm_trace,
    syn_one_trace,
    syn_two_trace,
)

__all__ = [
    "MarkovModulatedGenerator",
    "PRODUCTION_SPECS",
    "PackedTrace",
    "Request",
    "SharedTraceBuffers",
    "SharedTraceDescriptor",
    "attach_shared_trace",
    "Trace",
    "TraceSpec",
    "TraceSummary",
    "generate_production_trace",
    "irm_trace",
    "load_trace_csv",
    "save_trace_csv",
    "summarize_trace",
    "syn_one_trace",
    "syn_two_trace",
]
