"""Trace file I/O.

Two on-disk formats are supported:

* ``csv`` — ``time,obj_id,size`` with a header row (this package's native
  format).
* ``webcachesim`` — whitespace-separated ``time id size`` lines with no
  header, the de-facto interchange format used by the LRB/webcachesim
  simulators the paper builds on.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.traces.request import Request, Trace


def save_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` as a headered CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "obj_id", "size"])
        for req in trace:
            writer.writerow([f"{req.time:.6f}", req.obj_id, req.size])


def load_trace_csv(path: str | Path, name: str | None = None) -> Trace:
    """Read a headered CSV trace written by :func:`save_trace_csv`."""
    path = Path(path)
    requests: list[Request] = []
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path} is empty")
        expected = ["time", "obj_id", "size"]
        if [col.strip().lower() for col in header] != expected:
            raise ValueError(f"{path} header {header!r} != {expected!r}")
        for index, row in enumerate(reader):
            if len(row) != 3:
                raise ValueError(f"{path}:{index + 2}: expected 3 columns, got {len(row)}")
            requests.append(
                Request(
                    time=float(row[0]),
                    obj_id=int(row[1]),
                    size=int(row[2]),
                    index=index,
                )
            )
    return Trace(requests, name=name or path.stem)


def save_trace_webcachesim(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` in the webcachesim ``time id size`` format."""
    path = Path(path)
    with path.open("w") as handle:
        for req in trace:
            handle.write(f"{req.time:.6f} {req.obj_id} {req.size}\n")


def load_trace_webcachesim(path: str | Path, name: str | None = None) -> Trace:
    """Read a webcachesim-format trace (no header, whitespace separated)."""
    path = Path(path)
    requests: list[Request] = []
    with path.open() as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}:{index + 1}: expected 3 fields, got {len(parts)}")
            requests.append(
                Request(
                    time=float(parts[0]),
                    obj_id=int(parts[1]),
                    size=int(parts[2]),
                    index=len(requests),
                )
            )
    return Trace(requests, name=name or path.stem)
