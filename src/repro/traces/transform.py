"""Trace transformations.

Practitioner utilities for shaping request traces before simulation:
temporal scaling, head/tail splits for train/test protocols, content
filtering, deterministic subsampling, and interleaving multiple traces
onto one timeline (e.g. to model a server consolidating two customer
workloads).

All functions are pure: they return new :class:`Trace` objects and leave
inputs untouched.
"""

from __future__ import annotations

import numpy as np

from repro.traces.request import Request, Trace
from repro.util.sampling import require_seed


def time_scale(trace: Trace, factor: float, name: str | None = None) -> Trace:
    """Multiply all timestamps by ``factor`` (speed up or slow down).

    ``factor < 1`` compresses the trace (higher request rate), ``> 1``
    stretches it.  Content ids and sizes are unchanged.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    requests = [
        Request(req.time * factor, req.obj_id, req.size, i)
        for i, req in enumerate(trace)
    ]
    return Trace(
        requests,
        name=name or f"{trace.name}-x{factor:g}",
        metadata={**trace.metadata, "time_scale": factor},
    )


def split(trace: Trace, fraction: float) -> tuple[Trace, Trace]:
    """Split a trace at ``fraction`` of its requests (train/test protocol)."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must lie in (0, 1)")
    cut = int(len(trace) * fraction)
    head = Trace(list(trace.requests[:cut]), name=f"{trace.name}-head")
    tail = Trace(list(trace.requests[cut:]), name=f"{trace.name}-tail")
    return head, tail


def filter_by_size(
    trace: Trace,
    min_bytes: int = 0,
    max_bytes: int | None = None,
    name: str | None = None,
) -> Trace:
    """Keep only requests whose content size lies in ``[min_bytes, max_bytes]``."""
    if max_bytes is not None and max_bytes < min_bytes:
        raise ValueError("max_bytes must be >= min_bytes")
    kept = [
        req
        for req in trace
        if req.size >= min_bytes and (max_bytes is None or req.size <= max_bytes)
    ]
    return Trace(
        [Request(r.time, r.obj_id, r.size, i) for i, r in enumerate(kept)],
        name=name or f"{trace.name}-filtered",
    )


def subsample(trace: Trace, fraction: float, seed: int | None = 0) -> Trace:
    """Content-consistent subsampling: keep a random ``fraction`` of
    *contents* and every request to them.

    Sampling whole contents (rather than individual requests) preserves
    per-content inter-request patterns, which request-level sampling
    destroys — the standard methodology for shrinking CDN traces.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    seed = require_seed(seed)
    rng = np.random.default_rng(seed)
    contents = sorted(trace.unique_contents())
    keep = {
        contents[i]
        for i in rng.choice(
            len(contents), size=max(int(len(contents) * fraction), 1), replace=False
        )
    }
    kept = [req for req in trace if req.obj_id in keep]
    return Trace(
        [Request(r.time, r.obj_id, r.size, i) for i, r in enumerate(kept)],
        name=f"{trace.name}-sub{fraction:g}",
        metadata={**trace.metadata, "subsample": fraction, "subsample_seed": seed},
    )


def interleave(first: Trace, second: Trace, name: str | None = None) -> Trace:
    """Merge two traces onto one timeline, keeping timestamps.

    Content ids of ``second`` are offset above ``first``'s id space so the
    two workloads never alias.  Requests are merged in time order.
    """
    offset = max((req.obj_id for req in first), default=-1) + 1
    merged = [(req.time, req.obj_id, req.size) for req in first]
    merged.extend((req.time, req.obj_id + offset, req.size) for req in second)
    merged.sort(key=lambda row: row[0])
    requests = [
        Request(time, obj_id, size, i)
        for i, (time, obj_id, size) in enumerate(merged)
    ]
    return Trace(
        requests,
        name=name or f"{first.name}+{second.name}",
        metadata={"sources": [first.name, second.name], "id_offset": offset},
    )


def diurnal(
    trace: Trace,
    period_seconds: float = 86_400.0,
    amplitude: float = 0.5,
    name: str | None = None,
) -> Trace:
    """Re-time requests under a sinusoidal (diurnal) arrival intensity.

    CDN request rates swing with the day-night cycle; trace generators
    that emit homogeneous arrivals miss the resulting load peaks.  This
    warps timestamps so the instantaneous rate follows
    ``1 + amplitude * sin(2*pi*t/period)`` while preserving the request
    *order*, the id sequence, and the total duration — only the spacing
    changes (dense at peaks, sparse in troughs).
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must lie in [0, 1)")
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    if len(trace) < 2 or amplitude == 0.0:
        return Trace(list(trace.requests), name=name or trace.name,
                     metadata=dict(trace.metadata))
    start = trace.requests[0].time
    duration = trace.duration
    if duration <= 0:
        return Trace(list(trace.requests), name=name or trace.name,
                     metadata=dict(trace.metadata))
    # Cumulative intensity of the target rate, normalized to [0, 1]:
    # Lambda(t) = t + A*P/(2*pi) * (1 - cos(2*pi*t/P)).
    grid = np.linspace(0.0, duration, 4096)
    omega = 2.0 * np.pi / period_seconds
    cumulative = grid + amplitude / omega * (1.0 - np.cos(omega * grid))
    cumulative /= cumulative[-1]
    old = np.array([req.time - start for req in trace]) / duration
    # A request at normalized cumulative mass u arrives at Lambda^{-1}(u).
    new_times = start + np.interp(old, cumulative, grid)
    requests = [
        Request(float(new_times[i]), req.obj_id, req.size, i)
        for i, req in enumerate(trace)
    ]
    return Trace(
        requests,
        name=name or f"{trace.name}-diurnal",
        metadata={**trace.metadata, "diurnal_period": period_seconds,
                  "diurnal_amplitude": amplitude},
    )


def truncate_requests(trace: Trace, num_requests: int) -> Trace:
    """First ``num_requests`` requests of a trace."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    return Trace(
        list(trace.requests[:num_requests]), name=trace.name, metadata=dict(trace.metadata)
    )
