"""Trace characterization: the columns of Table 1 and the distributions in
Figure 1 (content popularity and inter-arrival times).

``active bytes`` follows the paper's definition (footnote 2): a content is
active at time ``t`` if ``t`` lies between its first and last request; the
active bytes at ``t`` is the total size of active contents.  Table 1
reports one number per trace, which we take to be the peak over the trace
(the quantity cache sizes were provisioned against).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.traces.request import Trace

GB = 1 << 30
MB = 1 << 20
TB = 1 << 40


@dataclass(frozen=True)
class TraceSummary:
    """One row of Table 1, computed from an actual trace."""

    name: str
    duration_hours: float
    unique_contents: int
    total_requests: int
    total_bytes_tb: float
    unique_bytes_gb: float
    peak_active_bytes_gb: float
    mean_active_bytes_gb: float
    mean_size_mb: float
    max_size_mb: float
    one_hit_fraction: float

    def as_table_row(self) -> dict[str, float | int | str]:
        """Rounded values laid out like a Table 1 column."""
        return {
            "Dataset": self.name,
            "Duration (Hours)": round(self.duration_hours, 2),
            "Unique contents": self.unique_contents,
            "Total requests (Millions)": round(self.total_requests / 1e6, 3),
            "Total bytes requested (TB)": round(self.total_bytes_tb, 2),
            "Unique bytes requested (GB)": round(self.unique_bytes_gb, 1),
            "Active bytes (GB)": round(self.peak_active_bytes_gb, 1),
            "Mean content size (MB)": round(self.mean_size_mb, 1),
            "Max content size (MB)": round(self.max_size_mb, 1),
        }


def active_bytes_profile(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(times, active_bytes)`` step function over the trace.

    The profile steps up at each content's first request and down after
    its last request.
    """
    first_seen: dict[int, float] = {}
    last_seen: dict[int, float] = {}
    sizes: dict[int, int] = {}
    for req in trace:
        first_seen.setdefault(req.obj_id, req.time)
        last_seen[req.obj_id] = req.time
        sizes[req.obj_id] = req.size
    events: list[tuple[float, int]] = []
    for obj_id, start in first_seen.items():
        events.append((start, sizes[obj_id]))
        events.append((last_seen[obj_id], -sizes[obj_id]))
    # Sort decrements after increments at equal time: a content requested
    # once is momentarily active.
    events.sort(key=lambda ev: (ev[0], -ev[1]))
    times = np.empty(len(events))
    levels = np.empty(len(events))
    level = 0
    for i, (time, delta) in enumerate(events):
        level += delta
        times[i] = time
        levels[i] = level
    return times, levels


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute the Table 1 row for ``trace``."""
    if not len(trace):
        raise ValueError("cannot summarize an empty trace")
    counts = Counter(req.obj_id for req in trace)
    sizes = trace.unique_contents()
    size_values = np.fromiter(sizes.values(), dtype=np.float64)
    times, levels = active_bytes_profile(trace)
    if len(times) > 1 and times[-1] > times[0]:
        widths = np.diff(times)
        mean_active = float(np.dot(levels[:-1], widths) / widths.sum())
    else:
        mean_active = float(levels.max(initial=0.0))
    one_hit = sum(1 for c in counts.values() if c == 1)
    return TraceSummary(
        name=trace.name,
        duration_hours=trace.duration / 3600.0,
        unique_contents=len(sizes),
        total_requests=len(trace),
        total_bytes_tb=trace.total_bytes() / TB,
        unique_bytes_gb=trace.unique_bytes() / GB,
        peak_active_bytes_gb=float(levels.max(initial=0.0)) / GB,
        mean_active_bytes_gb=mean_active / GB,
        mean_size_mb=float(size_values.mean()) / MB,
        max_size_mb=float(size_values.max()) / MB,
        one_hit_fraction=one_hit / len(sizes),
    )


def popularity_distribution(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1 (left): request count per content vs popularity rank.

    Returns ``(ranks, counts)`` with counts sorted descending.
    """
    counts = Counter(req.obj_id for req in trace)
    values = np.sort(np.fromiter(counts.values(), dtype=np.float64))[::-1]
    ranks = np.arange(1, values.size + 1, dtype=np.float64)
    return ranks, values


def interarrival_distribution(
    trace: Trace, num_points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1 (right): CCDF of per-content inter-request times.

    Returns ``(t, P(IRT > t))`` sampled at ``num_points`` log-spaced
    abscissae.
    """
    last_time: dict[int, float] = {}
    gaps: list[float] = []
    for req in trace:
        previous = last_time.get(req.obj_id)
        if previous is not None:
            gaps.append(req.time - previous)
        last_time[req.obj_id] = req.time
    if not gaps:
        raise ValueError("trace has no repeated contents; no inter-arrival times")
    samples = np.sort(np.asarray(gaps, dtype=np.float64))
    positive = samples[samples > 0]
    low = positive.min() if positive.size else 1e-6
    grid = np.logspace(np.log10(low), np.log10(samples.max() + 1e-12), num_points)
    ccdf = 1.0 - np.searchsorted(samples, grid, side="right") / samples.size
    return grid, ccdf
