"""Synthetic workload generators.

Three families are provided:

* ``irm_trace`` — the Independent Reference Model: ids drawn i.i.d. from a
  Zipf distribution with Poisson arrivals.  This is the stationary
  baseline used throughout the paper's analysis (Section 3, Appendix A.2).
* ``syn_one_trace`` / ``syn_two_trace`` — the Markov-modulated request
  processes from the responsiveness experiments (Section 7.6).
* ``MarkovModulatedGenerator`` — the general mechanism underlying both:
  a Markov chain over per-state Zipf distributions, emitting a fixed
  number ``r`` of requests per state before transitioning.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.traces.request import Request, Trace
from repro.util.sampling import ZipfSampler, lognormal_sizes, require_seed


def _draw_sizes(
    num_contents: int,
    rng: np.random.Generator,
    mean_bytes: float,
    sigma: float,
    max_bytes: float,
    equal_size: int | None,
) -> np.ndarray:
    if equal_size is not None:
        if equal_size <= 0:
            raise ValueError("equal_size must be positive")
        return np.full(num_contents, equal_size, dtype=np.int64)
    return lognormal_sizes(num_contents, mean_bytes, sigma, max_bytes, rng=rng)


def irm_trace(
    num_requests: int,
    num_contents: int,
    alpha: float = 0.9,
    request_rate: float = 100.0,
    mean_size: float = 1 << 20,
    size_sigma: float = 1.5,
    max_size: float = 1 << 30,
    equal_size: int | None = None,
    seed: int | None = 0,
    name: str = "irm",
) -> Trace:
    """Independent Reference Model trace: Zipf popularity, Poisson arrivals.

    Parameters
    ----------
    num_requests, num_contents:
        Stream length and catalogue size.
    alpha:
        Zipf skew.
    request_rate:
        Aggregate arrival rate in requests/second (exponential gaps).
    equal_size:
        If given, all contents share this size (the classic paging model
        in which Bélády is exactly optimal); otherwise sizes are
        heavy-tailed lognormal.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    seed = require_seed(seed)
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(num_contents, alpha, rng=rng)
    sizes = _draw_sizes(num_contents, rng, mean_size, size_sigma, max_size, equal_size)
    ids = sampler.sample(num_requests)
    gaps = rng.exponential(1.0 / request_rate, size=num_requests)
    times = np.cumsum(gaps)
    requests = [
        Request(time=float(times[i]), obj_id=int(ids[i]), size=int(sizes[ids[i]]), index=i)
        for i in range(num_requests)
    ]
    return Trace(
        requests,
        name=name,
        metadata={"alpha": alpha, "num_contents": num_contents, "seed": seed},
    )


class MarkovModulatedGenerator:
    """Markov-modulated Zipf request process (Section 7.6).

    Each Markov state carries its own Zipf distribution over the shared
    catalogue.  While the chain sits in a state, ``requests_per_state``
    requests are drawn from that state's distribution, then the chain
    transitions according to ``transitions`` (a row-stochastic matrix) or,
    if ``cycle`` is given, deterministically through that state cycle.
    """

    def __init__(
        self,
        samplers: Sequence[ZipfSampler],
        requests_per_state: int,
        transitions: np.ndarray | None = None,
        cycle: Sequence[int] | None = None,
        rng: np.random.Generator | None = None,
        seed: int | None = 0,
    ):
        if not samplers:
            raise ValueError("need at least one per-state sampler")
        if requests_per_state <= 0:
            raise ValueError("requests_per_state must be positive")
        if (transitions is None) == (cycle is None):
            raise ValueError("provide exactly one of transitions or cycle")
        self._samplers = list(samplers)
        self._requests_per_state = requests_per_state
        self._rng = rng if rng is not None else np.random.default_rng(require_seed(seed))
        self._cycle = list(cycle) if cycle is not None else None
        if transitions is not None:
            matrix = np.asarray(transitions, dtype=np.float64)
            if matrix.shape != (len(samplers), len(samplers)):
                raise ValueError("transition matrix shape mismatch")
            if not np.allclose(matrix.sum(axis=1), 1.0):
                raise ValueError("transition matrix rows must sum to 1")
            self._transitions = matrix
        else:
            self._transitions = None
            for state in self._cycle:
                if not 0 <= state < len(samplers):
                    raise ValueError(f"cycle state {state} out of range")

    def state_sequence(self, num_requests: int) -> list[int]:
        """The per-request Markov state, for labeling ground-truth drift."""
        states: list[int] = []
        position = 0
        state = self._cycle[0] if self._cycle is not None else 0
        while len(states) < num_requests:
            states.extend([state] * min(self._requests_per_state, num_requests - len(states)))
            position += 1
            if self._cycle is not None:
                state = self._cycle[position % len(self._cycle)]
            else:
                state = int(
                    self._rng.choice(len(self._samplers), p=self._transitions[state])
                )
        return states

    def generate(
        self,
        num_requests: int,
        sizes: np.ndarray,
        request_rate: float = 100.0,
        name: str = "mmpp",
    ) -> Trace:
        """Materialize a trace of ``num_requests`` requests."""
        states = self.state_sequence(num_requests)
        gaps = self._rng.exponential(1.0 / request_rate, size=num_requests)
        times = np.cumsum(gaps)
        requests: list[Request] = []
        start = 0
        while start < num_requests:
            state = states[start]
            end = start
            while end < num_requests and states[end] == state:
                end += 1
            ids = self._samplers[state].sample(end - start)
            for offset, content in enumerate(ids):
                i = start + offset
                requests.append(
                    Request(
                        time=float(times[i]),
                        obj_id=int(content),
                        size=int(sizes[content]),
                        index=i,
                    )
                )
            start = end
        trace = Trace(requests, name=name, metadata={"states": states})
        return trace


def syn_one_trace(
    num_requests: int = 1_000_000,
    num_contents: int = 1_000,
    requests_per_state: int = 200_000,
    alpha: float = 0.9,
    mean_size: float = 16 << 20,
    seed: int | None = 0,
) -> Trace:
    """"Syn One" (Section 7.6): two-state chain alternating between a Zipf
    distribution in increasing rank order and the same distribution with
    the ranking reversed, switching every ``requests_per_state`` requests.
    """
    rng = np.random.default_rng(require_seed(seed))
    samplers = [
        ZipfSampler(num_contents, alpha, reverse=False, rng=rng),
        ZipfSampler(num_contents, alpha, reverse=True, rng=rng),
    ]
    sizes = lognormal_sizes(num_contents, mean_size, 1.2, 64 * mean_size, rng=rng)
    generator = MarkovModulatedGenerator(
        samplers,
        requests_per_state,
        transitions=np.array([[0.0, 1.0], [1.0, 0.0]]),
        rng=rng,
    )
    return generator.generate(num_requests, sizes, name="syn-one")


def syn_two_trace(
    num_requests: int = 1_000_000,
    num_contents: int = 1_000,
    requests_per_state: int = 200_000,
    alphas: Sequence[float] = (0.7, 0.9, 1.1),
    mean_size: float = 16 << 20,
    seed: int | None = 0,
) -> Trace:
    """"Syn Two" (Section 7.6): three Zipf states with alpha in
    ``alphas``, visited deterministically 0 -> 1 -> 2 -> 1 -> 0 -> ...
    """
    rng = np.random.default_rng(require_seed(seed))
    samplers = [ZipfSampler(num_contents, a, rng=rng) for a in alphas]
    sizes = lognormal_sizes(num_contents, mean_size, 1.2, 64 * mean_size, rng=rng)
    generator = MarkovModulatedGenerator(
        samplers,
        requests_per_state,
        cycle=[0, 1, 2, 1],
        rng=rng,
    )
    return generator.generate(num_requests, sizes, name="syn-two")
