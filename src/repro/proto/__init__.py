"""Prototype substrate: emulated Apache Traffic Server and Caffeine
deployments with origin, flash and resource-accounting models.
"""

from repro.proto.cluster import CdnCluster, ConsistentHashRing
from repro.proto.ats import (
    AtsServer,
    CostModel,
    PrototypeReport,
    ServedRequest,
    make_ats_baseline,
    run_prototype,
)
from repro.proto.caffeine import (
    CaffeineServer,
    make_caffeine_baseline,
    make_caffeine_lhr,
    run_caffeine,
)
from repro.proto.flash import FlashStats, FlashStore
from repro.proto.origin import OriginServer, OriginStats

__all__ = [
    "AtsServer",
    "CaffeineServer",
    "CdnCluster",
    "ConsistentHashRing",
    "CostModel",
    "FlashStats",
    "FlashStore",
    "OriginServer",
    "OriginStats",
    "PrototypeReport",
    "ServedRequest",
    "make_ats_baseline",
    "make_caffeine_baseline",
    "make_caffeine_lhr",
    "run_caffeine",
    "run_prototype",
]
