"""Caffeine prototype emulation (Appendix A.3).

Caffeine is an in-memory Java cache whose baseline policy is W-TinyLFU;
the paper swaps in LHR and compares.  The emulation is simpler than the
ATS path — no flash device and no freshness pipeline, just an in-memory
cache in front of the origin with the same network/cost accounting.
"""

from __future__ import annotations

from repro.core.lhr import LhrCache
from repro.policies.base import CachePolicy
from repro.policies.tinylfu import WTinyLfuCache
from repro.proto.ats import CostModel, PrototypeReport
from repro.proto.origin import OriginServer
from repro.sim.network import NetworkModel
from repro.traces.request import Trace
from repro.util.stats import PercentileTracker, RunningStats


class CaffeineServer:
    """In-memory cache node (Caffeine-style) with pluggable policy."""

    def __init__(
        self,
        policy: CachePolicy,
        origin: OriginServer | None = None,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        uses_learning: bool | None = None,
        base_process_bytes: int = 3 << 30,
    ):
        self.policy = policy
        self.origin = origin or OriginServer()
        self.network = network or NetworkModel()
        self.costs = cost_model or CostModel()
        if uses_learning is None:
            uses_learning = hasattr(policy, "hro")
        self.uses_learning = uses_learning
        self.base_process_bytes = base_process_bytes

    def memory_bytes(self) -> int:
        return (
            self.base_process_bytes
            + self.policy.used_bytes // (1 << 10)  # in-memory index share
            + self.policy.metadata_bytes()
        )


def run_caffeine(
    server: CaffeineServer,
    trace: Trace,
    system_name: str,
    window_requests: int = 2000,
) -> PrototypeReport:
    """Replay ``trace`` through a Caffeine-style node (Table 4 metrics)."""
    latencies = RunningStats()
    percentiles = PercentileTracker(capacity=16_384)
    hits = 0
    wan_bytes = 0
    total_bytes = 0
    cpu_seconds = 0.0
    busy_seconds = 0.0
    peak_mem = 0
    window_hits: list[float] = []
    window_count = 0
    window_hit_count = 0
    costs = server.costs
    for i, req in enumerate(trace):
        hit = server.policy.request(req)
        if hit:
            latency = server.network.hit_latency(req.size)
        else:
            server.origin.fetch(req.obj_id, req.size)
            wan_bytes += req.size
            latency = server.network.miss_latency(req.size)
        cpu = costs.lookup_seconds + costs.serve_seconds_per_mb * req.size / (1 << 20)
        if server.uses_learning:
            cpu += costs.learning_seconds_per_request
        # Caffeine's baseline is itself CPU-heavier than plain LRU (sketch
        # maintenance), so both systems pay the admission-filter cost.
        cpu += costs.admit_seconds
        cpu_seconds += cpu
        hits += hit
        total_bytes += req.size
        latencies.add(latency)
        percentiles.add(latency)
        busy_seconds += req.size / (server.network.link_rate_bps / 8.0)
        if not hit:
            busy_seconds += req.size / (server.network.wan_rate_bps / 8.0)
        window_count += 1
        window_hit_count += hit
        if window_count >= window_requests:
            window_hits.append(window_hit_count / window_count)
            window_count = 0
            window_hit_count = 0
        if i % 1000 == 0:
            peak_mem = max(peak_mem, server.memory_bytes())
    if window_count:
        window_hits.append(window_hit_count / window_count)
    peak_mem = max(peak_mem, server.memory_bytes())
    duration = max(trace.duration, 1e-9)
    return PrototypeReport(
        system=system_name,
        trace=trace.name,
        content_hit_percent=100.0 * hits / max(len(trace), 1),
        throughput_gbps=(total_bytes * 8.0 / busy_seconds if busy_seconds else 0.0)
        / 1e9,
        peak_cpu_percent=100.0 * cpu_seconds / busy_seconds if busy_seconds else 0.0,
        peak_mem_gb=peak_mem / (1 << 30),
        p90_latency_ms=percentiles.percentile(90) * 1e3,
        p99_latency_ms=percentiles.percentile(99) * 1e3,
        mean_latency_ms=latencies.mean * 1e3,
        traffic_gbps=wan_bytes * 8.0 / duration / 1e9,
        window_hit_ratios=window_hits,
    )


def make_caffeine_baseline(capacity: int, **kwargs) -> CaffeineServer:
    """Unmodified Caffeine: W-TinyLFU policy."""
    return CaffeineServer(WTinyLfuCache(capacity), uses_learning=False, **kwargs)


def make_caffeine_lhr(capacity: int, lhr_kwargs: dict | None = None, **kwargs) -> CaffeineServer:
    """Caffeine with the LHR policy swapped in."""
    return CaffeineServer(LhrCache(capacity, **(lhr_kwargs or {})), **kwargs)
