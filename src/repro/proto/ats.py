"""Apache Traffic Server (ATS) prototype emulation (Section 6.1).

The paper implements LHR inside ATS by replacing the cache's lookup data
structures; the unmodified ATS baseline keeps its default LRU cache.  We
emulate the documented request path:

* **Step 1** — index lookup by URL.
* **Step 2** — on a cache hit, check freshness; fresh contents are served
  directly (2a), stale contents are revalidated with the origin and
  either served or re-fetched (2b).
* **Step 3** — on a miss, fetch from the origin, serve the user, and run
  the admission/eviction policy.

A RAM cache fronts the flash cache; per the paper "the memory cache is
typically small which has little impact on hit probability", so it is a
plain LRU and identical for both systems.  Device time comes from the
emulated flash layer, WAN traffic from the origin model, and CPU from an
explicit cost model (see :class:`CostModel` — a documented substitution
for hardware counters; DESIGN.md section 2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.policies.base import CachePolicy
from repro.policies.classic import LruCache
from repro.proto.flash import FlashStore
from repro.proto.origin import OriginServer
from repro.sim.network import NetworkModel
from repro.traces.request import Request, Trace
from repro.util.stats import PercentileTracker, RunningStats


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU cost model (emulating prototype measurements).

    The constants approximate a C++ CDN server on a mid-range core:
    index operations are O(1) hash probes, serving costs scale with bytes
    copied, and the learning stack (feature extraction + GBM inference +
    amortized training) is charged only to policies that use it.  They
    were chosen so the emulated utilizations land in the regime Table 2
    reports (ATS a few percent, LHR ~20-25% at full throughput).
    """

    lookup_seconds: float = 2e-6
    admit_seconds: float = 5e-6
    serve_seconds_per_mb: float = 45e-6
    learning_seconds_per_request: float = 120e-6
    learning_serve_multiplier: float = 4.5


class _RamCache:
    """Small front LRU over bytes; identical for ATS and the prototype."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._items: OrderedDict[int, int] = OrderedDict()
        self._used = 0

    def get(self, obj_id: int) -> bool:
        if obj_id in self._items:
            self._items.move_to_end(obj_id)
            return True
        return False

    def put(self, obj_id: int, size: int) -> None:
        if size > self.capacity:
            return
        if obj_id in self._items:
            self._items.move_to_end(obj_id)
            return
        while self._used + size > self.capacity and self._items:
            _, evicted = self._items.popitem(last=False)
            self._used -= evicted
        self._items[obj_id] = size
        self._used += size

    def drop(self, obj_id: int) -> None:
        size = self._items.pop(obj_id, None)
        if size is not None:
            self._used -= size

    @property
    def used_bytes(self) -> int:
        return self._used


@dataclass
class ServedRequest:
    """Outcome of one request through the server."""

    hit: bool
    latency_seconds: float
    wan_bytes: int
    cpu_seconds: float
    device_seconds: float


class AtsServer:
    """Emulated ATS node: RAM cache + policy-driven flash cache.

    Pass an ``LruCache`` policy for the unmodified ATS baseline or an
    ``LhrCache`` for the prototype; ``uses_learning`` controls whether the
    cost model charges the learning overhead.
    """

    def __init__(
        self,
        policy: CachePolicy,
        ram_bytes: int = 256 << 20,
        freshness_lifetime: float = 3600.0 * 24,
        origin: OriginServer | None = None,
        flash: FlashStore | None = None,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        uses_learning: bool | None = None,
    ):
        self.policy = policy
        self.ram = _RamCache(ram_bytes)
        self.freshness_lifetime = freshness_lifetime
        self.origin = origin or OriginServer()
        self.flash = flash or FlashStore(capacity=2 * policy.capacity)
        self.network = network or NetworkModel()
        self.costs = cost_model or CostModel()
        if uses_learning is None:
            uses_learning = hasattr(policy, "hro")
        self.uses_learning = uses_learning
        self._admitted_at: dict[int, float] = {}
        self._versions: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _cpu_cost(self, req: Request, hit: bool) -> float:
        cpu = self.costs.lookup_seconds
        cpu += self.costs.serve_seconds_per_mb * req.size / (1 << 20)
        if not hit:
            cpu += self.costs.admit_seconds
        if self.uses_learning:
            cpu += self.costs.learning_seconds_per_request
            cpu += (
                self.costs.serve_seconds_per_mb
                * (self.costs.learning_serve_multiplier - 1.0)
                * req.size
                / (1 << 20)
            )
        return cpu

    def serve(self, req: Request) -> ServedRequest:
        """Run one request through Steps 1-3; returns the accounting."""
        device = 0.0
        wan_bytes = 0
        # Step 1: index lookup.  The policy call both resolves the lookup
        # and applies admission/eviction on a miss (Step 3's cache side).
        in_ram = self.ram.get(req.obj_id)
        hit = self.policy.request(req)
        if hit:
            stale = req.time - self._admitted_at.get(req.obj_id, req.time) > (
                self.freshness_lifetime
            )
            if stale:
                # Step 2b: revalidate with the origin.
                current = self.origin.revalidate(
                    req.obj_id, self._versions.get(req.obj_id, 0), req.size
                )
                latency = self.network.origin_rtt_s
                if not current:
                    wan_bytes += req.size
                    self._versions[req.obj_id] = self.origin.version(req.obj_id)
                    latency += req.size / (self.network.wan_rate_bps / 8.0)
                    if req.obj_id in self.flash:
                        self.flash.discard(req.obj_id)
                    device += self.flash.write(req.obj_id, req.size)
                self._admitted_at[req.obj_id] = req.time
                latency += self.network.hit_latency(req.size)
            else:
                # Step 2a: serve directly (RAM hits skip the device).
                latency = self.network.hit_latency(req.size)
                if not in_ram:
                    if req.obj_id not in self.flash:
                        device += self.flash.write(req.obj_id, req.size)
                    device += self.flash.read(req.obj_id, req.size)
            self.ram.put(req.obj_id, req.size)
        else:
            # Step 3: fetch from origin, serve, and admit if the policy
            # accepted the object (policy.request already decided that).
            self.origin.fetch(req.obj_id, req.size)
            wan_bytes += req.size
            latency = self.network.miss_latency(req.size)
            if self.policy.contains(req.obj_id):
                device += self.flash.write(req.obj_id, req.size)
                self._admitted_at[req.obj_id] = req.time
                self._versions[req.obj_id] = self.origin.version(req.obj_id)
                self.ram.put(req.obj_id, req.size)
        latency += device
        cpu = self._cpu_cost(req, hit)
        return ServedRequest(
            hit=hit,
            latency_seconds=latency,
            wan_bytes=wan_bytes,
            cpu_seconds=cpu,
            device_seconds=device,
        )

    def memory_bytes(self, base_process_bytes: int = 1 << 31) -> int:
        """Resident memory proxy: process base + RAM cache + metadata."""
        total = base_process_bytes + self.ram.used_bytes
        total += self.policy.metadata_bytes()
        total += 24 * len(self._admitted_at)
        return total


@dataclass
class PrototypeReport:
    """The Table 2 / Table 4 row set for one system on one trace."""

    system: str
    trace: str
    content_hit_percent: float = 0.0
    throughput_gbps: float = 0.0
    peak_cpu_percent: float = 0.0
    peak_mem_gb: float = 0.0
    p90_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    mean_latency_ms: float = 0.0
    traffic_gbps: float = 0.0
    window_hit_ratios: list[float] = field(default_factory=list)

    def as_row(self) -> dict:
        return {
            "system": self.system,
            "trace": self.trace,
            "throughput_gbps": round(self.throughput_gbps, 2),
            "peak_cpu_percent": round(self.peak_cpu_percent, 1),
            "peak_mem_gb": round(self.peak_mem_gb, 2),
            "p90_latency_ms": round(self.p90_latency_ms, 1),
            "p99_latency_ms": round(self.p99_latency_ms, 1),
            "mean_latency_ms": round(self.mean_latency_ms, 1),
            "traffic_gbps": round(self.traffic_gbps, 3),
            "content_hit_percent": round(self.content_hit_percent, 2),
        }


def run_prototype(
    server: AtsServer,
    trace: Trace,
    system_name: str,
    window_requests: int = 2000,
) -> PrototypeReport:
    """Replay ``trace`` through ``server`` and compute the report.

    The "normal" (production-speed) metrics — latency percentiles, hit
    probability, average traffic — use the trace's own timestamps; the
    "max" (throughput-bound) metrics — throughput and peak CPU — divide
    work by the modeled busy time of a saturated server.
    """
    latencies = RunningStats()
    percentiles = PercentileTracker(capacity=16_384)
    hits = 0
    wan_bytes = 0
    total_bytes = 0
    cpu_seconds = 0.0
    busy_seconds = 0.0
    peak_mem = 0
    window_hits: list[float] = []
    window_count = 0
    window_hit_count = 0
    for i, req in enumerate(trace):
        outcome = server.serve(req)
        hits += outcome.hit
        wan_bytes += outcome.wan_bytes
        total_bytes += req.size
        cpu_seconds += outcome.cpu_seconds
        latencies.add(outcome.latency_seconds)
        percentiles.add(outcome.latency_seconds)
        # Saturated busy time: edge transfer + WAN transfer + device time.
        busy_seconds += req.size / (server.network.link_rate_bps / 8.0)
        busy_seconds += outcome.wan_bytes / (server.network.wan_rate_bps / 8.0)
        busy_seconds += outcome.device_seconds
        window_count += 1
        window_hit_count += outcome.hit
        if window_count >= window_requests:
            window_hits.append(window_hit_count / window_count)
            window_count = 0
            window_hit_count = 0
        if i % 1000 == 0:
            peak_mem = max(peak_mem, server.memory_bytes())
    if window_count:
        window_hits.append(window_hit_count / window_count)
    peak_mem = max(peak_mem, server.memory_bytes())
    duration = max(trace.duration, 1e-9)
    throughput = total_bytes * 8.0 / busy_seconds if busy_seconds else 0.0
    peak_cpu = 100.0 * cpu_seconds / busy_seconds if busy_seconds else 0.0
    return PrototypeReport(
        system=system_name,
        trace=trace.name,
        content_hit_percent=100.0 * hits / max(len(trace), 1),
        throughput_gbps=throughput / 1e9,
        peak_cpu_percent=peak_cpu,
        peak_mem_gb=peak_mem / (1 << 30),
        p90_latency_ms=percentiles.percentile(90) * 1e3,
        p99_latency_ms=percentiles.percentile(99) * 1e3,
        mean_latency_ms=latencies.mean * 1e3,
        traffic_gbps=wan_bytes * 8.0 / duration / 1e9,
        window_hit_ratios=window_hits,
    )


def make_ats_baseline(capacity: int, **kwargs) -> AtsServer:
    """The unmodified ATS: LRU cache, admit-all."""
    return AtsServer(LruCache(capacity), uses_learning=False, **kwargs)
