"""Emulated flash abstraction layer.

The paper's prototype lacks access to a production flash layer like RIPQ
and instead emulates one, "reading offsets randomly and writing
sequentially to the disk" (Section 6.1).  This module models that
device: a log-structured store with a sequential write head, random
reads, and a simple service-time model, so the prototype experiments can
account device time and write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FlashStats:
    reads: int = 0
    read_bytes: int = 0
    writes: int = 0
    write_bytes: int = 0
    erased_segments: int = 0

    @property
    def write_amplification(self) -> float:
        """Device writes per logical byte written (1.0 = none)."""
        logical = self.write_bytes
        return 1.0 if logical == 0 else (logical + 0.0) / logical


class FlashStore:
    """Log-structured flash device with sequential writes.

    Service times follow a simple affine model: a fixed per-IO latency
    plus bytes divided by the device bandwidth.  Random reads pay the
    fixed cost per object; sequential writes amortize it per segment.

    Parameters
    ----------
    capacity:
        Device capacity in bytes (should be >= the cache capacity).
    read_bandwidth / write_bandwidth:
        Bytes per second.
    read_latency / write_latency:
        Fixed seconds per IO operation.
    segment_bytes:
        Write-head segment size; a segment's fixed write cost is paid
        once per segment, emulating sequential batching.
    """

    def __init__(
        self,
        capacity: int,
        read_bandwidth: float = 2.0e9,
        write_bandwidth: float = 1.0e9,
        read_latency: float = 100e-6,
        write_latency: float = 50e-6,
        segment_bytes: int = 64 << 20,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._read_bandwidth = read_bandwidth
        self._write_bandwidth = write_bandwidth
        self._read_latency = read_latency
        self._write_latency = write_latency
        self._segment_bytes = segment_bytes
        self._write_head = 0
        self._segment_fill = 0
        self._offsets: dict[int, int] = {}
        self.stats = FlashStats()

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._offsets

    def read(self, obj_id: int, size: int) -> float:
        """Random read; returns simulated service time in seconds."""
        if obj_id not in self._offsets:
            raise KeyError(f"object {obj_id} is not on flash")
        self.stats.reads += 1
        self.stats.read_bytes += size
        return self._read_latency + size / self._read_bandwidth

    def write(self, obj_id: int, size: int) -> float:
        """Sequential append at the write head; returns service time."""
        self._offsets[obj_id] = self._write_head
        self._write_head = (self._write_head + size) % self.capacity
        self.stats.writes += 1
        self.stats.write_bytes += size
        fixed = 0.0
        self._segment_fill += size
        while self._segment_fill >= self._segment_bytes:
            self._segment_fill -= self._segment_bytes
            self.stats.erased_segments += 1
            fixed += self._write_latency
        return fixed + size / self._write_bandwidth

    def discard(self, obj_id: int) -> None:
        """Logical delete (the space is reclaimed by log rotation)."""
        self._offsets.pop(obj_id, None)
