"""Origin server model.

The ATS request path (Section 6.1) talks to an origin server in two
ways: full fetches on cache misses and *revalidations* of stale cached
contents (Step 2b).  The model tracks content versions — a content is
mutated at a configurable rate, so a revalidation either confirms
freshness (cheap, headers only) or triggers a re-fetch (full size over
the WAN).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class OriginStats:
    """Traffic accounting on the origin side."""

    fetches: int = 0
    fetch_bytes: int = 0
    revalidations: int = 0
    refetches: int = 0

    @property
    def wan_bytes(self) -> int:
        return self.fetch_bytes


class OriginServer:
    """Versioned content store behind the WAN.

    Parameters
    ----------
    update_probability:
        Probability that a content has changed since its last validation
        timestamp, per revalidation check.  Production CDN contents are
        mostly immutable; the default is small.
    """

    def __init__(self, update_probability: float = 0.02, seed: int = 0):
        if not 0.0 <= update_probability <= 1.0:
            raise ValueError("update_probability must lie in [0, 1]")
        self._update_probability = update_probability
        self._rng = np.random.default_rng(seed)
        self._versions: dict[int, int] = {}
        self.stats = OriginStats()

    def version(self, obj_id: int) -> int:
        return self._versions.get(obj_id, 0)

    def fetch(self, obj_id: int, size: int) -> int:
        """Full fetch over the WAN; returns the current version."""
        self.stats.fetches += 1
        self.stats.fetch_bytes += size
        return self.version(obj_id)

    def revalidate(self, obj_id: int, cached_version: int, size: int) -> bool:
        """Revalidate a stale cached copy (Step 2b of the ATS path).

        Returns True when the cached copy is still current (an If-Modified
        304: only headers cross the WAN); on False the content changed and
        a full re-fetch is performed and accounted.
        """
        self.stats.revalidations += 1
        if self._rng.random() < self._update_probability:
            self._versions[obj_id] = self.version(obj_id) + 1
        if self.version(obj_id) == cached_version:
            return True
        self.stats.refetches += 1
        self.fetch(obj_id, size)
        return False
