"""Multi-node CDN cluster with consistent-hash request routing.

The paper's context is a CDN operating fleets of cache servers with a
request-routing front end (its citation [16], "End-User Mapping: Next
Generation Request Routing").  This module models one PoP: N cache
nodes, a consistent-hash ring assigning each content a primary node
(plus optional replicas), per-node policies, and failure handling —
removing a node reroutes its key range to the survivors with cold
caches, exactly the transient a real fleet sees.

The cluster exposes aggregate and per-node statistics so sharding
effects can be studied: for a fixed total byte budget, fewer/larger
caches yield higher hit ratios (no duplication, better skew absorption)
at the cost of per-node load.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.traces.request import Request, Trace
from repro.util.bloom import _mix64


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes.

    ``nodes_for(key, k)`` walks the ring clockwise from the key's hash
    and returns the first ``k`` *distinct* nodes — the replica set.
    """

    def __init__(self, nodes: list[str], virtual_nodes: int = 64):
        if not nodes:
            raise ValueError("need at least one node")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self._virtual_nodes = virtual_nodes
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    @staticmethod
    def _hash(value: str) -> int:
        digest = 1469598103934665603
        for byte in value.encode():
            digest = ((digest ^ byte) * 1099511628211) & ((1 << 64) - 1)
        return _mix64(digest)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for replica in range(self._virtual_nodes):
            point = self._hash(f"{node}#{replica}")
            bisect.insort(self._ring, (point, node))

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def nodes_for(self, key: int, count: int = 1) -> list[str]:
        """The ``count`` distinct nodes responsible for ``key``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if not self._ring:
            raise RuntimeError("ring is empty")
        count = min(count, len(self._nodes))
        point = _mix64(key & ((1 << 64) - 1))
        index = bisect.bisect_right(self._ring, (point, ""))
        chosen: list[str] = []
        for offset in range(len(self._ring)):
            node = self._ring[(index + offset) % len(self._ring)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == count:
                    break
        return chosen

    def node_for(self, key: int) -> str:
        return self.nodes_for(key, 1)[0]


class CdnCluster:
    """A PoP of cache nodes behind consistent-hash routing.

    Parameters
    ----------
    num_nodes:
        Initial node count (named ``node-0`` .. ``node-N-1``).
    capacity_per_node:
        Cache bytes per node.
    policy:
        Policy name for every node (resolved via the shared registry).
    replication:
        Replica-set size; requests go to the first *alive* replica in
        ring order (1 = plain sharding).
    """

    def __init__(
        self,
        num_nodes: int,
        capacity_per_node: int,
        policy: str = "lru",
        replication: int = 1,
        virtual_nodes: int = 64,
        policy_kwargs: dict | None = None,
        seed: int = 0,
    ):
        from repro.sim.runner import build_policy

        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if replication <= 0:
            raise ValueError("replication must be positive")
        self.replication = replication
        self.capacity_per_node = capacity_per_node
        self._policy_name = policy
        self._policy_kwargs = policy_kwargs or {}
        self._build = build_policy
        self._rng = np.random.default_rng(seed)
        names = [f"node-{i}" for i in range(num_nodes)]
        self.ring = ConsistentHashRing(names, virtual_nodes=virtual_nodes)
        self.nodes = {name: self._new_policy() for name in names}
        self.requests_per_node: dict[str, int] = {name: 0 for name in names}
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0

    def _new_policy(self):
        return self._build(
            self._policy_name, self.capacity_per_node, **self._policy_kwargs
        )

    # ------------------------------------------------------------------

    def serve(self, req: Request) -> bool:
        """Route one request to its replica set; hit if any replica hits.

        With replication > 1 the request is served by the first replica
        that has the content; a full miss admits at the primary only
        (read-through, single-copy admission).
        """
        replicas = self.ring.nodes_for(req.obj_id, self.replication)
        primary = replicas[0]
        hit = False
        for name in replicas:
            if self.nodes[name].contains(req.obj_id):
                hit = True
                self.requests_per_node[name] += 1
                self.nodes[name].request(req)  # refresh recency/learning
                break
        if not hit:
            self.requests_per_node[primary] += 1
            self.nodes[primary].request(req)
        if hit:
            self.hits += 1
            self.hit_bytes += req.size
        else:
            self.misses += 1
            self.miss_bytes += req.size
        return hit

    def process(self, trace: Trace) -> None:
        for req in trace:
            self.serve(req)

    # ------------------------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Take a node out of rotation; its key range reroutes cold."""
        self.ring.remove_node(name)
        del self.nodes[name]

    def add_node(self, name: str) -> None:
        """Scale out with an empty node (keys rebalance onto it)."""
        self.ring.add_node(name)
        self.nodes[name] = self._new_policy()
        self.requests_per_node.setdefault(name, 0)

    # ------------------------------------------------------------------

    @property
    def object_hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0

    def load_imbalance(self) -> float:
        """Max/mean request load across currently alive nodes.

        1.0 is perfectly balanced; consistent hashing with enough virtual
        nodes typically lands below ~1.5 on Zipf workloads.
        """
        loads = [self.requests_per_node.get(name, 0) for name in self.nodes]
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def report(self) -> dict:
        return {
            "nodes": len(self.nodes),
            "object_hit_ratio": round(self.object_hit_ratio, 4),
            "byte_hit_ratio": round(self.byte_hit_ratio, 4),
            "load_imbalance": round(self.load_imbalance(), 3),
            "total_cache_gb": round(
                len(self.nodes) * self.capacity_per_node / (1 << 30), 3
            ),
        }
