"""HRO — the paper's online upper bound on OPT (Section 3).

HRO approximates the hazard-rate bound of Panigrahy et al. without
knowing the true inter-request distributions:

1. Requests are grouped into non-overlapping sliding windows (footnote 3)
   sized by *unique bytes* — a window closes once the distinct contents
   requested in it exceed ``window_bytes`` (4x the cache size by
   default, per Section 5.1).
2. Within a window the request process of each content is approximated
   as Poisson, so its hazard rate is its empirical rate
   ``lambda_i = count_i / window_duration`` — constant in time.
3. The size-normalized hazard ``lambda_i / s_i`` ranks contents; the
   fractional-knapsack prefix that fills the cache is the "HRO cache
   set" for the *next* window (no look-ahead: decisions about window
   ``k+1`` use only data from window ``k``).
4. A request is classified a hit iff its content is in the current HRO
   set and has been requested before.

The per-window hit/miss classifications are also the supervision labels
LHR trains on (Section 5.2.4); ``window_labels`` exposes them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from collections import deque

from repro.bounds.belady import BoundResult
from repro.bounds.hazard import hazard_ranks, hazard_top_set
from repro.core.hazard_models import HAZARD_MODELS, fit_hazard_model
from repro.obs import NULL_OBS
from repro.traces.request import Request, Trace


@dataclass(slots=True)
class _WindowAccumulator:
    """Running statistics of the currently open sliding window."""

    counts: dict[int, int] = field(default_factory=dict)
    sizes: dict[int, int] = field(default_factory=dict)
    unique_bytes: int = 0
    start_time: float | None = None
    end_time: float = 0.0
    num_requests: int = 0

    def add(self, req: Request) -> None:
        if self.start_time is None:
            self.start_time = req.time
        self.end_time = req.time
        self.num_requests += 1
        if req.obj_id not in self.counts:
            self.counts[req.obj_id] = 0
            self.sizes[req.obj_id] = req.size
            self.unique_bytes += req.size
        self.counts[req.obj_id] += 1

    @property
    def duration(self) -> float:
        if self.start_time is None:
            return 0.0
        return max(self.end_time - self.start_time, 1e-9)


@dataclass(frozen=True)
class HroWindow:
    """Summary of one closed sliding window."""

    index: int
    num_requests: int
    unique_bytes: int
    duration: float
    counts: dict[int, int]
    sizes: dict[int, int]
    top_set: frozenset[int]

    def hazard_rates(self) -> dict[int, float]:
        """Size-normalized Poisson hazards ``count / (duration * size)``."""
        return {
            obj_id: count / (self.duration * self.sizes[obj_id])
            for obj_id, count in self.counts.items()
        }


class HroBound:
    """Streaming HRO computation.

    Feed requests one at a time with :meth:`process`; it returns the HRO
    hit/miss classification for the request.  Closed windows are kept in
    :attr:`windows` (statistics only).  ``on_window`` may be set to a
    callable invoked with each closed :class:`HroWindow` — LHR hooks its
    detection/training pipeline there.
    """

    def __init__(
        self,
        capacity: int,
        window_multiple: float = 4.0,
        min_window_requests: int = 0,
        hazard_model: str = "poisson",
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if window_multiple <= 0:
            raise ValueError("window_multiple must be positive")
        if hazard_model.lower() not in HAZARD_MODELS:
            raise ValueError(
                f"hazard_model must be one of {HAZARD_MODELS}, got {hazard_model!r}"
            )
        #: Which per-content hazard estimator to use.  "poisson" is the
        #: paper's choice (constant empirical rate); "weibull" and
        #: "hyperexponential" are the richer estimators the paper leaves
        #: as future work (see repro.core.hazard_models).
        self.hazard_model = hazard_model.lower()
        self.capacity = capacity
        self.window_bytes = int(capacity * window_multiple)
        #: Floor on requests per window.  The paper sizes windows purely
        #: by unique bytes (4x cache), which at full trace scale always
        #: spans thousands of requests; replaying at reduced scale can
        #: shrink a window below what the learner needs, so a practical
        #: floor keeps the training set meaningful.
        self.min_window_requests = min_window_requests
        self._accumulator = _WindowAccumulator()
        # Statistics of the previous (closed) window; runtime hazards are
        # computed over previous + current so the estimate is online and
        # keeps updating as requests arrive within the open window.
        self._prev_counts: dict[int, int] = {}
        self._prev_duration = 0.0
        #: Combined previous+current window elapsed time, refreshed once
        #: per request (and at rotation) instead of recomputed from the
        #: accumulator for every hazard query.
        self._elapsed = 1e-9
        self._combined_sizes: dict[int, int] = {}
        #: Hazard admission threshold: the marginal size-normalized hazard
        #: of the fractional-knapsack prefix, refreshed at window closes.
        #: A request passes with a strictly larger hazard, or by being in
        #: the materialized top set (the tie-break: among equal-hazard
        #: contents only the knapsack winners count as cached).
        self._hazard_threshold = 0.0
        self._top_set: frozenset[int] = frozenset()
        self._have_threshold = False
        self._seen: set[int] = set()
        # Non-Poisson estimators need per-content IRT samples and fitted
        # models (refreshed at window closes).
        self._irts: dict[int, deque] = {}
        self._last_time: dict[int, float] = {}
        self._models: dict = {}
        self.windows: list[HroWindow] = []
        self.on_window = None
        #: When True, :meth:`process` stores each request's cacheability
        #: verdict in :attr:`last_would_cache` and window closes refresh
        #: the per-content hazard ranking for :meth:`hazard_rank`.
        #: Costs one attribute check per request when off; decision
        #: tracing (:mod:`repro.obs.trace`) turns it on.
        self.track_decisions = False
        self.last_would_cache = True
        self._ranks: dict[int, int] = {}
        #: Observation handle (:mod:`repro.obs`): window closes time the
        #: hazard re-ranking into the ``hro_rank_seconds`` histogram.
        self.obs = NULL_OBS
        self.hits = 0
        self.hit_bytes = 0
        self.requests = 0
        self.total_bytes = 0

    def _hazard(self, obj_id: int, size: int, now: float | None = None) -> float:
        if self.hazard_model != "poisson" and now is not None:
            model = self._models.get(obj_id)
            if model is not None:
                age = max(now - self._last_time.get(obj_id, now), 0.0)
                return model.hazard(age) / size
        count = self._prev_counts.get(obj_id, 0) + self._accumulator.counts.get(
            obj_id, 0
        )
        return count / (self._elapsed * size)

    def _observe_irt(self, req: Request) -> None:
        self._observe_irt_scalar(req.obj_id, req.time)

    def _observe_irt_scalar(self, obj_id: int, time: float) -> None:
        previous = self._last_time.get(obj_id)
        if previous is not None and time > previous:
            gaps = self._irts.get(obj_id)
            if gaps is None:
                gaps = deque(maxlen=16)
                self._irts[obj_id] = gaps
            gaps.append(time - previous)

    def process(self, req: Request) -> bool:
        """Classify one request under HRO and update window state."""
        return self.process_scalar(req.obj_id, req.size, req.time)

    def process_scalar(self, obj_id: int, size: int, time: float) -> bool:
        """``process`` without a ``Request`` — the columnar fast path.

        The accumulator update is inlined and the combined-window elapsed
        time cached once per request, so hazard queries stay O(1) dict
        lookups; the classification logic is the reference ``process``
        verbatim.
        """
        acc = self._accumulator
        start = acc.start_time
        if start is None:
            acc.start_time = start = time
        acc.end_time = time
        acc.num_requests += 1
        counts = acc.counts
        if obj_id in counts:
            counts[obj_id] += 1
        else:
            counts[obj_id] = 1
            acc.sizes[obj_id] = size
            acc.unique_bytes += size
        duration = time - start
        if duration < 1e-9:
            duration = 1e-9
        self._elapsed = self._prev_duration + duration
        if self.hazard_model != "poisson":
            self._observe_irt_scalar(obj_id, time)
        if self._have_threshold:
            seen = obj_id in self._seen
            if seen or self.track_decisions:
                would_cache = (
                    self._hazard(obj_id, size, time) > self._hazard_threshold
                    or obj_id in self._top_set
                )
            else:
                # The verdict is only needed for seen contents (a first
                # request can never hit) unless a tracer wants it.
                would_cache = False
            hit = seen and would_cache
        else:
            # Before the first window closes there is no ranking yet; any
            # re-request counts (the InfiniteCap rule), which errs on the
            # generous side and so preserves the upper-bound property.
            would_cache = True
            hit = obj_id in self._seen
        if self.track_decisions:
            self.last_would_cache = would_cache
        if hit:
            self.hits += 1
            self.hit_bytes += size
        self.requests += 1
        self.total_bytes += size
        self._seen.add(obj_id)
        if self.hazard_model != "poisson":
            self._last_time[obj_id] = time
        if (
            acc.unique_bytes >= self.window_bytes
            and acc.num_requests >= self.min_window_requests
        ):
            self._close_window()
        return hit

    def _close_window(self) -> None:
        # Time only the hazard re-ranking; the on_window callback (LHR's
        # detection/training pipeline) reports through its own metrics.
        with self.obs.timer(
            "hro_rank_seconds",
            help="hazard-rate re-ranking at each sliding-window close",
        ):
            window = self._rank_and_rotate()
        if self.on_window is not None:
            self.on_window(window)

    def _rank_and_rotate(self) -> HroWindow:
        acc = self._accumulator
        window = HroWindow(
            index=len(self.windows),
            num_requests=acc.num_requests,
            unique_bytes=acc.unique_bytes,
            duration=acc.duration,
            counts=dict(acc.counts),
            sizes=dict(acc.sizes),
            top_set=compute_top_set(acc.counts, acc.sizes, acc.duration, self.capacity),
        )
        self.windows.append(window)
        # Refresh the runtime hazard threshold from the combined stats of
        # the two most recent windows (matching the runtime estimator).
        combined = dict(self._prev_counts)
        for obj_id, count in acc.counts.items():
            combined[obj_id] = combined.get(obj_id, 0) + count
        sizes = {**self._combined_sizes, **acc.sizes}
        duration = max(self._prev_duration + acc.duration, 1e-9)
        self._hazard_threshold = marginal_hazard(
            combined, sizes, duration, self.capacity
        )
        self._top_set = frozenset(
            compute_top_set(combined, sizes, duration, self.capacity)
        )
        if self.track_decisions:
            self._ranks = compute_hazard_ranks(combined, sizes, duration)
        self._have_threshold = True
        if self.hazard_model != "poisson":
            self._refit_models(combined, sizes, duration, acc.end_time)
        self._prev_counts = dict(acc.counts)
        self._prev_duration = acc.duration
        self._combined_sizes = dict(acc.sizes)
        self._accumulator = _WindowAccumulator()
        # Fresh accumulator has zero duration: elapsed is the previous
        # window's span (floored like the reference computation).
        self._elapsed = max(self._prev_duration, 1e-9)
        return window

    def _refit_models(
        self,
        combined: dict[int, int],
        sizes: dict[int, int],
        duration: float,
        close_time: float,
    ) -> None:
        """Fit per-content hazard models from the windowed IRT samples and
        recompute the admission threshold/top set in model terms."""
        models = {}
        hazards: dict[int, float] = {}
        for obj_id, count in combined.items():
            gaps = self._irts.get(obj_id)
            if gaps and len(gaps) >= 3:
                models[obj_id] = fit_hazard_model(self.hazard_model, list(gaps))
                age = max(close_time - self._last_time.get(obj_id, close_time), 0.0)
                hazards[obj_id] = models[obj_id].hazard(age) / sizes[obj_id]
            else:
                hazards[obj_id] = count / (duration * sizes[obj_id])
        self._models = models
        # Re-rank under the fitted models so runtime comparisons use a
        # threshold in the same units.
        ids = list(hazards)
        if ids:
            import numpy as _np

            hazard_arr = _np.asarray([hazards[i] for i in ids])
            size_arr = _np.asarray([sizes[i] for i in ids], dtype=float)
            order = _np.argsort(hazard_arr, kind="stable")[::-1]
            cumulative = _np.cumsum(size_arr[order])
            inside = cumulative < self.capacity
            if inside.all():
                self._hazard_threshold = 0.0
            else:
                marginal = int(_np.argmin(inside))
                self._hazard_threshold = float(hazard_arr[order[marginal]])
            self._top_set = frozenset(
                hazard_top_set(ids, hazard_arr, size_arr, self.capacity)
            )
            if self.track_decisions:
                self._ranks = hazard_ranks(ids, hazard_arr)
        # Bound the IRT store to contents seen in the last two windows.
        stale = [oid for oid in self._irts if oid not in combined]
        for oid in stale:
            self._irts.pop(oid, None)
            self._last_time.pop(oid, None)

    def hazard_rank(self, obj_id: int) -> int | None:
        """The content's position in the current hazard ranking (0 =
        hottest), or ``None`` before the first window closes or when
        ``track_decisions`` is off or the content is unranked."""
        return self._ranks.get(obj_id)

    @property
    def hazard_threshold(self) -> float:
        """The current marginal size-normalized hazard (0 before the
        first window closes)."""
        return self._hazard_threshold

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def result(self) -> BoundResult:
        return BoundResult(
            name="hro",
            requests=self.requests,
            hits=self.hits,
            hit_bytes=self.hit_bytes,
            total_bytes=self.total_bytes,
        )


def compute_top_set(
    counts: dict[int, int],
    sizes: dict[int, int],
    duration: float,
    capacity: int,
) -> frozenset[int]:
    """The HRO cache set for given window statistics."""
    if not counts:
        return frozenset()
    ids = list(counts)
    size_arr = np.asarray([sizes[i] for i in ids], dtype=np.float64)
    hazard_arr = (
        np.asarray([counts[i] for i in ids], dtype=np.float64)
        / max(duration, 1e-9)
        / size_arr
    )
    return frozenset(hazard_top_set(ids, hazard_arr, size_arr, capacity))


def compute_hazard_ranks(
    counts: dict[int, int],
    sizes: dict[int, int],
    duration: float,
) -> dict[int, int]:
    """Dense hazard ranking for given window statistics (0 = hottest)."""
    if not counts:
        return {}
    ids = list(counts)
    size_arr = np.asarray([sizes[i] for i in ids], dtype=np.float64)
    hazard_arr = (
        np.asarray([counts[i] for i in ids], dtype=np.float64)
        / max(duration, 1e-9)
        / size_arr
    )
    return hazard_ranks(ids, hazard_arr)


def marginal_hazard(
    counts: dict[int, int],
    sizes: dict[int, int],
    duration: float,
    capacity: int,
) -> float:
    """The size-normalized hazard of the marginal content in the
    fractional-knapsack prefix — contents at or above this threshold form
    the HRO cache set."""
    if not counts:
        return 0.0
    ids = list(counts)
    size_arr = np.asarray([sizes[i] for i in ids], dtype=np.float64)
    hazard_arr = (
        np.asarray([counts[i] for i in ids], dtype=np.float64)
        / max(duration, 1e-9)
        / size_arr
    )
    order = np.argsort(hazard_arr, kind="stable")[::-1]
    cumulative = np.cumsum(size_arr[order])
    inside = cumulative < capacity
    if inside.all():
        return 0.0  # everything fits: any re-request is a potential hit
    marginal_index = int(np.argmin(inside))  # first content that overflows
    return float(hazard_arr[order[marginal_index]])


def window_labels(window: HroWindow, requests: Sequence[Request]) -> np.ndarray:
    """HRO supervision labels for the requests of ``window``.

    Label 1 iff the request's content belongs to the window's own top
    set — "what optimal caching would have admitted" (Section 5.2.4).
    """
    return window_labels_for_ids(window, [req.obj_id for req in requests])


def window_labels_for_ids(window: HroWindow, obj_ids: Sequence[int]) -> np.ndarray:
    """``window_labels`` from bare content ids (the columnar path keeps
    per-window ids, not ``Request`` objects)."""
    top_set = window.top_set
    return np.asarray([1.0 if obj_id in top_set else 0.0 for obj_id in obj_ids])


def hro_bound(
    trace: Trace | Sequence[Request],
    capacity: int,
    window_multiple: float = 4.0,
    min_window_requests: int = 0,
    hazard_model: str = "poisson",
) -> BoundResult:
    """Run HRO over a full trace and return the aggregate bound."""
    bound = HroBound(capacity, window_multiple, min_window_requests, hazard_model)
    for req in trace:
        bound.process(req)
    return bound.result()
