"""Model and policy-state serialization.

A deployed LHR node wants to persist its learned state across restarts
(the paper's prototype retrains from scratch; warm-starting is the
obvious operational extension).  This module provides JSON round trips
for the GBM and a *checkpoint* of LHR's transferable learned state — the
admission model, the tuned threshold and the detector's alpha history.
Cache *contents* are deliberately not serialized: they belong to the
storage layer (flash), not the learner.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.gbm import GradientBoostingRegressor, _Tree
from repro.core.lhr import LhrCache

#: Format marker so future layout changes can be detected on load.
FORMAT_VERSION = 1


def gbm_to_dict(model: GradientBoostingRegressor) -> dict:
    """Serializable representation of a fitted GBM."""
    if not model._fitted:
        raise ValueError("cannot serialize an unfitted model")
    return {
        "format_version": FORMAT_VERSION,
        "hyperparameters": {
            "n_estimators": model.n_estimators,
            "learning_rate": model.learning_rate,
            "max_depth": model.max_depth,
            "min_samples_leaf": model.min_samples_leaf,
            "n_bins": model.n_bins,
            "l2_regularization": model.l2_regularization,
            "subsample": model.subsample,
            "loss": model.loss,
        },
        "base_score": model._base_score,
        "trees": [
            {
                "feature": tree.feature.tolist(),
                "threshold": tree.threshold.tolist(),
                "left": tree.left.tolist(),
                "right": tree.right.tolist(),
                "value": tree.value.tolist(),
            }
            for tree in model._trees
        ],
    }


def gbm_from_dict(payload: dict) -> GradientBoostingRegressor:
    """Rebuild a fitted GBM from :func:`gbm_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    model = GradientBoostingRegressor(**payload["hyperparameters"])
    model._base_score = float(payload["base_score"])
    model._trees = [
        _Tree(
            feature=np.asarray(tree["feature"], np.int32),
            threshold=np.asarray(tree["threshold"], np.float64),
            left=np.asarray(tree["left"], np.int32),
            right=np.asarray(tree["right"], np.int32),
            value=np.asarray(tree["value"], np.float64),
        )
        for tree in payload["trees"]
    ]
    model._scalar_trees = None
    model._metadata_bytes = None
    model._fitted = True
    return model


def save_model(model: GradientBoostingRegressor, path: str | Path) -> None:
    """Write a fitted GBM to a JSON file."""
    Path(path).write_text(json.dumps(gbm_to_dict(model)))


def load_model(path: str | Path) -> GradientBoostingRegressor:
    """Read a GBM previously written by :func:`save_model`."""
    return gbm_from_dict(json.loads(Path(path).read_text()))


def lhr_checkpoint(cache: LhrCache) -> dict:
    """Snapshot LHR's transferable learned state.

    Captures the admission model, the auto-tuned threshold (with its
    history), the detector's alpha trajectory and the key configuration
    knobs needed to validate compatibility at restore time.
    """
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "num_irts": cache.num_irts,
            "eviction_rule": cache.eviction_rule,
            "auto_threshold": cache.auto_threshold,
            "use_detection": cache.use_detection,
        },
        "model": gbm_to_dict(cache._model) if cache._model is not None else None,
        "delta": cache.estimator.delta,
        "delta_history": list(cache.estimator.history),
        "detector_alpha": cache.detector.current_alpha,
        "windows_processed": cache.windows_processed,
    }


def restore_lhr(cache: LhrCache, checkpoint: dict) -> LhrCache:
    """Warm-start ``cache`` (a fresh LhrCache) from a checkpoint.

    The target must agree with the checkpoint on ``num_irts`` (the model's
    feature layout depends on it); other knobs may differ and are left as
    configured.  Returns ``cache`` for chaining.
    """
    version = checkpoint.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format version {version!r}")
    if checkpoint["config"]["num_irts"] != cache.num_irts:
        raise ValueError(
            "checkpoint num_irts "
            f"{checkpoint['config']['num_irts']} != cache num_irts {cache.num_irts}"
        )
    if checkpoint["model"] is not None:
        cache._model = gbm_from_dict(checkpoint["model"])
    cache.estimator.delta = float(checkpoint["delta"])
    cache.estimator.history = [float(v) for v in checkpoint["delta_history"]]
    alpha = checkpoint.get("detector_alpha")
    if alpha is not None:
        cache.detector._previous_alpha = float(alpha)
    return cache


def save_lhr_checkpoint(cache: LhrCache, path: str | Path) -> None:
    """Write an LHR checkpoint to a JSON file."""
    Path(path).write_text(json.dumps(lhr_checkpoint(cache)))


def load_lhr_checkpoint(cache: LhrCache, path: str | Path) -> LhrCache:
    """Warm-start ``cache`` from a JSON checkpoint file; returns it."""
    return restore_lhr(cache, json.loads(Path(path).read_text()))
