"""Drift detection between sliding windows (Section 5.2.2, Appendix A.2).

Content popularity within a window is modelled as Zipf; the detector
estimates the skew ``alpha`` of each window with the O(N) least-squares
fit from :mod:`repro.util.fitting` and flags a "significant change" when
``|alpha_k - alpha_{k-1}| >= epsilon``.  LHR retrains its admission model
only on flagged windows, which is where the 15-40% training-time saving
in Figure 10(c) comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import NULL_OBS
from repro.obs.learner import (
    kendall_tau,
    noise_threshold,
    rank_overlap,
    top_ranked_ids,
)
from repro.util.fitting import ZipfFit, fit_zipf


@dataclass(frozen=True)
class DetectionRecord:
    """Outcome of inspecting one window."""

    window_index: int
    alpha: float
    previous_alpha: float | None
    drifted: bool
    fit: ZipfFit


class DriftDetector:
    """Per-window Zipf-``alpha`` drift detector.

    Parameters
    ----------
    epsilon:
        Drift threshold on ``|alpha_k - alpha_{k-1}|``.  The paper uses
        0.002 on synthetic traces (Appendix A.2); production defaults are
        trace-dependent, so the constructor takes it explicitly.
    """

    def __init__(self, epsilon: float = 0.002):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self._previous_alpha: float | None = None
        self.records: list[DetectionRecord] = []
        #: Observation handle (:mod:`repro.obs`); LHR attaches its own.
        self.obs = NULL_OBS
        # Shadow-detector state (learner telemetry only): the previous
        # window's alpha stderr and top-k popularity ranking.  Never
        # consulted by the real verdict — shadow statistics are strictly
        # counterfactual.
        self._shadow_stderr: float | None = None
        self._shadow_ranks: list[int] = []

    @property
    def current_alpha(self) -> float | None:
        return self._previous_alpha

    def observe_window(self, counts) -> bool:
        """Inspect one window's per-content request counts.

        Returns True when the model should be retrained: on the first
        window ever, when the fit degenerates, or on alpha drift.
        """
        # Runs once per window; the disabled span context is a shared
        # no-op, so this costs nothing on the hot path.
        with self.obs.spans.span("lhr.drift_check", cat="lhr"):
            return self._observe_window(counts)

    def _observe_window(self, counts) -> bool:
        values = np.asarray(list(counts.values()) if hasattr(counts, "values") else counts)
        previous = self._previous_alpha
        try:
            fit = fit_zipf(values.astype(np.float64))
        except ValueError:
            # Degenerate window (0-1 distinct contents): force retraining,
            # keep the previous alpha.
            record = DetectionRecord(
                window_index=len(self.records),
                alpha=previous if previous is not None else 0.0,
                previous_alpha=previous,
                drifted=True,
                fit=ZipfFit(0.0, 0.0, 0.0, 0),
            )
            self.records.append(record)
            self._emit(record, degenerate=True)
            self._record_shadow(record, counts, degenerate=True)
            return True
        drifted = previous is None or abs(fit.alpha - previous) >= self.epsilon
        record = DetectionRecord(
            window_index=len(self.records),
            alpha=fit.alpha,
            previous_alpha=previous,
            drifted=drifted,
            fit=fit,
        )
        self.records.append(record)
        self._emit(record, degenerate=False)
        self._record_shadow(record, counts, degenerate=False)
        self._previous_alpha = fit.alpha
        return drifted

    def _record_shadow(self, record: DetectionRecord, counts, degenerate: bool) -> None:
        """Learner-telemetry fragment: alpha±stderr plus the shadow drift
        statistics a sharpened detector would consume (noise-scaled
        epsilon verdict, top-k overlap, Kendall-tau of popularity ranks).

        Counterfactual by construction — nothing here feeds back into
        ``observe_window``'s verdict, and the whole block is skipped when
        the learner sink is disabled.
        """
        learner = self.obs.learner
        if not learner.enabled:
            return
        nan = float("nan")
        if degenerate:
            learner.record_drift(
                alpha=nan,
                alpha_stderr=nan,
                r_squared=nan,
                fit_contents=0.0,
                drifted=1.0,
                degenerate=1.0,
                shadow_drift=0.0,
                noise_threshold=nan,
                topk_overlap=nan,
                kendall_tau=nan,
            )
            # A degenerate window has no usable ranking; the next window
            # compares against the last healthy one.
            return
        fit = record.fit
        ranks = top_ranked_ids(counts) if hasattr(counts, "items") else []
        threshold = noise_threshold(
            self.epsilon, fit.alpha_stderr, self._shadow_stderr
        )
        shadow_drift = (
            record.previous_alpha is not None
            and abs(fit.alpha - record.previous_alpha) >= threshold
        )
        learner.record_drift(
            alpha=fit.alpha,
            alpha_stderr=fit.alpha_stderr,
            r_squared=fit.r_squared,
            fit_contents=float(fit.num_contents),
            drifted=float(record.drifted),
            degenerate=0.0,
            shadow_drift=float(shadow_drift),
            noise_threshold=threshold,
            topk_overlap=rank_overlap(self._shadow_ranks, ranks),
            kendall_tau=kendall_tau(self._shadow_ranks, ranks),
        )
        self._shadow_stderr = fit.alpha_stderr
        self._shadow_ranks = ranks

    def _emit(self, record: DetectionRecord, degenerate: bool) -> None:
        if not self.obs.enabled:
            return
        self.obs.registry.counter(
            "lhr_drift_windows_total", help="windows inspected by the detector"
        ).inc()
        if record.drifted:
            self.obs.registry.counter(
                "lhr_drift_detections_total", help="windows flagged as drifted"
            ).inc()
        self.obs.registry.gauge(
            "lhr_zipf_alpha", help="latest per-window Zipf-alpha estimate"
        ).set(record.alpha)
        self.obs.emit(
            "lhr.drift",
            window=record.window_index,
            alpha=round(record.alpha, 6),
            previous_alpha=(
                round(record.previous_alpha, 6)
                if record.previous_alpha is not None
                else None
            ),
            drifted=record.drifted,
            degenerate=degenerate,
            epsilon=self.epsilon,
        )

    @property
    def num_detections(self) -> int:
        return sum(1 for record in self.records if record.drifted)

    def alphas(self) -> list[float]:
        """Per-window alpha estimates (Figure 12's time series)."""
        return [record.alpha for record in self.records]

    # ------------------------------------------------------------------
    # Introspection for the workload lab and the non-stationarity tests
    # ------------------------------------------------------------------

    def drifted_windows(self) -> list[int]:
        """Indices of the windows that triggered retraining, in order.

        The drift-latency tests use this to assert a detection lands
        within a bounded number of windows of an injected popularity
        change (and nowhere else on a stationary control).
        """
        return [record.window_index for record in self.records if record.drifted]

    @property
    def last_detection_window(self) -> int | None:
        """The most recent drifted window index, or None before any."""
        for record in reversed(self.records):
            if record.drifted:
                return record.window_index
        return None

    def summary(self) -> dict:
        """Counters the workload lab reports per policy cell.

        A detector that has seen zero windows returns the explicit empty
        summary (zero counters, ``None`` aggregates) — callers render it
        directly instead of special-casing a fresh detector.
        """
        if not self.records:
            return {
                "windows": 0,
                "detections": 0,
                "last_detection_window": None,
                "detection_rate": 0.0,
                "mean_alpha": None,
            }
        alphas = [
            record.alpha for record in self.records if record.fit.num_contents
        ]
        return {
            "windows": len(self.records),
            "detections": self.num_detections,
            "last_detection_window": self.last_detection_window,
            "detection_rate": self.num_detections / len(self.records),
            "mean_alpha": sum(alphas) / len(alphas) if alphas else None,
        }
