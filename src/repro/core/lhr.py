"""LHR — Learning from HRO (Sections 4 and 5; Algorithm 1).

LHR is a cache policy that learns *from optimal caching*: a gradient-
boosted model is trained to imitate HRO's per-request hit/miss verdicts,
and its output — the admission probability ``p_i`` — drives both
admission and eviction:

* **Admission**: admit on a miss iff ``p_i >= delta``, where ``delta``
  is auto-tuned per window by :class:`~repro.core.threshold.ThresholdEstimator`.
* **Hit bookkeeping** (the four cases of Section 4.1): on a hit the
  stored probability is refreshed; if ``p_i < delta`` the content is
  additionally marked an *eviction candidate*.
* **Eviction**: evict the candidate with the smallest eviction value
  ``q_i = p_i / (s_i * IRT_1)`` (Section 5.2.5), falling back to a
  uniform sample of the cache when no candidates are marked.
* **Efficient training**: the model is retrained only when the Zipf-alpha
  drift detector flags a significant popularity change between windows
  (Section 5.2.2), never more than once per sliding window.

Ablation variants from Section 7.4 are provided: ``DLhrCache`` (fixed
``delta = 0.5``) and ``NLhrCache`` (fixed threshold *and* retrain every
window).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.detection import DriftDetector
from repro.core.features import FeatureStore, feature_dim
from repro.core.gbm import GradientBoostingRegressor
from repro.core.hro import HroBound, HroWindow, window_labels_for_ids
from repro.core.model_backends import resolve_backend
from repro.core.threshold import ThresholdEstimator, WindowSample
from repro.obs import Observation
from repro.obs.learner import CAL_BINS, CalibrationStats, realized_reuse
from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.indexed_set import IndexedSet

#: Eviction-rule variants: the paper's rule and the "straightforward"
#: smallest-p rule it improves upon (Section 5.2.5).
EVICTION_RULES = ("lhr", "p-only", "p-recency")


class LhrCache(CachePolicy):
    """The LHR cache (Algorithm 1).

    Parameters
    ----------
    capacity:
        Cache size in bytes.
    window_multiple:
        Sliding-window size as a multiple of the cache size in unique
        bytes (paper default 4x; Figure 5 sweeps 1x-8x).
    num_irts:
        Inter-request-time features used by the model (paper default 20;
        Figure 6 sweeps 10-30).
    epsilon:
        Zipf-alpha drift threshold for the detection mechanism.
    beta:
        Minimum hit-ratio improvement required to adopt a new admission
        threshold (paper default 0.2%).
    auto_threshold:
        Auto-tune ``delta`` (False gives the D-LHR ablation).
    use_detection:
        Gate retraining on drift detection (False + fixed threshold
        gives the N-LHR ablation).
    eviction_rule:
        ``"lhr"`` for ``p / (s * IRT_1)``; ``"p-only"`` for smallest-p.
    num_candidates:
        Eviction candidates sampled per eviction.
    sample_fraction:
        Fraction of window requests replayed by the threshold estimator.
    threshold_objective:
        ``"object"`` tunes delta for object hit ratio (the paper);
        ``"byte"`` tunes it for byte hit ratio (WAN traffic) instead.
    gbm_params:
        Overrides for the :class:`GradientBoostingRegressor`.
    model_backend:
        Inference backend name (``"scalar"``, ``"batched"`` or
        ``"auto"``); every backend is bit-exact, so this is a pure
        performance knob.  See :mod:`repro.core.model_backends`.
    """

    name = "lhr"

    def __init__(
        self,
        capacity: int,
        window_multiple: float = 4.0,
        min_window_requests: int = 512,
        num_irts: int = 20,
        epsilon: float = 0.005,
        beta: float = 0.002,
        initial_delta: float = 0.5,
        auto_threshold: bool = True,
        use_detection: bool = True,
        eviction_rule: str = "lhr",
        num_candidates: int = 64,
        sample_fraction: float = 0.5,
        threshold_objective: str = "object",
        gbm_params: dict | None = None,
        model_backend: str = "auto",
        seed: int = 0,
    ):
        super().__init__(capacity)
        if eviction_rule not in EVICTION_RULES:
            raise ValueError(f"eviction_rule must be one of {EVICTION_RULES}")
        self._backend = resolve_backend(model_backend)
        self.model_backend = self._backend.name
        self.num_irts = num_irts
        self.auto_threshold = auto_threshold
        self.use_detection = use_detection
        self.eviction_rule = eviction_rule
        self._num_candidates = num_candidates
        self._rng = np.random.default_rng(seed)
        self._gbm_params = gbm_params or {
            "n_estimators": 16,
            "max_depth": 4,
            "learning_rate": 0.3,
            "subsample": 0.8,
            "seed": seed,
        }

        self.features = FeatureStore(max_irts=max(num_irts, 32))
        self.hro = HroBound(
            capacity, window_multiple, min_window_requests=min_window_requests
        )
        self.hro.on_window = self._window_closed
        self.detector = DriftDetector(epsilon=epsilon)
        self.estimator = ThresholdEstimator(
            initial_delta=initial_delta,
            beta=beta,
            sample_fraction=sample_fraction,
            objective=threshold_objective,
            seed=seed,
        )
        self._model: GradientBoostingRegressor | None = None

        # Cache-side learned state: L (admission probabilities of cached
        # contents) and the eviction-candidate set (Section 4.1).
        self._probabilities: dict[int, float] = {}
        self._eviction_candidates: IndexedSet = IndexedSet()
        self._cached_ids = IndexedSet()

        # Per-window buffers for training and threshold estimation.
        # Content ids (not Request objects) are enough for labelling, so
        # the columnar path never has to materialize requests.
        self._window_rows: list[np.ndarray] = []
        self._window_ids: list[int] = []
        self._window_samples: list[WindowSample] = []
        self._last_access_time = 0.0

        self._current_p = 1.0
        self.trainings = 0
        self.training_seconds = 0.0
        self.windows_processed = 0
        self._predict_histogram = None
        # The native replay_span kernel below inlines this class's hooks
        # and the base control flow; subclasses overriding either must
        # fall back to the Request-wrapping shim.
        self._restrict_scalar_kernel(LhrCache, DLhrCache, NLhrCache)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_observation(self, obs: Observation) -> None:
        """Propagate the handle into the window pipeline components so
        drift/threshold/ranking activity reports through one sink."""
        super().attach_observation(obs)
        self.detector.obs = obs
        self.estimator.obs = obs
        self.hro.obs = obs
        # Cache the per-request predict histogram: scoring runs on every
        # request, so skip the registry lookup on the hot path.
        self._predict_histogram = (
            obs.registry.histogram(
                "lhr_predict_seconds",
                help="per-request GBM admission-probability inference",
            )
            if obs.enabled
            else None
        )

    def attach_tracer(self, tracer) -> None:
        """Decision traces for LHR also track the HRO hazard ranking so
        each record carries the request's window hazard rank."""
        super().attach_tracer(tracer)
        self.hro.track_decisions = tracer is not None

    def decision_inputs(self, req: Request):
        return (
            self._current_p,
            self.delta,
            self.hro.hazard_rank(req.obj_id),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def delta(self) -> float:
        """The current admission threshold."""
        return self.estimator.delta

    @property
    def model_ready(self) -> bool:
        return self._model is not None

    def admission_probability(self, obj_id: int) -> float | None:
        """The stored probability of a cached content (the vector L)."""
        return self._probabilities.get(obj_id)

    # ------------------------------------------------------------------
    # Request path (the four cases of Section 4.1)
    # ------------------------------------------------------------------

    def _on_access(self, req: Request) -> None:
        self._access_scalar(req.obj_id, req.size, req.time)

    def _access_scalar(self, obj_id: int, size: int, time_: float) -> None:
        self._last_access_time = time_
        row = self.features.vector(obj_id, time_, self.num_irts)
        if self._model is not None:
            if self._predict_histogram is not None:
                start = time.perf_counter()
                p = min(max(self._backend.score_one(self._model, row), 0.0), 1.0)
                self._predict_histogram.observe(time.perf_counter() - start)
            else:
                p = min(max(self._backend.score_one(self._model, row), 0.0), 1.0)
        else:
            # Bootstrap (first window): behave as admit-all with p = 1.
            p = 1.0
        self._current_p = p
        self.features.observe_scalar(obj_id, size, time_)
        self._window_rows.append(row)
        self._window_ids.append(obj_id)
        self._window_samples.append(
            WindowSample(obj_id=obj_id, size=size, time=time_, probability=p)
        )
        self.hro.process_scalar(obj_id, size, time_)

    def _on_hit(self, req: Request) -> None:
        p = self._current_p
        self._probabilities[req.obj_id] = p
        if p < self.delta:
            # Case (ii): refresh L and mark as an eviction candidate.
            self._eviction_candidates.add(req.obj_id)
        else:
            # Case (i): refresh L only.
            self._eviction_candidates.discard(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        # Cases (iii)/(iv): admit iff p >= delta.
        return self._current_p >= self.delta

    def _on_admit(self, req: Request) -> None:
        self._probabilities[req.obj_id] = self._current_p
        self._cached_ids.add(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        self._probabilities.pop(obj_id, None)
        self._eviction_candidates.discard(obj_id)
        self._cached_ids.discard(obj_id)

    # ------------------------------------------------------------------
    # Eviction (Section 5.2.5)
    # ------------------------------------------------------------------

    def _eviction_value(self, obj_id: int, now: float) -> float:
        p = self._probabilities.get(obj_id, 0.0)
        if self.eviction_rule == "p-only":
            return p
        last = self.features.last_access(obj_id)
        irt1 = max(now - last, 1e-9) if last is not None else 1e9
        if self.eviction_rule == "p-recency":
            # Ablation: keep size out of eviction; the learned p already
            # internalizes HRO's size normalization.
            return p / irt1
        return p / (self._sizes[obj_id] * irt1)

    def _select_victim(self, incoming: Request) -> int:
        return self._select_victim_scalar(incoming.time)

    def _select_victim_scalar(self, now: float) -> int:
        if len(self._eviction_candidates):
            pool = self._eviction_candidates.sample(self._num_candidates, self._rng)
        else:
            pool = self._cached_ids.sample(self._num_candidates, self._rng)
        if self.eviction_rule != "lhr":
            return min(pool, key=lambda oid: self._eviction_value(oid, now))
        # Default rule, inlined: q = p / (s * IRT_1) with the same
        # first-minimum tie-break as min().  Eviction sampling dominates
        # LHR's steady-state cost, so the per-candidate lambda and method
        # dispatch of the generic path are worth shedding.
        probabilities = self._probabilities
        records = self.features._records
        sizes = self._sizes
        best = -1
        best_value = np.inf
        for oid in pool:
            record = records.get(oid)
            if record is None:
                irt1 = 1e9
            else:
                gap = now - record.last_time
                irt1 = gap if gap > 1e-9 else 1e-9
            value = probabilities.get(oid, 0.0) / (sizes[oid] * irt1)
            if value < best_value:
                best_value = value
                best = oid
        return best

    # ------------------------------------------------------------------
    # Columnar fast path (batched inference kernel)
    # ------------------------------------------------------------------

    def replay_span(self, obj_ids, sizes, times, begin: int, end: int) -> None:
        """Replay a span with block-scored admission probabilities.

        The span's feature rows are assembled in one
        ``FeatureStore.feature_matrix`` gather and scored in one model
        backend call; a sequential loop then applies the exact
        per-request control flow of ``request`` + ``_access_scalar``
        (observe, window buffers, HRO, hit/miss bookkeeping, eviction),
        reading ``delta`` after HRO processing just like the scalar
        path.  When HRO closes a window mid-span the model, threshold
        and feature store may all change, so the loop breaks and the
        span tail is re-gathered and re-scored under the new state —
        which is precisely what per-request scoring would have seen.
        Equivalence tests pin this kernel bit-identical to the object
        path; instrumented runs are routed back to the shim by
        ``_sync_scalar_dispatch``.
        """
        features = self.features
        num_irts = self.num_irts
        score_block = self._backend.score_block
        observe = features.observe_scalar
        hro_process = self.hro.process_scalar
        select_victim = self._select_victim_scalar
        estimator = self.estimator
        window_rows = self._window_rows
        window_ids = self._window_ids
        window_samples = self._window_samples
        sizes_map = self._sizes
        probabilities = self._probabilities
        candidates = self._eviction_candidates
        cached_ids = self._cached_ids
        capacity = self.capacity

        i = begin
        while i < end:
            block = features.feature_matrix(
                obj_ids, sizes, times, i, end, num_irts
            )
            model = self._model
            probs = (
                score_block(model, block).tolist()
                if model is not None
                else None
            )
            ids = obj_ids[i:end]
            ids = ids.tolist() if hasattr(ids, "tolist") else list(ids)
            szs = sizes[i:end]
            szs = szs.tolist() if hasattr(szs, "tolist") else list(szs)
            tms = times[i:end]
            tms = tms.tolist() if hasattr(tms, "tolist") else list(tms)
            used = self._used
            hits = self.hits
            hit_bytes = self.hit_bytes
            misses = self.misses
            miss_bytes = self.miss_bytes
            admissions = self.admissions
            evictions = self.evictions
            windows_before = self.windows_processed
            n = end - i
            k = 0
            while k < n:
                oid = ids[k]
                size = szs[k]
                now = tms[k]
                self._last_access_time = now
                row = block[k]
                if probs is None:
                    p = 1.0
                else:
                    p = min(max(probs[k], 0.0), 1.0)
                self._current_p = p
                observe(oid, size, now)
                window_rows.append(row)
                window_ids.append(oid)
                window_samples.append(
                    WindowSample(obj_id=oid, size=size, time=now, probability=p)
                )
                hro_process(oid, size, now)
                delta = estimator.delta
                if oid in sizes_map:
                    hits += 1
                    hit_bytes += size
                    probabilities[oid] = p
                    if p < delta:
                        candidates.add(oid)
                    else:
                        candidates.discard(oid)
                else:
                    misses += 1
                    miss_bytes += size
                    if size <= capacity and p >= delta:
                        while used + size > capacity:
                            victim = select_victim(now)
                            if victim not in sizes_map:
                                raise RuntimeError(
                                    f"{self.name}: victim {victim} is not cached"
                                )
                            used -= sizes_map.pop(victim)
                            evictions += 1
                            probabilities.pop(victim, None)
                            candidates.discard(victim)
                            cached_ids.discard(victim)
                        sizes_map[oid] = size
                        used += size
                        admissions += 1
                        probabilities[oid] = p
                        cached_ids.add(oid)
                k += 1
                if self.windows_processed != windows_before:
                    # Window closed: model/delta/features may have
                    # changed — re-score the span tail under new state.
                    break
            self._used = used
            self.hits = hits
            self.hit_bytes = hit_bytes
            self.misses = misses
            self.miss_bytes = miss_bytes
            self.admissions = admissions
            self.evictions = evictions
            i += k

    # ------------------------------------------------------------------
    # Window pipeline: detection -> estimation -> training
    # ------------------------------------------------------------------

    def _window_closed(self, window: HroWindow) -> None:
        # Span-wrapped dispatch: the window-close pipeline (drift check,
        # threshold estimation, GBM refit) is the retraining-cadence cost
        # the paper trades against hit ratio, so it gets a timeline span
        # whenever one is being recorded.
        spans = self.obs.spans
        if spans.enabled:
            with spans.span(
                "lhr.window_close", cat="lhr", window=self.windows_processed
            ):
                self._close_window(window)
        else:
            self._close_window(window)

    def _close_window(self, window: HroWindow) -> None:
        self.windows_processed += 1
        had_model = self._model is not None
        trainings_before = self.trainings
        should_train = (
            self.detector.observe_window(window.counts)
            if self.use_detection
            else True
        )
        if self._model is None:
            should_train = True
        if should_train:
            if self.auto_threshold and self._model is not None:
                self.estimator.update(self._window_samples, self.capacity)
            self._train(window)
        if self.obs.learner.enabled:
            # Finalize the learner-telemetry row for this window while the
            # per-window sample buffer is still alive.  Runs once per
            # window close, after the drift/threshold/refit fragments have
            # been recorded, so it never touches the per-request path.
            self._record_learner_window(had_model, trainings_before)
        # Keep feature history bounded to a few windows of idle time.
        if self._window_ids:
            now = self._last_access_time
            self.features.prune(now, horizon=max(window.duration * 4.0, 1e-6))
        self._window_rows.clear()
        self._window_ids.clear()
        self._window_samples.clear()

    def _record_learner_window(self, had_model: bool, trainings_before: int) -> None:
        samples = self._window_samples
        probabilities = np.array(
            [sample.probability for sample in samples], dtype=np.float64
        )
        calibration = CalibrationStats.from_arrays(
            probabilities,
            realized_reuse([sample.obj_id for sample in samples]),
        )
        score_hist, _ = np.histogram(
            probabilities, bins=CAL_BINS, range=(0.0, 1.0)
        )
        retrained = self.trainings > trainings_before
        if not retrained:
            cause = "none"
        elif not had_model:
            cause = "first_window"
        elif not self.use_detection:
            cause = "every_window"
        elif (
            self.detector.records
            and self.detector.records[-1].fit.num_contents == 0
        ):
            cause = "degenerate"
        else:
            cause = "drift"
        delta = self.delta
        self.obs.learner.record_window(
            window=self.windows_processed - 1,
            delta=delta,
            samples=len(samples),
            admit_rate=(
                float((probabilities >= delta).mean())
                if samples
                else float("nan")
            ),
            mean_p=float(probabilities.mean()) if samples else float("nan"),
            retrained=retrained,
            cause=cause,
            calibration=calibration,
            score_hist=score_hist.astype(np.float64),
        )

    def _train(self, window: HroWindow) -> None:
        if not self._window_rows:
            return
        labels = window_labels_for_ids(window, self._window_ids)
        rows = np.vstack(self._window_rows)
        start = time.perf_counter()
        with self.obs.spans.span(
            "lhr.gbm_refit", cat="lhr", rows=int(rows.shape[0])
        ):
            model = GradientBoostingRegressor(**self._gbm_params)
            self._model = model.fit(rows, labels)
        elapsed = time.perf_counter() - start
        self.training_seconds += elapsed
        self.trainings += 1
        if self.obs.learner.enabled:
            # Model fingerprint for this refit (learner-telemetry
            # fragment, folded into the row at window close).
            fingerprint = self._model.fingerprint(feature_dim(self.num_irts))
            importances = fingerprint["importances"]
            positive = importances[importances > 0]
            self.obs.learner.record_refit(
                train_rows=float(rows.shape[0]),
                trees=float(fingerprint["trees"]),
                max_tree_depth=float(fingerprint["max_tree_depth"]),
                tree_nodes=float(fingerprint["tree_nodes"]),
                train_seconds=elapsed,
                importance_top_feature=float(int(np.argmax(importances)))
                if importances.size
                else float("nan"),
                importance_top_share=float(importances.max())
                if importances.size
                else float("nan"),
                importance_entropy=float(-np.sum(positive * np.log(positive)))
                if positive.size
                else 0.0,
            )
        if self.obs.enabled:
            self.obs.registry.histogram(
                "lhr_train_seconds", help="wall-clock seconds per GBM fit"
            ).observe(elapsed)
            self.obs.registry.counter(
                "lhr_trainings_total", help="GBM (re)trainings performed"
            ).inc()
            self.obs.emit(
                "lhr.retrain",
                window=window.index,
                rows=int(rows.shape[0]),
                trees=self._model.num_trees,
                trainings=self.trainings,
                training_seconds=round(elapsed, 6),
            )

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------

    def metadata_bytes(self) -> int:
        total = self.features.metadata_bytes()
        total += 16 * len(self._probabilities)
        total += 8 * feature_dim(self.num_irts) * len(self._window_rows)
        total += 40 * len(self._window_samples)
        if self._model is not None:
            total += self._model.metadata_bytes()
        return super().metadata_bytes() + total


class DLhrCache(LhrCache):
    """D-LHR (Section 7.4): LHR with a fixed threshold ``delta = 0.5``."""

    name = "d-lhr"

    def __init__(self, capacity: int, **kwargs):
        kwargs["auto_threshold"] = False
        super().__init__(capacity, **kwargs)


class NLhrCache(LhrCache):
    """N-LHR (Section 7.4): D-LHR without the detection mechanism —
    fixed threshold and retraining on every sliding window."""

    name = "n-lhr"

    def __init__(self, capacity: int, **kwargs):
        kwargs["auto_threshold"] = False
        kwargs["use_detection"] = False
        super().__init__(capacity, **kwargs)
