"""Pluggable inference backends for LHR's admission model.

LHR scores every request with its gradient-boosted model; *how* those
scores are computed is an implementation detail with a large
performance range (a scalar tree walk per request vs a vectorized
level-order traversal over a whole block).  This module keeps the two
behind one small interface — a registry keyed by name, in the style of
plugin registries in large analysis frameworks — so the policy can pick
the fastest backend that preserves exactness, and tests can pin the
backends against each other.

Every backend must be *bit-exact* with the scalar reference:
``score_block(model, rows)[i]`` must equal ``score_one(model, rows[i])``
to float equality.  The equivalence suite enforces this, which is what
makes backend selection a pure performance knob.
"""

from __future__ import annotations

import numpy as np

#: name -> backend class.  Populated by :func:`register_backend`.
MODEL_BACKENDS: dict[str, type] = {}

#: The backend ``"auto"`` resolves to — the fastest registered backend
#: that is bit-exact with the scalar reference.
AUTO_BACKEND = "batched"


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def decorate(cls):
        cls.name = name
        MODEL_BACKENDS[name] = cls
        return cls

    return decorate


def backend_names() -> tuple[str, ...]:
    """Valid ``model_backend`` arguments (registered names + ``auto``)."""
    return tuple(sorted(MODEL_BACKENDS)) + ("auto",)


def resolve_backend(name: str):
    """Instantiate the backend registered under ``name``.

    ``"auto"`` picks :data:`AUTO_BACKEND`.  Raises ``ValueError`` for
    unknown names so a typo fails at construction, not mid-replay.
    """
    if name == "auto":
        name = AUTO_BACKEND
    try:
        cls = MODEL_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown model backend {name!r}; choose from {backend_names()}"
        ) from None
    return cls()


class ModelBackend:
    """Interface: score feature rows with a fitted GBM."""

    name = "base"

    def score_one(self, model, row) -> float:
        """Unclamped model output for a single feature row."""
        raise NotImplementedError

    def score_block(self, model, rows: np.ndarray) -> np.ndarray:
        """Unclamped model outputs for a 2-D block of feature rows.

        Must be bit-identical to calling :meth:`score_one` per row.
        """
        raise NotImplementedError


@register_backend("scalar")
class ScalarBackend(ModelBackend):
    """Reference backend: the pure-Python per-row tree walk.

    ``score_block`` is a Python loop over ``predict_one`` — slow, but
    the definition of correct.  Tests pin every other backend to it.
    """

    def score_one(self, model, row) -> float:
        return model.predict_one(row)

    def score_block(self, model, rows: np.ndarray) -> np.ndarray:
        predict_one = model.predict_one
        out = np.empty(rows.shape[0], dtype=np.float64)
        for i in range(rows.shape[0]):
            out[i] = predict_one(rows[i])
        return out


@register_backend("batched")
class BatchedBackend(ModelBackend):
    """Vectorized backend: NumPy level-order traversal per block.

    Single rows still go through the scalar walk (it beats NumPy
    dispatch overhead for one sample); blocks use ``predict_batch``,
    which shares the scalar path's float-op sequence exactly.
    """

    def score_one(self, model, row) -> float:
        return model.predict_one(row)

    def score_block(self, model, rows: np.ndarray) -> np.ndarray:
        return model.predict_batch(rows)
