"""Pluggable hazard-rate estimators for HRO.

Section 3.2 approximates each content's request process as Poisson —
constant hazard equal to the empirical rate — because the true c.d.f.
"is usually unknown and computationally expensive (e.g., kernel method)
to obtain".  The paper leaves richer estimators as future work; this
module provides them:

* :class:`PoissonHazard` — the paper's choice: ``zeta(t) = lambda``.
* :class:`WeibullHazard` — fits a Weibull to the window's observed
  inter-request times via the method of moments; its hazard
  ``(k/s)(t/s)^(k-1)`` rises or falls with age, capturing bursty
  (k < 1) and periodic (k > 1) contents the constant hazard misses.
* :class:`HyperexponentialHazard` — a two-phase mixture fit by matching
  the first two moments; its decreasing hazard models heavy-tailed IRT
  mixtures (hot-then-cold contents).

Each model consumes a content's recent IRT samples and answers
``hazard(age)`` — the conditional request intensity given ``age``
seconds since the last request.  ``fit_hazard_model`` dispatches by
name.  The models integrate with :class:`repro.core.hro.HroBound`
through the window statistics (see ``estimate_rates``), and are
exercised head-to-head in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

HAZARD_MODELS = ("poisson", "weibull", "hyperexponential")


class HazardModel(ABC):
    """Per-content hazard-rate function fitted from IRT samples."""

    @abstractmethod
    def hazard(self, age: float) -> float:
        """Conditional request intensity ``age`` seconds after the last
        request."""

    @property
    @abstractmethod
    def mean_irt(self) -> float:
        """Mean inter-request time implied by the fitted model."""


class PoissonHazard(HazardModel):
    """Constant hazard: the paper's window-Poisson approximation."""

    def __init__(self, rate: float):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._rate = rate

    @classmethod
    def fit(cls, irts: Sequence[float]) -> "PoissonHazard":
        samples = np.asarray(irts, dtype=np.float64)
        samples = samples[samples > 0]
        if samples.size == 0:
            return cls(0.0)
        return cls(1.0 / samples.mean())

    def hazard(self, age: float) -> float:
        return self._rate

    @property
    def mean_irt(self) -> float:
        return math.inf if self._rate == 0 else 1.0 / self._rate


class WeibullHazard(HazardModel):
    """Weibull hazard ``(k/s)(t/s)^(k-1)`` fitted by method of moments.

    The shape ``k`` is recovered from the coefficient of variation of the
    IRT sample (CV > 1 -> k < 1, bursty; CV < 1 -> k > 1, regular) using
    the standard lookup ``CV^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1`` solved
    by bisection; the scale then matches the sample mean.
    """

    def __init__(self, shape: float, scale: float):
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        self.shape = shape
        self.scale = scale

    @staticmethod
    def _cv_squared(shape: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        return g2 / (g1 * g1) - 1.0

    @classmethod
    def fit(cls, irts: Sequence[float]) -> "WeibullHazard":
        samples = np.asarray(irts, dtype=np.float64)
        samples = samples[samples > 0]
        if samples.size < 2:
            mean = float(samples.mean()) if samples.size else 1.0
            return cls(1.0, max(mean, 1e-9))  # exponential fallback
        mean = float(samples.mean())
        cv2 = float(samples.var() / (mean * mean))
        cv2 = min(max(cv2, 1e-3), 1e3)
        lo, hi = 0.05, 20.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            # CV^2 decreases in the shape parameter.
            if cls._cv_squared(mid) > cv2:
                lo = mid
            else:
                hi = mid
        shape = 0.5 * (lo + hi)
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape, scale)

    def hazard(self, age: float) -> float:
        age = max(age, 1e-12)
        return (self.shape / self.scale) * (age / self.scale) ** (self.shape - 1.0)

    @property
    def mean_irt(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


class HyperexponentialHazard(HazardModel):
    """Two-phase hyperexponential ``p*Exp(l1) + (1-p)*Exp(l2)``.

    Fitted by matching mean and CV^2 >= 1 with the balanced-means
    heuristic; degenerates to exponential when the sample CV^2 <= 1.
    The hazard decreases with age: long-idle contents are progressively
    attributed to the slow phase.
    """

    def __init__(self, p: float, rate1: float, rate2: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        if rate1 <= 0 or rate2 <= 0:
            raise ValueError("rates must be positive")
        self.p = p
        self.rate1 = rate1
        self.rate2 = rate2

    @classmethod
    def fit(cls, irts: Sequence[float]) -> "HyperexponentialHazard":
        samples = np.asarray(irts, dtype=np.float64)
        samples = samples[samples > 0]
        if samples.size == 0:
            return cls(1.0, 1e-9, 1e-9)
        mean = float(samples.mean())
        if samples.size < 2:
            return cls(1.0, 1.0 / mean, 1.0 / mean)
        cv2 = float(samples.var() / (mean * mean))
        if cv2 <= 1.0 + 1e-9:
            return cls(1.0, 1.0 / mean, 1.0 / mean)
        # Balanced-means fit (Whitt): p chosen from CV^2, rates from p.
        root = math.sqrt((cv2 - 1.0) / (cv2 + 1.0))
        p = 0.5 * (1.0 + root)
        rate1 = 2.0 * p / mean
        rate2 = 2.0 * (1.0 - p) / mean
        return cls(p, rate1, rate2)

    def _survival(self, age: float) -> tuple[float, float]:
        s1 = self.p * math.exp(-min(self.rate1 * age, 700.0))
        s2 = (1.0 - self.p) * math.exp(-min(self.rate2 * age, 700.0))
        return s1, s2

    def hazard(self, age: float) -> float:
        s1, s2 = self._survival(max(age, 0.0))
        total = s1 + s2
        if total <= 0.0:
            return min(self.rate1, self.rate2)
        return (self.rate1 * s1 + self.rate2 * s2) / total

    @property
    def mean_irt(self) -> float:
        return self.p / self.rate1 + (1.0 - self.p) / self.rate2


def fit_hazard_model(name: str, irts: Sequence[float]) -> HazardModel:
    """Fit the named hazard model to a content's IRT samples."""
    key = name.lower()
    if key == "poisson":
        return PoissonHazard.fit(irts)
    if key == "weibull":
        return WeibullHazard.fit(irts)
    if key == "hyperexponential":
        return HyperexponentialHazard.fit(irts)
    raise ValueError(f"unknown hazard model {name!r}; known: {HAZARD_MODELS}")
