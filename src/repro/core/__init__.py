"""The paper's core contribution: HRO (online upper bound on OPT) and
LHR (the learning-from-HRO cache), plus the components they are built
from — the gradient-boosting model, the feature store, the drift
detector and the threshold estimator.
"""

from repro.core.detection import DetectionRecord, DriftDetector
from repro.core.hazard_models import (
    HAZARD_MODELS,
    HyperexponentialHazard,
    PoissonHazard,
    WeibullHazard,
    fit_hazard_model,
)
from repro.core.serialization import (
    gbm_from_dict,
    gbm_to_dict,
    lhr_checkpoint,
    load_lhr_checkpoint,
    load_model,
    restore_lhr,
    save_lhr_checkpoint,
    save_model,
)
from repro.core.features import FeatureStore, feature_dim
from repro.core.gbm import GradientBoostingRegressor
from repro.core.hro import (
    HroBound,
    HroWindow,
    compute_top_set,
    hro_bound,
    window_labels,
    window_labels_for_ids,
)
from repro.core.lhr import DLhrCache, LhrCache, NLhrCache
from repro.core.threshold import ThresholdEstimator, WindowSample, shadow_hit_ratio

__all__ = [
    "DLhrCache",
    "DetectionRecord",
    "DriftDetector",
    "HAZARD_MODELS",
    "HyperexponentialHazard",
    "PoissonHazard",
    "WeibullHazard",
    "fit_hazard_model",
    "gbm_from_dict",
    "gbm_to_dict",
    "lhr_checkpoint",
    "load_lhr_checkpoint",
    "load_model",
    "restore_lhr",
    "save_lhr_checkpoint",
    "save_model",
    "FeatureStore",
    "GradientBoostingRegressor",
    "HroBound",
    "HroWindow",
    "LhrCache",
    "NLhrCache",
    "ThresholdEstimator",
    "WindowSample",
    "compute_top_set",
    "feature_dim",
    "hro_bound",
    "shadow_hit_ratio",
    "window_labels",
    "window_labels_for_ids",
]
