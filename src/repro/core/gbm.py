"""Gradient-boosted regression trees, from scratch on NumPy.

The paper trains an "XGBoosting Machine (XGBM)" with squared loss to
imitate HRO's admission decisions (Section 5.2.4); LRB uses the same
model class to predict next-request times.  XGBoost itself is a C++
dependency, so this module implements the same model family natively:
histogram-based greedy regression trees fit to residuals, with shrinkage,
subsampling and L2 leaf regularization.

The implementation favours clarity over raw speed but is fully
vectorized: split search is O(bins x features) per node on pre-binned
uint8 feature codes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def _sigmoid(raw: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0)))


@dataclass
class _Tree:
    """Flat array representation of one regression tree.

    ``feature[i] < 0`` marks node ``i`` as a leaf with prediction
    ``value[i]``; internal nodes route ``x[feature] <= threshold`` left.
    """

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    threshold: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    left: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    right: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    value: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))

    def predict(self, features: np.ndarray) -> np.ndarray:
        node = np.zeros(features.shape[0], dtype=np.int32)
        active = self.feature[node] >= 0
        while active.any():
            idx = np.flatnonzero(active)
            nodes = node[idx]
            go_left = (
                features[idx, self.feature[nodes]] <= self.threshold[nodes]
            )
            node[idx] = np.where(go_left, self.left[nodes], self.right[nodes])
            active = self.feature[node] >= 0
        return self.value[node]

    def as_lists(self) -> tuple[list, list, list, list, list]:
        """Plain-list view of the node arrays, for the scalar fast path."""
        return (
            self.feature.tolist(),
            self.threshold.tolist(),
            self.left.tolist(),
            self.right.tolist(),
            self.value.tolist(),
        )

    @property
    def num_nodes(self) -> int:
        return self.feature.size

    def depth(self) -> int:
        """Maximum root-to-leaf edge count (0 for a stump)."""
        if self.feature.size == 0:
            return 0
        best = 0
        stack = [(0, 0)]
        while stack:
            node, d = stack.pop()
            if self.feature[node] < 0:
                best = max(best, d)
                continue
            stack.append((int(self.left[node]), d + 1))
            stack.append((int(self.right[node]), d + 1))
        return best


class GradientBoostingRegressor:
    """Squared-loss gradient boosting with histogram split search.

    Parameters mirror the XGBoost knobs the paper's configuration uses.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Maximum tree depth.
    min_samples_leaf:
        Minimum samples on each side of a split.
    n_bins:
        Histogram resolution for split search (max 256).
    l2_regularization:
        L2 penalty on leaf values (XGBoost's ``lambda``).
    subsample:
        Row subsampling fraction per tree; 1.0 disables.
    seed:
        RNG seed for subsampling.
    loss:
        ``"squared"`` (the paper's choice, Section 5.2.4) or
        ``"logistic"`` — log-loss on 0/1 labels; ``predict`` then returns
        probabilities through a sigmoid.
    early_stopping_rounds:
        If > 0 and ``fit`` is given validation data, stop adding trees
        after this many rounds without validation improvement.
    """

    LOSSES = ("squared", "logistic")

    def __init__(
        self,
        n_estimators: int = 16,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        min_samples_leaf: int = 8,
        n_bins: int = 64,
        l2_regularization: float = 1.0,
        subsample: float = 1.0,
        seed: int = 0,
        loss: str = "squared",
        early_stopping_rounds: int = 0,
    ):
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must lie in [2, 256]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        if loss not in self.LOSSES:
            raise ValueError(f"loss must be one of {self.LOSSES}")
        if early_stopping_rounds < 0:
            raise ValueError("early_stopping_rounds must be non-negative")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self.l2_regularization = l2_regularization
        self.subsample = subsample
        self.loss = loss
        self.early_stopping_rounds = early_stopping_rounds
        self._rng = np.random.default_rng(seed)
        self._trees: list[_Tree] = []
        self._scalar_trees: list | None = None
        self._metadata_bytes: int | None = None
        self._base_score = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        """Fit the ensemble to ``(features, targets)``; returns self.

        ``validation`` is an optional ``(features, targets)`` pair used
        for early stopping when ``early_stopping_rounds > 0``.
        """
        features = np.ascontiguousarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (samples x features)")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.loss == "logistic" and not np.isin(targets, (0.0, 1.0)).all():
            raise ValueError("logistic loss needs 0/1 targets")

        codes, bin_edges = self._bin_features(features)
        if self.loss == "logistic":
            mean = min(max(float(targets.mean()), 1e-6), 1.0 - 1e-6)
            self._base_score = float(np.log(mean / (1.0 - mean)))
        else:
            self._base_score = float(targets.mean())
        raw = np.full(targets.shape[0], self._base_score)
        self._trees = []
        num_samples = features.shape[0]

        use_validation = validation is not None and self.early_stopping_rounds > 0
        if use_validation:
            val_features = np.ascontiguousarray(validation[0], dtype=np.float64)
            val_targets = np.asarray(validation[1], dtype=np.float64)
            val_raw = np.full(val_targets.shape[0], self._base_score)
            best_loss = np.inf
            best_round = 0

        for round_index in range(self.n_estimators):
            residuals = self._negative_gradient(targets, raw)
            if self.subsample < 1.0:
                mask = self._rng.random(num_samples) < self.subsample
                if mask.sum() < max(2 * self.min_samples_leaf, 4):
                    mask = np.ones(num_samples, dtype=bool)
            else:
                mask = np.ones(num_samples, dtype=bool)
            tree = self._fit_tree(codes[mask], residuals[mask], bin_edges)
            self._trees.append(tree)
            raw += self.learning_rate * tree.predict(features)
            if use_validation:
                val_raw += self.learning_rate * tree.predict(val_features)
                loss = self._loss_value(val_targets, val_raw)
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    best_round = round_index
                elif round_index - best_round >= self.early_stopping_rounds:
                    del self._trees[best_round + 1 :]
                    break
        # Refitting replaces the ensemble: drop every derived cache so
        # stale scalar trees / footprint numbers cannot outlive the trees
        # they were built from.
        self._scalar_trees = None
        self._metadata_bytes = None
        self._fitted = True
        return self

    def _negative_gradient(self, targets: np.ndarray, raw: np.ndarray) -> np.ndarray:
        if self.loss == "logistic":
            return targets - _sigmoid(raw)
        return targets - raw

    def _loss_value(self, targets: np.ndarray, raw: np.ndarray) -> float:
        if self.loss == "logistic":
            probabilities = np.clip(_sigmoid(raw), 1e-12, 1.0 - 1e-12)
            return float(
                -(targets * np.log(probabilities)
                  + (1.0 - targets) * np.log(1.0 - probabilities)).mean()
            )
        return float(((targets - raw) ** 2).mean())

    def _bin_features(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Quantile-bin each column into uint8 codes; return codes + edges."""
        num_samples, num_features = features.shape
        codes = np.empty((num_samples, num_features), dtype=np.uint8)
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        for j in range(num_features):
            column = features[:, j]
            cuts = np.unique(np.quantile(column, quantiles))
            codes[:, j] = np.searchsorted(cuts, column, side="right")
            edges.append(cuts)
        return codes, edges

    def _fit_tree(
        self, codes: np.ndarray, residuals: np.ndarray, bin_edges: list[np.ndarray]
    ) -> _Tree:
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []

        def new_node() -> int:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(0.0)
            return len(feature) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [
            (root, np.arange(codes.shape[0]), 0)
        ]
        lam = self.l2_regularization
        while stack:
            node, idx, depth = stack.pop()
            res = residuals[idx]
            leaf_value = res.sum() / (res.size + lam)
            value[node] = leaf_value
            if depth >= self.max_depth or idx.size < 2 * self.min_samples_leaf:
                continue
            best = self._best_split(codes[idx], res)
            if best is None:
                continue
            feat, split_bin, gain = best
            if gain <= 1e-12:
                continue
            go_left = codes[idx, feat] <= split_bin
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                continue
            cuts = bin_edges[feat]
            feature[node] = feat
            # Threshold is the raw-space upper edge of the split bin so
            # predict() works on unbinned inputs.
            threshold[node] = (
                float(cuts[split_bin]) if split_bin < cuts.size else np.inf
            )
            left[node] = new_node()
            right[node] = new_node()
            stack.append((left[node], left_idx, depth + 1))
            stack.append((right[node], right_idx, depth + 1))

        return _Tree(
            feature=np.asarray(feature, np.int32),
            threshold=np.asarray(threshold, np.float64),
            left=np.asarray(left, np.int32),
            right=np.asarray(right, np.int32),
            value=np.asarray(value, np.float64),
        )

    def _best_split(
        self, codes: np.ndarray, residuals: np.ndarray
    ) -> tuple[int, int, float] | None:
        """Return ``(feature, bin, gain)`` of the best histogram split.

        All per-feature histograms come out of two ``bincount`` calls over
        the flattened code matrix (each feature's bins offset into its own
        stripe) rather than 2F calls — the split search is the training
        hot spot under online refits.  Within a bin, samples accumulate in
        the same ascending order either way, and ``argmax`` keeps the
        first maximum exactly like the strict ``>`` of a feature-by-
        feature scan, so the chosen split is bit-identical to the
        per-column form.
        """
        num_samples, num_features = codes.shape
        n_bins = self.n_bins
        lam = self.l2_regularization
        total_sum = residuals.sum()
        total_count = residuals.size
        parent_score = total_sum * total_sum / (total_count + lam)
        flat = codes + np.arange(num_features, dtype=np.intp) * n_bins
        flat = flat.ravel()
        length = num_features * n_bins
        counts = np.bincount(flat, minlength=length).astype(np.float64)
        sums = np.bincount(
            flat, weights=np.repeat(residuals, num_features), minlength=length
        )
        left_counts = counts.reshape(num_features, n_bins).cumsum(axis=1)[:, :-1]
        left_sums = sums.reshape(num_features, n_bins).cumsum(axis=1)[:, :-1]
        right_counts = total_count - left_counts
        right_sums = total_sum - left_sums
        valid = (left_counts >= self.min_samples_leaf) & (
            right_counts >= self.min_samples_leaf
        )
        if not valid.any():
            return None
        gains = (
            left_sums**2 / (left_counts + lam)
            + right_sums**2 / (right_counts + lam)
            - parent_score
        )
        gains[~valid] = -np.inf
        flat_best = int(np.argmax(gains))
        feat, split_bin = divmod(flat_best, n_bins - 1)
        gain = float(gains[feat, split_bin])
        if gain <= 0.0:
            return None
        return feat, split_bin, gain

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets (probabilities under logistic loss)."""
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        raw = np.full(features.shape[0], self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(features)
        if self.loss == "logistic":
            return _sigmoid(raw)
        return raw

    def predict_one(self, feature_row) -> float:
        """Predict a single sample in pure Python.

        Online policies score every request one at a time; the vectorized
        path costs ~30us of NumPy overhead per tree, so this scalar walk
        over plain lists is ~20x faster for single rows.  ``feature_row``
        may be any indexable of floats.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        if self._scalar_trees is None:
            self._scalar_trees = [tree.as_lists() for tree in self._trees]
        row = feature_row.tolist() if hasattr(feature_row, "tolist") else feature_row
        total = self._base_score
        rate = self.learning_rate
        for feature, threshold, left, right, value in self._scalar_trees:
            node = 0
            feat = feature[0]
            while feat >= 0:
                node = left[node] if row[feat] <= threshold[node] else right[node]
                feat = feature[node]
            total += rate * value[node]
        if self.loss == "logistic":
            return 1.0 / (1.0 + math.exp(-min(max(total, -60.0), 60.0)))
        return total

    def feature_importances(self, num_features: int | None = None) -> np.ndarray:
        """Split-count importances, normalized to sum to 1.

        ``num_features`` sizes the output when it cannot be inferred from
        the trees (e.g. a stump-only ensemble).
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        max_feature = -1
        for tree in self._trees:
            internal = tree.feature[tree.feature >= 0]
            if internal.size:
                max_feature = max(max_feature, int(internal.max()))
        size = num_features if num_features is not None else max_feature + 1
        counts = np.zeros(max(size, max_feature + 1), dtype=np.float64)
        for tree in self._trees:
            internal = tree.feature[tree.feature >= 0]
            if internal.size:
                counts += np.bincount(internal, minlength=counts.size)
        total = counts.sum()
        return counts / total if total > 0 else counts

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    def fingerprint(self, num_features: int | None = None) -> dict:
        """Structural fingerprint of the fitted ensemble.

        Tree count, realized maximum depth, total node count and the
        split-count feature importances — the per-refit model identity
        the learner observatory records so consecutive refits can be
        compared without holding the models themselves.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        return {
            "trees": self.num_trees,
            "max_tree_depth": max(
                (tree.depth() for tree in self._trees), default=0
            ),
            "tree_nodes": sum(tree.num_nodes for tree in self._trees),
            "importances": self.feature_importances(num_features),
        }

    def metadata_bytes(self) -> int:
        """Model size in bytes (for the memory-overhead experiments).

        Trees are immutable between fits, so the walk runs once per
        (re)fit and the result is cached — the engine's metadata probes
        query this on a fixed cadence during replay.
        """
        if self._metadata_bytes is None:
            total = 0
            for tree in self._trees:
                total += (
                    tree.feature.nbytes
                    + tree.threshold.nbytes
                    + tree.left.nbytes
                    + tree.right.nbytes
                    + tree.value.nbytes
                )
            self._metadata_bytes = total
        return self._metadata_bytes
