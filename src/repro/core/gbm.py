"""Gradient-boosted regression trees, from scratch on NumPy.

The paper trains an "XGBoosting Machine (XGBM)" with squared loss to
imitate HRO's admission decisions (Section 5.2.4); LRB uses the same
model class to predict next-request times.  XGBoost itself is a C++
dependency, so this module implements the same model family natively:
histogram-based greedy regression trees fit to residuals, with shrinkage,
subsampling and L2 leaf regularization.

The implementation favours clarity over raw speed but is fully
vectorized: split search is O(bins x features) per node on pre-binned
uint8 feature codes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def _sigmoid(raw: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(raw, -60.0, 60.0)))


@dataclass
class _Tree:
    """Flat array representation of one regression tree.

    ``feature[i] < 0`` marks node ``i`` as a leaf with prediction
    ``value[i]``; internal nodes route ``x[feature] <= threshold`` left.
    """

    feature: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    threshold: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))
    left: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    right: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))
    value: np.ndarray = field(default_factory=lambda: np.empty(0, np.float64))

    def predict(self, features: np.ndarray) -> np.ndarray:
        node = np.zeros(features.shape[0], dtype=np.int32)
        active = self.feature[node] >= 0
        while active.any():
            idx = np.flatnonzero(active)
            nodes = node[idx]
            go_left = (
                features[idx, self.feature[nodes]] <= self.threshold[nodes]
            )
            node[idx] = np.where(go_left, self.left[nodes], self.right[nodes])
            active = self.feature[node] >= 0
        return self.value[node]

    def as_lists(self) -> tuple[list, list, list, list, list]:
        """Plain-list view of the node arrays, for the scalar fast path."""
        return (
            self.feature.tolist(),
            self.threshold.tolist(),
            self.left.tolist(),
            self.right.tolist(),
            self.value.tolist(),
        )

    @property
    def num_nodes(self) -> int:
        return self.feature.size

    def depth(self) -> int:
        """Maximum root-to-leaf edge count (0 for a stump)."""
        if self.feature.size == 0:
            return 0
        best = 0
        stack = [(0, 0)]
        while stack:
            node, d = stack.pop()
            if self.feature[node] < 0:
                best = max(best, d)
                continue
            stack.append((int(self.left[node]), d + 1))
            stack.append((int(self.right[node]), d + 1))
        return best


class GradientBoostingRegressor:
    """Squared-loss gradient boosting with histogram split search.

    Parameters mirror the XGBoost knobs the paper's configuration uses.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Maximum tree depth.
    min_samples_leaf:
        Minimum samples on each side of a split.
    n_bins:
        Histogram resolution for split search (max 256).
    l2_regularization:
        L2 penalty on leaf values (XGBoost's ``lambda``).
    subsample:
        Row subsampling fraction per tree; 1.0 disables.
    seed:
        RNG seed for subsampling.
    loss:
        ``"squared"`` (the paper's choice, Section 5.2.4) or
        ``"logistic"`` — log-loss on 0/1 labels; ``predict`` then returns
        probabilities through a sigmoid.
    early_stopping_rounds:
        If > 0 and ``fit`` is given validation data, stop adding trees
        after this many rounds without validation improvement.
    """

    LOSSES = ("squared", "logistic")

    def __init__(
        self,
        n_estimators: int = 16,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        min_samples_leaf: int = 8,
        n_bins: int = 64,
        l2_regularization: float = 1.0,
        subsample: float = 1.0,
        seed: int = 0,
        loss: str = "squared",
        early_stopping_rounds: int = 0,
    ):
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must lie in [2, 256]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        if loss not in self.LOSSES:
            raise ValueError(f"loss must be one of {self.LOSSES}")
        if early_stopping_rounds < 0:
            raise ValueError("early_stopping_rounds must be non-negative")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self.l2_regularization = l2_regularization
        self.subsample = subsample
        self.loss = loss
        self.early_stopping_rounds = early_stopping_rounds
        self._rng = np.random.default_rng(seed)
        self._trees: list[_Tree] = []
        self._scalar_trees: list | None = None
        self._flat_trees: tuple | None = None
        self._metadata_bytes: int | None = None
        self._base_score = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        """Fit the ensemble to ``(features, targets)``; returns self.

        ``validation`` is an optional ``(features, targets)`` pair used
        for early stopping when ``early_stopping_rounds > 0``.
        """
        features = np.ascontiguousarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (samples x features)")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.loss == "logistic" and not np.isin(targets, (0.0, 1.0)).all():
            raise ValueError("logistic loss needs 0/1 targets")

        codes, bin_edges = self._bin_features(features)
        if self.loss == "logistic":
            mean = min(max(float(targets.mean()), 1e-6), 1.0 - 1e-6)
            self._base_score = float(np.log(mean / (1.0 - mean)))
        else:
            self._base_score = float(targets.mean())
        raw = np.full(targets.shape[0], self._base_score)
        self._trees = []
        num_samples = features.shape[0]

        use_validation = validation is not None and self.early_stopping_rounds > 0
        if use_validation:
            val_features = np.ascontiguousarray(validation[0], dtype=np.float64)
            val_targets = np.asarray(validation[1], dtype=np.float64)
            val_raw = np.full(val_targets.shape[0], self._base_score)
            best_loss = np.inf
            best_round = 0

        for round_index in range(self.n_estimators):
            residuals = self._negative_gradient(targets, raw)
            if self.subsample < 1.0:
                mask = self._rng.random(num_samples) < self.subsample
                if mask.sum() < max(2 * self.min_samples_leaf, 4):
                    mask = np.ones(num_samples, dtype=bool)
            else:
                mask = np.ones(num_samples, dtype=bool)
            tree = self._fit_tree(codes[mask], residuals[mask], bin_edges)
            self._trees.append(tree)
            raw += self.learning_rate * tree.predict(features)
            if use_validation:
                val_raw += self.learning_rate * tree.predict(val_features)
                loss = self._loss_value(val_targets, val_raw)
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    best_round = round_index
                elif round_index - best_round >= self.early_stopping_rounds:
                    del self._trees[best_round + 1 :]
                    break
        # Refitting replaces the ensemble: drop every derived cache so
        # stale scalar/flattened trees / footprint numbers cannot outlive
        # the trees they were built from.
        self._scalar_trees = None
        self._flat_trees = None
        self._metadata_bytes = None
        self._fitted = True
        return self

    def _negative_gradient(self, targets: np.ndarray, raw: np.ndarray) -> np.ndarray:
        if self.loss == "logistic":
            return targets - _sigmoid(raw)
        return targets - raw

    def _loss_value(self, targets: np.ndarray, raw: np.ndarray) -> float:
        if self.loss == "logistic":
            probabilities = np.clip(_sigmoid(raw), 1e-12, 1.0 - 1e-12)
            return float(
                -(targets * np.log(probabilities)
                  + (1.0 - targets) * np.log(1.0 - probabilities)).mean()
            )
        return float(((targets - raw) ** 2).mean())

    def _bin_features(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Quantile-bin each column into uint8 codes; return codes + edges."""
        num_samples, num_features = features.shape
        codes = np.empty((num_samples, num_features), dtype=np.uint8)
        edges: list[np.ndarray] = []
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        # One axis-0 quantile call covers every column; the per-column
        # interpolation arithmetic is unchanged, only the Python-level
        # loop over columns goes away.
        all_cuts = np.quantile(features, quantiles, axis=0)
        for j in range(num_features):
            cuts = np.unique(all_cuts[:, j])
            codes[:, j] = np.searchsorted(cuts, features[:, j], side="right")
            edges.append(cuts)
        return codes, edges

    def _fit_tree(
        self, codes: np.ndarray, residuals: np.ndarray, bin_edges: list[np.ndarray]
    ) -> _Tree:
        """Grow one regression tree, level by level (histogram splits).

        Every node at one depth shares a single pair of ``bincount``
        calls over a combined ``(node, feature, bin)`` key — split
        search is the training hot spot under online refits, and
        batching it per level sheds the per-node NumPy dispatch that a
        node-at-a-time scan pays.  The result is bit-identical to that
        scan: within each histogram cell, samples accumulate in the
        same ascending row order; each node's ``argmax`` runs over its
        own ``(feature, bin)`` slice with the same first-maximum
        tie-break; leaf values and gains use the same float-op
        sequence.  Only the node *numbering* differs (breadth-first
        here), which nothing observes — predictions, node counts,
        depths and importances are unchanged.
        """
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []

        def new_node() -> int:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(0.0)
            return len(feature) - 1

        n_bins = self.n_bins
        lam = self.l2_regularization
        min_leaf = self.min_samples_leaf
        num_features = codes.shape[1]
        stripe = num_features * n_bins
        feat_offsets = np.arange(num_features, dtype=np.intp) * n_bins
        root = new_node()
        level: list[tuple[int, np.ndarray]] = [
            (root, np.arange(codes.shape[0]))
        ]
        depth = 0
        while level:
            # Leaf values first: every node gets one whether it splits
            # or not; splittable nodes carry their residuals forward.
            splittable: list[tuple[int, np.ndarray, np.ndarray, float]] = []
            for node, idx in level:
                res = residuals[idx]
                total = res.sum()
                value[node] = total / (res.size + lam)
                if depth >= self.max_depth or idx.size < 2 * min_leaf:
                    continue
                splittable.append((node, idx, res, total))
            if not splittable:
                break
            num_nodes = len(splittable)
            if num_nodes == 1:
                sub = codes[splittable[0][1]]
                flat = (sub + feat_offsets).ravel()
                res_all = splittable[0][2]
            else:
                lengths = [entry[1].size for entry in splittable]
                all_idx = np.concatenate([entry[1] for entry in splittable])
                slot = np.repeat(
                    np.arange(num_nodes, dtype=np.intp) * stripe, lengths
                )
                sub = codes[all_idx]
                flat = (sub + feat_offsets + slot[:, None]).ravel()
                res_all = residuals[all_idx]
            length = stripe * num_nodes
            counts = np.bincount(flat, minlength=length).astype(np.float64)
            sums = np.bincount(
                flat, weights=np.repeat(res_all, num_features), minlength=length
            )
            left_counts = counts.reshape(num_nodes, num_features, n_bins).cumsum(
                axis=2
            )[:, :, :-1]
            left_sums = sums.reshape(num_nodes, num_features, n_bins).cumsum(
                axis=2
            )[:, :, :-1]
            next_level: list[tuple[int, np.ndarray]] = []
            for s, (node, idx, res, total_sum) in enumerate(splittable):
                total_count = res.size
                parent_score = total_sum * total_sum / (total_count + lam)
                node_left_counts = left_counts[s]
                node_left_sums = left_sums[s]
                right_counts = total_count - node_left_counts
                right_sums = total_sum - node_left_sums
                valid = (node_left_counts >= min_leaf) & (
                    right_counts >= min_leaf
                )
                if not valid.any():
                    continue
                gains = (
                    node_left_sums**2 / (node_left_counts + lam)
                    + right_sums**2 / (right_counts + lam)
                    - parent_score
                )
                gains[~valid] = -np.inf
                flat_best = int(np.argmax(gains))
                feat, split_bin = divmod(flat_best, n_bins - 1)
                gain = float(gains[feat, split_bin])
                if gain <= 1e-12:
                    continue
                go_left = codes[idx, feat] <= split_bin
                left_idx = idx[go_left]
                right_idx = idx[~go_left]
                if left_idx.size < min_leaf or right_idx.size < min_leaf:
                    continue
                cuts = bin_edges[feat]
                feature[node] = feat
                # Threshold is the raw-space upper edge of the split bin
                # so predict() works on unbinned inputs.
                threshold[node] = (
                    float(cuts[split_bin]) if split_bin < cuts.size else np.inf
                )
                left[node] = new_node()
                right[node] = new_node()
                next_level.append((left[node], left_idx))
                next_level.append((right[node], right_idx))
            level = next_level
            depth += 1

        return _Tree(
            feature=np.asarray(feature, np.int32),
            threshold=np.asarray(threshold, np.float64),
            left=np.asarray(left, np.int32),
            right=np.asarray(right, np.int32),
            value=np.asarray(value, np.float64),
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _flatten(self) -> tuple:
        """Concatenate all trees into one set of node arrays (cached).

        Every tree's nodes land in a shared index space (tree ``t`` is
        offset by the node count of trees ``0..t-1``).  Leaves are made
        *self-looping* — their child pointers point back at themselves
        and their feature index is forced to ``0`` (a safe gather
        column) — so a fixed ``depth_max``-step level-order walk needs
        no active mask: rows that reach a leaf early simply spin in
        place until the loop ends.
        """
        if self._flat_trees is None:
            num_trees = len(self._trees)
            offsets = np.zeros(num_trees, dtype=np.intp)
            total = 0
            for t, tree in enumerate(self._trees):
                offsets[t] = total
                total += tree.num_nodes
            feature_ = np.empty(total, dtype=np.intp)
            threshold_ = np.empty(total, dtype=np.float64)
            left_ = np.empty(total, dtype=np.intp)
            right_ = np.empty(total, dtype=np.intp)
            value_ = np.empty(total, dtype=np.float64)
            depth_max = 0
            for t, tree in enumerate(self._trees):
                off = int(offsets[t])
                end = off + tree.num_nodes
                leaf = tree.feature < 0
                own = np.arange(off, end, dtype=np.intp)
                feature_[off:end] = np.where(leaf, 0, tree.feature)
                threshold_[off:end] = tree.threshold
                left_[off:end] = np.where(leaf, own, tree.left + off)
                right_[off:end] = np.where(leaf, own, tree.right + off)
                value_[off:end] = tree.value
                depth_max = max(depth_max, tree.depth())
            self._flat_trees = (
                feature_, threshold_, left_, right_, value_, offsets, depth_max
            )
        return self._flat_trees

    def _raw_scores(self, features: np.ndarray) -> np.ndarray:
        """Raw (pre-link) ensemble scores for a 2-D feature block.

        Accumulates tree contributions one tree at a time in boosting
        order, so every element sees the exact float-op sequence of both
        the legacy per-tree ``predict`` loop and the scalar
        ``predict_one`` walk (``raw += rate * leaf``); a fused or pairwise
        summation would round differently.
        """
        num_rows = features.shape[0]
        raw = np.full(num_rows, self._base_score)
        if not self._trees or num_rows == 0:
            return raw
        feature_, threshold_, left_, right_, value_, offsets, depth_max = (
            self._flatten()
        )
        node = np.empty((offsets.size, num_rows), dtype=np.intp)
        node[:] = offsets[:, None]
        cols = np.arange(num_rows)
        for _ in range(depth_max):
            feat = feature_[node]
            go_left = features[cols, feat] <= threshold_[node]
            node = np.where(go_left, left_[node], right_[node])
        leaves = value_[node]
        rate = self.learning_rate
        for t in range(offsets.size):
            raw += rate * leaves[t]
        return raw

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets (probabilities under logistic loss)."""
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        raw = self._raw_scores(features)
        if self.loss == "logistic":
            return _sigmoid(raw)
        return raw

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorized prediction, bit-identical to ``predict_one`` rows.

        ``predict`` and ``predict_batch`` share the flattened raw-score
        engine; they differ only in the logistic link.  ``predict``
        keeps the historical vectorized ``np.exp`` sigmoid, while this
        method applies ``predict_one``'s scalar ``math.exp`` formula per
        element — the two disagree in the last ulp on ~2% of inputs, and
        the batched cache path must reproduce the scalar path exactly.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        raw = self._raw_scores(features)
        if self.loss == "logistic":
            out = np.empty(raw.shape[0], dtype=np.float64)
            for i, total in enumerate(raw.tolist()):
                out[i] = 1.0 / (1.0 + math.exp(-min(max(total, -60.0), 60.0)))
            return out
        return raw

    def predict_one(self, feature_row) -> float:
        """Predict a single sample in pure Python.

        Online policies score every request one at a time; the vectorized
        path costs ~30us of NumPy overhead per tree, so this scalar walk
        over plain lists is ~20x faster for single rows.  ``feature_row``
        may be any indexable of floats.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        if self._scalar_trees is None:
            self._scalar_trees = [tree.as_lists() for tree in self._trees]
        row = feature_row.tolist() if hasattr(feature_row, "tolist") else feature_row
        total = self._base_score
        rate = self.learning_rate
        for feature, threshold, left, right, value in self._scalar_trees:
            node = 0
            feat = feature[0]
            while feat >= 0:
                node = left[node] if row[feat] <= threshold[node] else right[node]
                feat = feature[node]
            total += rate * value[node]
        if self.loss == "logistic":
            return 1.0 / (1.0 + math.exp(-min(max(total, -60.0), 60.0)))
        return total

    def feature_importances(self, num_features: int | None = None) -> np.ndarray:
        """Split-count importances, normalized to sum to 1.

        ``num_features`` sizes the output when it cannot be inferred from
        the trees (e.g. a stump-only ensemble).
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        max_feature = -1
        for tree in self._trees:
            internal = tree.feature[tree.feature >= 0]
            if internal.size:
                max_feature = max(max_feature, int(internal.max()))
        size = num_features if num_features is not None else max_feature + 1
        counts = np.zeros(max(size, max_feature + 1), dtype=np.float64)
        for tree in self._trees:
            internal = tree.feature[tree.feature >= 0]
            if internal.size:
                counts += np.bincount(internal, minlength=counts.size)
        total = counts.sum()
        return counts / total if total > 0 else counts

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    def fingerprint(self, num_features: int | None = None) -> dict:
        """Structural fingerprint of the fitted ensemble.

        Tree count, realized maximum depth, total node count and the
        split-count feature importances — the per-refit model identity
        the learner observatory records so consecutive refits can be
        compared without holding the models themselves.
        """
        if not self._fitted:
            raise RuntimeError("model has not been fitted")
        return {
            "trees": self.num_trees,
            "max_tree_depth": max(
                (tree.depth() for tree in self._trees), default=0
            ),
            "tree_nodes": sum(tree.num_nodes for tree in self._trees),
            "importances": self.feature_importances(num_features),
        }

    def metadata_bytes(self) -> int:
        """Model size in bytes (for the memory-overhead experiments).

        Trees are immutable between fits, so the walk runs once per
        (re)fit and the result is cached — the engine's metadata probes
        query this on a fixed cadence during replay.
        """
        if self._metadata_bytes is None:
            total = 0
            for tree in self._trees:
                total += (
                    tree.feature.nbytes
                    + tree.threshold.nbytes
                    + tree.left.nbytes
                    + tree.right.nbytes
                    + tree.value.nbytes
                )
            self._metadata_bytes = total
        return self._metadata_bytes
