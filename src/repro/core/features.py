"""Per-content feature extraction (Section 5.2.1).

LHR's feature vector for content ``i`` at time ``t`` is:

* ``IRT_1`` — time since the content's last request (dynamic; recomputed
  at prediction time),
* ``IRT_2 .. IRT_k`` — the content's most recent inter-request gaps,
* static features — log size, lifetime request count, age since first
  request.

The paper evaluates 10-30 IRTs (Figure 6) and settles on 20; the store
keeps up to ``max_irts`` gaps per content and can emit vectors with any
smaller ``num_irts``, which is what the Figure 6 ablation sweeps.

Missing IRTs (young contents) are filled with ``missing_value`` — a large
sentinel that the tree model can split away from real gaps.

Gaps live in preallocated per-content ring buffers (most recent at the
ring head, the appendleft order the model was designed around) so
``vector`` fills the IRT block with at most two array-slice copies
instead of a Python loop over a deque.
"""

from __future__ import annotations

import numpy as np

from repro.traces.request import Request

#: Default sentinel for unavailable inter-request times.
DEFAULT_MISSING = 1.0e9

#: Number of static (non-IRT) features appended to the vector.
NUM_STATIC_FEATURES = 3


def feature_dim(num_irts: int) -> int:
    """Length of a feature vector with ``num_irts`` inter-request times."""
    return num_irts + NUM_STATIC_FEATURES


class _ContentRecord:
    __slots__ = ("gaps", "head", "length", "last_time", "first_time", "count", "size")

    def __init__(self, max_gaps: int, time: float, size: int):
        # Ring buffer of recent gaps, most recent at ``head`` and older
        # entries following (wrapping); ``length`` counts the filled slots.
        self.gaps = np.empty(max_gaps, dtype=np.float64)
        self.head = 0
        self.length = 0
        self.last_time = time
        self.first_time = time
        self.count = 1
        self.size = size

    def push_gap(self, gap: float) -> int:
        """Prepend a gap (appendleft semantics); returns slots grown (0/1)."""
        buf = self.gaps
        capacity = buf.shape[0]
        if capacity == 0:
            return 0
        head = self.head - 1
        if head < 0:
            head = capacity - 1
        buf[head] = gap
        self.head = head
        if self.length < capacity:
            self.length += 1
            return 1
        return 0


class FeatureStore:
    """Tracks request history per content and emits feature vectors.

    Parameters
    ----------
    max_irts:
        Gaps retained per content (>= the largest ``num_irts`` requested).
    missing_value:
        Sentinel for IRTs that do not exist yet.
    """

    def __init__(self, max_irts: int = 32, missing_value: float = DEFAULT_MISSING):
        if max_irts < 1:
            raise ValueError("max_irts must be >= 1")
        self.max_irts = max_irts
        self.missing_value = missing_value
        self._records: dict[int, _ContentRecord] = {}
        #: Total filled gap slots across contents — maintained
        #: incrementally so ``metadata_bytes`` is O(1) under the engine's
        #: probe loop instead of walking every record.
        self._gap_slots = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._records

    def observe(self, req: Request) -> None:
        """Record a request (call once per request, before ``vector``)."""
        self.observe_scalar(req.obj_id, req.size, req.time)

    def observe_scalar(self, obj_id: int, size: int, time: float) -> None:
        """``observe`` without a ``Request`` — the columnar fast path."""
        record = self._records.get(obj_id)
        if record is None:
            self._records[obj_id] = _ContentRecord(self.max_irts - 1, time, size)
            return
        self._gap_slots += record.push_gap(time - record.last_time)
        record.last_time = time
        record.count += 1

    def last_access(self, obj_id: int) -> float | None:
        record = self._records.get(obj_id)
        return record.last_time if record is not None else None

    def request_count(self, obj_id: int) -> int:
        record = self._records.get(obj_id)
        return record.count if record is not None else 0

    def vector(self, obj_id: int, now: float, num_irts: int = 20) -> np.ndarray:
        """Feature vector for ``obj_id`` at time ``now``.

        ``IRT_1`` is ``now - last_request``; the remaining IRTs come from
        the stored gaps (most recent first).  Unknown contents get an
        all-missing IRT block with zero static features.
        """
        if num_irts < 1 or num_irts > self.max_irts:
            raise ValueError(f"num_irts must lie in [1, {self.max_irts}]")
        row = np.empty(feature_dim(num_irts), dtype=np.float64)
        record = self._records.get(obj_id)
        if record is None:
            row[:num_irts] = self.missing_value
            row[num_irts:] = 0.0
            return row
        row[0] = now - record.last_time
        length = record.length
        available = length if length < num_irts - 1 else num_irts - 1
        if available:
            buf = record.gaps
            head = record.head
            first = buf.shape[0] - head
            if first >= available:
                row[1 : 1 + available] = buf[head : head + available]
            else:
                row[1 : 1 + first] = buf[head:]
                row[1 + first : 1 + available] = buf[: available - first]
        row[1 + available : num_irts] = self.missing_value
        row[num_irts] = np.log1p(record.size)
        row[num_irts + 1] = record.count
        row[num_irts + 2] = now - record.first_time
        return row

    def feature_matrix(
        self,
        obj_ids,
        sizes,
        times,
        begin: int,
        end: int,
        num_irts: int = 20,
    ) -> np.ndarray:
        """Feature rows for a span of requests, in one gather.

        Row ``k`` equals ``vector(obj_ids[begin + k], times[begin + k])``
        evaluated *as if* every earlier request in the span had already
        been observed — without mutating the store.  Repeats inside the
        span are handled by a virtual overlay: per object we track the
        pending last-access time, count delta and the gaps the span
        would have pushed, and compose them with the real record at
        emit time.  Every float op (gap subtraction, ``log1p``, age)
        matches the interleaved ``vector``/``observe_scalar`` sequence
        exactly, so the rows are bit-identical to the scalar path's.

        The caller observes the requests afterwards as usual; the store
        is left untouched here.
        """
        if num_irts < 1 or num_irts > self.max_irts:
            raise ValueError(f"num_irts must lie in [1, {self.max_irts}]")
        n = end - begin
        dim = feature_dim(num_irts)
        matrix = np.empty((n, dim), dtype=np.float64)
        matrix[:, :num_irts] = self.missing_value
        ids = list(obj_ids[begin:end])
        szs = list(sizes[begin:end])
        tms = times[begin:end]
        tms_list = tms.tolist() if hasattr(tms, "tolist") else list(tms)
        records = self._records
        cap = num_irts - 1
        lasts = [0.0] * n
        counts = [0] * n
        firsts = [0.0] * n
        raw_sizes = [0] * n
        unknown: list[int] = []
        # obj_id -> [last_time, virtual_count, first_time, size, gaps]
        # ``gaps`` accumulates oldest-to-newest (appended), read reversed.
        pending: dict[int, list] = {}
        for k in range(n):
            oid = ids[k]
            now = tms_list[k]
            pend = pending.get(oid)
            record = records.get(oid)
            if pend is None and record is None:
                unknown.append(k)
            else:
                if pend is not None:
                    lasts[k] = pend[0]
                    if record is not None:
                        counts[k] = record.count + pend[1]
                        firsts[k] = record.first_time
                        raw_sizes[k] = record.size
                    else:
                        counts[k] = pend[1]
                        firsts[k] = pend[2]
                        raw_sizes[k] = pend[3]
                    pgaps = pend[4]
                    npend = len(pgaps)
                    if npend > cap:
                        npend = cap
                    if npend:
                        matrix[k, 1 : 1 + npend] = pgaps[: -npend - 1 : -1]
                    start = 1 + npend
                    room = cap - npend
                else:
                    lasts[k] = record.last_time
                    counts[k] = record.count
                    firsts[k] = record.first_time
                    raw_sizes[k] = record.size
                    start = 1
                    room = cap
                if record is not None and room > 0:
                    length = record.length
                    available = length if length < room else room
                    if available:
                        buf = record.gaps
                        head = record.head
                        first = buf.shape[0] - head
                        if first >= available:
                            matrix[k, start : start + available] = buf[
                                head : head + available
                            ]
                        else:
                            matrix[k, start : start + first] = buf[head:]
                            matrix[k, start + first : start + available] = buf[
                                : available - first
                            ]
            # Virtual observe of request k, mirroring ``observe_scalar``.
            if pend is None:
                if record is None:
                    pending[oid] = [now, 1, now, szs[k], []]
                else:
                    pending[oid] = [now, 1, 0.0, 0, [now - record.last_time]]
            else:
                pend[4].append(now - pend[0])
                pend[0] = now
                pend[1] += 1
        times_col = np.asarray(tms_list, dtype=np.float64)
        matrix[:, 0] = times_col - np.asarray(lasts, dtype=np.float64)
        matrix[:, num_irts] = np.log1p(np.asarray(raw_sizes, dtype=np.float64))
        matrix[:, num_irts + 1] = counts
        matrix[:, num_irts + 2] = times_col - np.asarray(firsts, dtype=np.float64)
        if unknown:
            matrix[unknown, :num_irts] = self.missing_value
            matrix[unknown, num_irts:] = 0.0
        return matrix

    def prune(self, now: float, horizon: float) -> int:
        """Forget contents idle for more than ``horizon`` seconds.

        Bounds the store's memory to roughly the contents active within
        the last few sliding windows.  Returns the number pruned.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        stale = [
            obj_id
            for obj_id, record in self._records.items()
            if now - record.last_time > horizon
        ]
        for obj_id in stale:
            self._gap_slots -= self._records.pop(obj_id).length
        return len(stale)

    def metadata_bytes(self) -> int:
        """Approximate footprint: gaps + 4 scalars per content."""
        return 8 * (self._gap_slots + 4 * len(self._records))
