"""Auto-tuned admission threshold (Sections 4.2 and 5.2.3).

LHR admits a content when its learned admission probability exceeds a
threshold ``delta``.  Because production workloads are non-stationary, a
fixed ``delta = 0.5`` is a poor fit for some traces (Figure 10(a):
CDN-C's hit probability improves ~150% with auto-tuning).  The estimation
algorithm re-evaluates, once per sliding window:

* candidate set ``{0, 0.5, delta - 0.1, delta + 0.1}`` (clipped to [0,1]),
* each candidate's hit probability, measured by replaying a sample of the
  window's requests through a *shadow cache* that admits by the recorded
  probabilities and evicts by LHR's eviction rule,
* two update guards: the winning candidate is adopted only if it beats
  the incumbent AND the margin exceeds ``beta`` (paper default 0.2%).

The paper notes replaying only half the window's requests is enough
(Section 5.2.3); ``sample_fraction`` controls that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import NULL_OBS

#: Threshold adjustment step (the paper's 0.1 grid).
STEP = 0.1


@dataclass(frozen=True, slots=True)
class WindowSample:
    """One request as recorded for shadow replay."""

    obj_id: int
    size: int
    time: float
    probability: float


def shadow_hit_ratio(
    samples: list[WindowSample],
    capacity: int,
    delta: float,
    byte_weighted: bool = False,
) -> float:
    """Hit ratio of an LHR-style shadow cache with threshold ``delta``.

    The shadow cache admits ``probability >= delta`` and evicts the
    cached object with the smallest ``p / (size * (now - last_access))``,
    i.e. LHR's eviction rule with IRT_1 evaluated lazily at eviction time
    via a lazily rebuilt heap (one rebuild pass per overflow burst keeps
    the replay O(n log n) overall).
    """
    if not samples:
        return 0.0
    cached: dict[int, tuple[int, float, float]] = {}  # id -> (size, p, last)
    used = 0
    hits = 0.0
    total = 0.0
    for sample in samples:
        weight = float(sample.size) if byte_weighted else 1.0
        total += weight
        entry = cached.get(sample.obj_id)
        if entry is not None:
            hits += weight
            cached[sample.obj_id] = (entry[0], sample.probability, sample.time)
            continue
        if sample.probability < delta or sample.size > capacity:
            continue
        if used + sample.size > capacity:
            # Evict smallest-q objects until the sample fits.  Large
            # shadow caches rank their victims vectorized: the q values
            # use the same float ops as the scalar key and a stable
            # argsort keeps sorted()'s tie order (dict insertion order),
            # so the victim sequence is bit-identical either way.
            if len(cached) >= 64:
                entries = np.array(list(cached.values()), dtype=np.float64)
                q = entries[:, 1] / (
                    entries[:, 0]
                    * np.maximum(sample.time - entries[:, 2], 1e-9)
                )
                ids = list(cached)
                scores = [
                    ids[i] for i in np.argsort(q, kind="stable").tolist()
                ]
            else:
                scores = sorted(
                    cached,
                    key=lambda oid: cached[oid][1]
                    / (cached[oid][0] * max(sample.time - cached[oid][2], 1e-9)),
                )
            for victim in scores:
                if used + sample.size <= capacity:
                    break
                used -= cached.pop(victim)[0]
        cached[sample.obj_id] = (sample.size, sample.probability, sample.time)
        used += sample.size
    return hits / total if total else 0.0


class ThresholdEstimator:
    """Maintains LHR's admission threshold across sliding windows."""

    OBJECTIVES = ("object", "byte")

    def __init__(
        self,
        initial_delta: float = 0.5,
        beta: float = 0.002,
        sample_fraction: float = 0.5,
        objective: str = "object",
        seed: int = 0,
    ):
        if objective not in self.OBJECTIVES:
            raise ValueError(f"objective must be one of {self.OBJECTIVES}")
        if not 0.0 <= initial_delta <= 1.0:
            raise ValueError("initial_delta must lie in [0, 1]")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must lie in (0, 1]")
        self.delta = initial_delta
        self.beta = beta
        self.sample_fraction = sample_fraction
        #: "object" scores shadow replays by request hits (the paper);
        #: "byte" scores them by hit bytes — an extension that trades a
        #: little object hit ratio for WAN-traffic reduction.
        self.objective = objective
        self._rng = np.random.default_rng(seed)
        self.history: list[float] = [initial_delta]
        #: Observation handle (:mod:`repro.obs`); LHR attaches its own.
        self.obs = NULL_OBS

    def candidates(self) -> list[float]:
        """The paper's candidate set, clipped to [0, 1] and deduplicated."""
        raw = [0.0, 0.5, self.delta - STEP, self.delta + STEP]
        clipped = sorted({min(max(value, 0.0), 1.0) for value in raw})
        return clipped

    def update(self, samples: list[WindowSample], capacity: int) -> float:
        """Re-estimate the threshold from one window's recorded requests.

        Returns the (possibly unchanged) threshold to use next window.
        """
        # Once per retraining window; the disabled span context is a
        # shared no-op.
        with self.obs.spans.span(
            "lhr.threshold_update", cat="lhr", samples=len(samples)
        ):
            return self._update(samples, capacity)

    def _update(self, samples: list[WindowSample], capacity: int) -> float:
        if samples and self.sample_fraction < 1.0:
            keep = max(int(len(samples) * self.sample_fraction), 1)
            idx = np.sort(self._rng.choice(len(samples), size=keep, replace=False))
            samples = [samples[i] for i in idx]
            # Replaying a sample shrinks the working set; shrink the shadow
            # capacity proportionally so cache pressure stays realistic.
            capacity = max(int(capacity * self.sample_fraction), 1)
        byte_weighted = self.objective == "byte"
        incumbent_ratio = shadow_hit_ratio(
            samples, capacity, self.delta, byte_weighted
        )
        best_delta = self.delta
        best_ratio = incumbent_ratio
        for candidate in self.candidates():
            if candidate == self.delta:
                continue
            ratio = shadow_hit_ratio(samples, capacity, candidate, byte_weighted)
            if ratio > best_ratio:
                best_ratio = ratio
                best_delta = candidate
        # Both update guards (Section 5.2.3): strictly better AND by more
        # than beta; otherwise keep the incumbent.
        previous = self.delta
        if best_delta != self.delta and best_ratio - incumbent_ratio > self.beta:
            self.delta = best_delta
        self.history.append(self.delta)
        if self.obs.learner.enabled:
            # Learner-telemetry fragment: the delta trajectory for this
            # window (folded into the row at window close).
            self.obs.learner.record_threshold(
                threshold_adopted=float(self.delta != previous),
                incumbent_ratio=incumbent_ratio,
                best_ratio=best_ratio,
            )
        if self.obs.enabled:
            adopted = self.delta != previous
            self.obs.registry.counter(
                "lhr_threshold_estimations_total",
                help="per-window threshold re-estimations",
            ).inc()
            if adopted:
                self.obs.registry.counter(
                    "lhr_threshold_adoptions_total",
                    help="re-estimations that changed the threshold",
                ).inc()
            self.obs.registry.gauge(
                "lhr_threshold_delta", help="current admission threshold"
            ).set(self.delta)
            self.obs.emit(
                "lhr.threshold_update",
                before=previous,
                after=self.delta,
                adopted=adopted,
                incumbent_ratio=round(incumbent_ratio, 6),
                best_ratio=round(best_ratio, 6),
                best_candidate=best_delta,
                samples=len(samples),
            )
        return self.delta
