"""AdaptSize (Berger, Sitaraman, Harchol-Balter, NSDI '17).

AdaptSize admits an object of size ``s`` with probability ``exp(-s / c)``
and continuously re-tunes the size threshold ``c``.  The original system
tunes ``c`` by solving a Markov-chain model of the LRU cache over
candidate values; we reproduce that loop structurally: every tuning
window, candidate thresholds spanning several orders of magnitude are
scored with the same stationary-occupancy model (Che-style approximation)
over the window's observed (object, size, count) statistics, and the
best-scoring ``c`` is adopted.  Eviction is plain LRU, as in the paper.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class AdaptSizeCache(CachePolicy):
    """Probabilistic size-aware admission with self-tuning threshold."""

    name = "adaptsize"

    def __init__(
        self,
        capacity: int,
        tuning_requests: int = 50_000,
        num_candidates: int = 16,
        seed: int = 0,
    ):
        super().__init__(capacity)
        if tuning_requests <= 0:
            raise ValueError("tuning_requests must be positive")
        self._order: OrderedDict[int, None] = OrderedDict()
        self._rng = np.random.default_rng(seed)
        self._threshold = float(capacity) / 100.0
        self._tuning_requests = tuning_requests
        self._num_candidates = num_candidates
        self._window_counts: dict[int, int] = {}
        self._window_sizes: dict[int, int] = {}
        self._window_requests = 0

    @property
    def threshold(self) -> float:
        """Current admission size parameter ``c``."""
        return self._threshold

    def _on_access(self, req: Request) -> None:
        self._window_counts[req.obj_id] = self._window_counts.get(req.obj_id, 0) + 1
        self._window_sizes[req.obj_id] = req.size
        self._window_requests += 1
        if self._window_requests >= self._tuning_requests:
            self._tune()

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        probability = math.exp(-req.size / self._threshold)
        return bool(self._rng.random() < probability)

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    # ------------------------------------------------------------------
    # Threshold tuning
    # ------------------------------------------------------------------

    def _tune(self) -> None:
        sizes = np.fromiter(self._window_sizes.values(), dtype=np.float64)
        counts = np.fromiter(
            (self._window_counts[oid] for oid in self._window_sizes),
            dtype=np.float64,
        )
        self._window_counts.clear()
        self._window_sizes.clear()
        self._window_requests = 0
        if sizes.size < 10:
            return
        low = max(np.percentile(sizes, 1), 1.0)
        high = max(float(sizes.max()) * 10.0, low * 10.0)
        candidates = np.logspace(
            np.log10(low), np.log10(high), self._num_candidates
        )
        scores = [self._model_hit_rate(c, sizes, counts) for c in candidates]
        best = int(np.argmax(scores))
        # Exponential smoothing avoids threshold thrashing between windows.
        self._threshold = math.exp(
            0.5 * math.log(self._threshold) + 0.5 * math.log(candidates[best])
        )

    def _model_hit_rate(
        self, c: float, sizes: np.ndarray, counts: np.ndarray
    ) -> float:
        """Stationary object-hit-rate estimate for admission parameter ``c``.

        Uses the Che-style approximation AdaptSize's Markov model reduces
        to under IRM: an admitted object occupies the cache while its
        expected bytes-in-flight share fits the capacity; we approximate
        occupancy by greedily filling the cache with admitted objects in
        descending request-rate-per-byte order and scoring the requests
        they capture.
        """
        admit_prob = np.exp(-sizes / c)
        effective_rate = counts * admit_prob
        density = effective_rate / sizes
        order = np.argsort(density)[::-1]
        cum_bytes = np.cumsum(sizes[order])
        kept = cum_bytes <= self.capacity
        return float(effective_rate[order][kept].sum())

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 24 * len(self._window_sizes)
