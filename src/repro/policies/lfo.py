"""LFO — Learning From OPT (Berger, HotNets '18).

LFO periodically computes offline-optimal admission decisions over the
recent past (here: Bélády-size run on the previous window), trains a
classifier mapping request features to those decisions, and applies it to
future admissions with LRU eviction.  The paper includes LFO in its SOTA
pool but notes it "performs even worse than some conventional algorithms
on production traces" — our reproduction of Figure 8 shows the same.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque

import numpy as np

from repro.core.gbm import GradientBoostingRegressor
from repro.policies.base import CachePolicy
from repro.traces.request import Request

_NUM_DELTAS = 4


class LfoCache(CachePolicy):
    """Window-batched OPT-imitation admission with LRU eviction."""

    name = "lfo"

    def __init__(
        self,
        capacity: int,
        window_requests: int = 20_000,
        threshold: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        self._window_requests = window_requests
        self._threshold = threshold
        self._seed = seed
        self._model: GradientBoostingRegressor | None = None
        self._deltas: dict[int, deque[float]] = {}
        self._last_time: dict[int, float] = {}
        self._counts: dict[int, int] = {}
        self._window: list[tuple[np.ndarray, Request]] = []

    def _features(self, req: Request) -> np.ndarray:
        row = np.empty(_NUM_DELTAS + 2, dtype=np.float64)
        deltas = self._deltas.get(req.obj_id, ())
        deltas = list(deltas)
        for i in range(_NUM_DELTAS):
            row[i] = deltas[-1 - i] if i < len(deltas) else 1e9
        row[-2] = math.log1p(req.size)
        row[-1] = self._counts.get(req.obj_id, 0)
        return row

    def _on_access(self, req: Request) -> None:
        self._window.append((self._features(req), req))
        last = self._last_time.get(req.obj_id)
        if last is not None:
            self._deltas.setdefault(req.obj_id, deque(maxlen=_NUM_DELTAS)).append(
                req.time - last
            )
        self._last_time[req.obj_id] = req.time
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if len(self._window) >= self._window_requests:
            self._retrain()

    def _retrain(self) -> None:
        from repro.bounds.belady import belady_size_decisions

        requests = [req for _, req in self._window]
        labels = belady_size_decisions(requests, self.capacity)
        features = np.vstack([row for row, _ in self._window])
        targets = np.asarray(labels, dtype=np.float64)
        model = GradientBoostingRegressor(
            n_estimators=12, max_depth=3, seed=self._seed
        )
        self._model = model.fit(features, targets)
        self._window.clear()

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        if self._model is None:
            return True
        score = self._model.predict_one(self._features(req))
        return score >= self._threshold

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def metadata_bytes(self) -> int:
        total = 16 * len(self._last_time) + 8 * _NUM_DELTAS * len(self._deltas)
        total += 8 * (_NUM_DELTAS + 3) * len(self._window)
        if self._model is not None:
            total += self._model.metadata_bytes()
        return super().metadata_bytes() + total
