"""LHD — Least Hit Density (Beckmann, Chen, Cidon; NSDI '18).

LHD evicts the object with the lowest *hit density*: the expected number
of future hits per byte of cache space per unit time the object will
occupy.  The original estimates densities with conditional probability
tables over object age; this implementation keeps the same structure in
a compact form:

* objects are grouped into *classes* by how often they have been
  referenced (log2 buckets of reference count), matching LHD's "app +
  age" classing in spirit;
* each class tracks an online estimate of (a) the probability that a
  member gets another hit before eviction and (b) the expected time to
  that hit, learned from observed hit/eviction events;
* an object's hit density is ``P(hit | class) / (size * E[time-to-hit |
  class] )``, discounted by the time it has already idled.

Eviction samples ``num_candidates`` objects and evicts the smallest
density, as in the original's sampled implementation.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.indexed_set import IndexedSet
from repro.util.stats import EwmaEstimator

_NUM_CLASSES = 8


class _ClassStats:
    """Online hit-probability and time-to-hit estimates for one class."""

    def __init__(self) -> None:
        self.hit_ewma = EwmaEstimator(alpha=0.05)
        self.time_to_hit = EwmaEstimator(alpha=0.05)

    def record_hit(self, idle_time: float) -> None:
        self.hit_ewma.add(1.0)
        self.time_to_hit.add(max(idle_time, 1e-9))

    def record_eviction(self) -> None:
        self.hit_ewma.add(0.0)

    @property
    def hit_probability(self) -> float:
        return self.hit_ewma.value if self.hit_ewma.initialized else 0.5

    @property
    def expected_time(self) -> float:
        return self.time_to_hit.value if self.time_to_hit.initialized else 1.0


class LhdCache(CachePolicy):
    """Sampled least-hit-density eviction."""

    name = "lhd"

    def __init__(self, capacity: int, num_candidates: int = 64, seed: int = 0):
        super().__init__(capacity)
        self._num_candidates = num_candidates
        self._rng = np.random.default_rng(seed)
        self._cached = IndexedSet()
        self._last_access: dict[int, float] = {}
        self._counts: dict[int, int] = {}
        self._classes = [_ClassStats() for _ in range(_NUM_CLASSES)]

    def _class_of(self, obj_id: int) -> int:
        count = self._counts.get(obj_id, 1)
        return min(count.bit_length() - 1, _NUM_CLASSES - 1)

    def hit_density(self, obj_id: int, now: float) -> float:
        """Estimated hits per byte-second for a cached object."""
        stats = self._classes[self._class_of(obj_id)]
        idle = max(now - self._last_access.get(obj_id, now), 0.0)
        expected_wait = max(stats.expected_time - idle, stats.expected_time * 0.1)
        size = self._sizes.get(obj_id, 1)
        return stats.hit_probability / (size * expected_wait)

    def _on_access(self, req: Request) -> None:
        previous = self._last_access.get(req.obj_id)
        if self.contains(req.obj_id) and previous is not None:
            self._classes[self._class_of(req.obj_id)].record_hit(
                req.time - previous
            )
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        self._last_access[req.obj_id] = req.time

    def _on_admit(self, req: Request) -> None:
        self._cached.add(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        self._classes[self._class_of(obj_id)].record_eviction()
        self._cached.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        candidates = self._cached.sample(self._num_candidates, self._rng)
        return min(candidates, key=lambda oid: self.hit_density(oid, incoming.time))

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 24 * len(self._last_access)
