"""Hyperbolic caching (Blankstein, Sen, Freedman; ATC '17).

Each cached object carries the priority ``n_i / (s_i * (t - t_i))`` —
its request count since entering the cache, per byte, per second of
residence.  Unlike LFU the priority *decays continuously* (hyperbolically)
with residence time, and unlike LRU a burst of hits protects an object
long after the burst.  Eviction samples ``num_candidates`` objects and
drops the lowest priority, exactly as the paper's implementation does.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.indexed_set import IndexedSet


class HyperbolicCache(CachePolicy):
    """Sampled hyperbolic eviction, size-aware variant."""

    name = "hyperbolic"

    def __init__(
        self,
        capacity: int,
        num_candidates: int = 64,
        size_aware: bool = True,
        seed: int = 0,
    ):
        super().__init__(capacity)
        self._num_candidates = num_candidates
        self._size_aware = size_aware
        self._rng = np.random.default_rng(seed)
        self._cached = IndexedSet()
        self._entered: dict[int, float] = {}
        self._hits_since_entry: dict[int, int] = {}

    def priority(self, obj_id: int, now: float) -> float:
        """The hyperbolic priority of a cached object at time ``now``."""
        residence = max(now - self._entered[obj_id], 1e-9)
        count = self._hits_since_entry[obj_id]
        value = count / residence
        if self._size_aware:
            value /= self._sizes[obj_id]
        return value

    def _on_hit(self, req: Request) -> None:
        self._hits_since_entry[req.obj_id] += 1

    def _on_admit(self, req: Request) -> None:
        self._cached.add(req.obj_id)
        self._entered[req.obj_id] = req.time
        self._hits_since_entry[req.obj_id] = 1

    def _on_evict(self, obj_id: int) -> None:
        self._cached.discard(obj_id)
        self._entered.pop(obj_id, None)
        self._hits_since_entry.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        candidates = self._cached.sample(self._num_candidates, self._rng)
        return min(candidates, key=lambda oid: self.priority(oid, incoming.time))

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 20 * len(self._entered)
