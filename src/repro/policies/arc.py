"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

ARC balances recency (list T1) against frequency (list T2) using ghost
lists B1/B2 to adapt the target size ``p`` of T1.  The original algorithm
is defined for unit-size pages; as is standard in CDN simulators, we adapt
it to variable sizes by measuring all lists in bytes and evicting until
the incoming object fits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class _ByteList:
    """LRU-ordered id list with byte accounting (for T1/T2/B1/B2)."""

    def __init__(self) -> None:
        self._items: OrderedDict[int, int] = OrderedDict()
        self.bytes = 0

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def add(self, obj_id: int, size: int) -> None:
        self._items[obj_id] = size
        self.bytes += size

    def touch(self, obj_id: int) -> None:
        self._items.move_to_end(obj_id)

    def remove(self, obj_id: int) -> int:
        size = self._items.pop(obj_id)
        self.bytes -= size
        return size

    def pop_lru(self) -> tuple[int, int]:
        obj_id, size = next(iter(self._items.items()))
        del self._items[obj_id]
        self.bytes -= size
        return obj_id, size

    def size_of(self, obj_id: int) -> int:
        return self._items[obj_id]


class ArcCache(CachePolicy):
    """Byte-based ARC.

    ``_select_victim`` implements the REPLACE step: evict from T1 when it
    exceeds the adaptive target ``p`` (or the request hit in B2), else
    from T2.  Ghost lists are trimmed to at most the cache capacity in
    bytes each, mirroring ARC's "|B1|+|T1| <= c" discipline.
    """

    name = "arc"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._t1 = _ByteList()
        self._t2 = _ByteList()
        self._b1 = _ByteList()
        self._b2 = _ByteList()
        self._p = 0.0
        self._last_miss_in_b2 = False

    def _on_hit(self, req: Request) -> None:
        # A hit in T1 promotes to T2; a hit in T2 refreshes recency.
        if req.obj_id in self._t1:
            self._t1.remove(req.obj_id)
            self._t2.add(req.obj_id, req.size)
        else:
            self._t2.touch(req.obj_id)

    def _on_miss(self, req: Request) -> None:
        self._last_miss_in_b2 = False
        if req.obj_id in self._b1:
            # Recency ghost hit: grow T1's target.
            ratio = max(self._b2.bytes / max(self._b1.bytes, 1), 1.0)
            self._p = min(self._p + ratio * req.size, float(self.capacity))
            self._b1.remove(req.obj_id)
        elif req.obj_id in self._b2:
            # Frequency ghost hit: shrink T1's target.
            ratio = max(self._b1.bytes / max(self._b2.bytes, 1), 1.0)
            self._p = max(self._p - ratio * req.size, 0.0)
            self._b2.remove(req.obj_id)
            self._last_miss_in_b2 = True

    def _on_admit(self, req: Request) -> None:
        if self._last_miss_in_b2:
            self._t2.add(req.obj_id, req.size)
        else:
            self._t1.add(req.obj_id, req.size)
        self._trim_ghosts()

    def _select_victim(self, incoming: Request) -> int:
        prefer_t1 = self._t1.bytes > 0 and (
            self._t1.bytes > self._p
            or (self._last_miss_in_b2 and self._t1.bytes >= self._p)
            or self._t2.bytes == 0
        )
        if prefer_t1:
            obj_id, size = self._t1.pop_lru()
            self._b1.add(obj_id, size)
        else:
            obj_id, size = self._t2.pop_lru()
            self._b2.add(obj_id, size)
        return obj_id

    def _on_evict(self, obj_id: int) -> None:
        # Victims were already moved to a ghost list by _select_victim;
        # evictions triggered any other way just drop list state.
        for lst in (self._t1, self._t2):
            if obj_id in lst:
                lst.remove(obj_id)

    def _trim_ghosts(self) -> None:
        # Classic ARC keeps |L1|, |L2| <= c in entries; in the byte
        # adaptation T1 alone may legitimately fill the capacity, so each
        # ghost list gets its own byte budget of one capacity instead
        # (total directory still <= 2c as in the original).
        while self._b1.bytes > self.capacity and len(self._b1):
            self._b1.pop_lru()
        while self._b2.bytes > self.capacity and len(self._b2):
            self._b2.pop_lru()

    def metadata_bytes(self) -> int:
        ghosts = len(self._b1) + len(self._b2)
        return super().metadata_bytes() + 32 * ghosts
