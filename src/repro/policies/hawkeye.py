"""Hawkeye (Jain & Lin, ISCA '16) adapted to CDN caching.

Hawkeye reconstructs what Bélády's OPT *would have done* on the recent
past (the OPTgen structure) and trains a predictor on those labels; the
predictor then classifies each content as cache-friendly or cache-averse.
The original targets CPU caches with per-PC predictors; as the paper
notes (Section 8), "its idea of applying Bélády to history data ... can be
implemented in CDNs".  Our adaptation, matching how the LRB authors also
ported it:

* OPTgen runs at byte granularity over a bucketed occupancy vector of the
  recent request history: a reuse interval is an OPT hit iff the liveness
  occupancy stays below capacity throughout the interval.
* The predictor is a table of saturating counters keyed by content id
  hash (CDN requests have no program counter).
* Eviction: cache-averse objects first (LRU among them), then LRU among
  friendly objects.  A detected averse object is also denied admission.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class _OptGen:
    """Byte-granularity OPTgen over a sliding bucketed history."""

    def __init__(self, capacity: int, num_buckets: int, requests_per_bucket: int):
        self._capacity = capacity
        self._num_buckets = num_buckets
        self._requests_per_bucket = requests_per_bucket
        self._occupancy: deque[int] = deque([0] * num_buckets, maxlen=num_buckets)
        self._bucket_index = 0
        self._requests_in_bucket = 0
        self._last_bucket: dict[int, int] = {}

    def _advance(self) -> None:
        self._requests_in_bucket += 1
        if self._requests_in_bucket >= self._requests_per_bucket:
            self._requests_in_bucket = 0
            self._bucket_index += 1
            self._occupancy.append(0)

    def record(self, req: Request) -> bool | None:
        """Record one request; return OPT's verdict for its reuse interval.

        ``True``  — OPT would have kept the content since its previous
        request (an OPT hit).
        ``False`` — the interval overflowed the cache (an OPT miss).
        ``None``  — first request, or previous request aged out of history.
        """
        previous = self._last_bucket.get(req.obj_id)
        self._last_bucket[req.obj_id] = self._bucket_index
        verdict: bool | None = None
        if previous is not None:
            age = self._bucket_index - previous
            if age < self._num_buckets:
                start = self._num_buckets - 1 - age
                window = [self._occupancy[i] for i in range(start, self._num_buckets)]
                if all(level + req.size <= self._capacity for level in window):
                    for i in range(start, self._num_buckets):
                        self._occupancy[i] += req.size
                    verdict = True
                else:
                    verdict = False
        self._advance()
        return verdict

    def prune(self, horizon: int = 4) -> None:
        """Drop last-seen entries older than ``horizon`` full histories."""
        cutoff = self._bucket_index - horizon * self._num_buckets
        if cutoff <= 0:
            return
        stale = [oid for oid, bucket in self._last_bucket.items() if bucket < cutoff]
        for oid in stale:
            del self._last_bucket[oid]

    def metadata_bytes(self) -> int:
        return 8 * self._num_buckets + 16 * len(self._last_bucket)


class HawkeyeCache(CachePolicy):
    """OPTgen-trained friendly/averse prediction with LRU fallback."""

    name = "hawkeye"

    #: Saturating counter range; >= _FRIENDLY_THRESHOLD means friendly.
    _COUNTER_MAX = 7
    _FRIENDLY_THRESHOLD = 4

    def __init__(
        self,
        capacity: int,
        num_buckets: int = 128,
        requests_per_bucket: int = 64,
        predictor_slots: int = 1 << 16,
    ):
        super().__init__(capacity)
        self._optgen = _OptGen(capacity, num_buckets, requests_per_bucket)
        self._predictor_slots = predictor_slots
        self._counters: dict[int, int] = {}
        self._friendly: OrderedDict[int, None] = OrderedDict()
        self._averse: OrderedDict[int, None] = OrderedDict()
        self._requests_seen = 0

    def _slot(self, obj_id: int) -> int:
        return obj_id % self._predictor_slots

    def _predict_friendly(self, obj_id: int) -> bool:
        return (
            self._counters.get(self._slot(obj_id), self._FRIENDLY_THRESHOLD)
            >= self._FRIENDLY_THRESHOLD
        )

    def _train(self, obj_id: int, opt_hit: bool) -> None:
        slot = self._slot(obj_id)
        counter = self._counters.get(slot, self._FRIENDLY_THRESHOLD)
        if opt_hit:
            counter = min(counter + 1, self._COUNTER_MAX)
        else:
            counter = max(counter - 1, 0)
        self._counters[slot] = counter

    def _on_access(self, req: Request) -> None:
        verdict = self._optgen.record(req)
        if verdict is not None:
            self._train(req.obj_id, verdict)
        self._requests_seen += 1
        if self._requests_seen % 65_536 == 0:
            self._optgen.prune()
        # Re-classify a cached object when its prediction flips.
        if self.contains(req.obj_id):
            self._place(req.obj_id)

    def _place(self, obj_id: int) -> None:
        self._friendly.pop(obj_id, None)
        self._averse.pop(obj_id, None)
        if self._predict_friendly(obj_id):
            self._friendly[obj_id] = None
        else:
            self._averse[obj_id] = None

    def _should_admit(self, req: Request) -> bool:
        return self._predict_friendly(req.obj_id)

    def _on_admit(self, req: Request) -> None:
        self._place(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        self._friendly.pop(obj_id, None)
        self._averse.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        if self._averse:
            return next(iter(self._averse))
        return next(iter(self._friendly))

    def metadata_bytes(self) -> int:
        return (
            super().metadata_bytes()
            + self._optgen.metadata_bytes()
            + 9 * len(self._counters)
        )
