"""B-LRU — Bloom-filter LRU (footnote 6 of the paper).

A Bloom filter remembers which contents have been seen before; an object
is only admitted on its *second* request, which keeps one-hit wonders out
of the cache.  The filter is rotated (two-generation scheme) once it has
absorbed ``rotation_items`` distinct keys so stale history ages out while
recent contents stay remembered across the rotation.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.bloom import BloomFilter


class BloomLruCache(CachePolicy):
    """LRU eviction behind a seen-before Bloom-filter admission gate."""

    name = "b-lru"

    def __init__(
        self,
        capacity: int,
        rotation_items: int = 100_000,
        false_positive_rate: float = 0.01,
    ):
        super().__init__(capacity)
        if rotation_items <= 0:
            raise ValueError("rotation_items must be positive")
        self._rotation_items = rotation_items
        self._fpr = false_positive_rate
        self._current = BloomFilter(rotation_items, false_positive_rate)
        self._previous: BloomFilter | None = None
        self._order: OrderedDict[int, None] = OrderedDict()
        self._restrict_scalar_kernel(BloomLruCache)

    def _seen_before(self, obj_id: int) -> bool:
        if obj_id in self._current:
            return True
        return self._previous is not None and obj_id in self._previous

    def _on_access(self, req: Request) -> None:
        if len(self._current) >= self._rotation_items:
            self._previous = self._current
            self._current = BloomFilter(self._rotation_items, self._fpr)

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)
        self._current.add(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        seen = self._seen_before(req.obj_id)
        self._current.add(req.obj_id)
        return seen

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def request_scalar(
        self, obj_id: int, size: int, time: float, index: int = -1
    ) -> bool:
        # Native kernel mirroring CachePolicy.request + the B-LRU hooks.
        current = self._current
        if len(current) >= self._rotation_items:
            self._previous = current
            current = BloomFilter(self._rotation_items, self._fpr)
            self._current = current
        sizes = self._sizes
        order = self._order
        if obj_id in sizes:
            self.hits += 1
            self.hit_bytes += size
            order.move_to_end(obj_id)
            current.add(obj_id)
            return True
        self.misses += 1
        self.miss_bytes += size
        capacity = self.capacity
        if size <= capacity:
            # The admission gate's bloom insertion only happens for
            # objects that could fit — base request() short-circuits
            # ``_should_admit`` on oversized objects.
            seen = obj_id in current or (
                self._previous is not None and obj_id in self._previous
            )
            current.add(obj_id)
            if seen:
                used = self._used + size
                while used > capacity:
                    victim, _ = order.popitem(last=False)
                    used -= sizes.pop(victim)
                    self.evictions += 1
                self._used = used
                sizes[obj_id] = size
                self.admissions += 1
                order[obj_id] = None
        return False

    def replay_span(self, obj_ids, sizes_col, times, begin: int, end: int) -> None:
        # Native span kernel: the scalar kernel's loop with the hot names
        # in locals and counters written back once at the span edge.  The
        # rotation check re-reads the live filter each iteration, so the
        # two-generation hand-off behaves exactly as on the object path.
        rotation_items = self._rotation_items
        fpr = self._fpr
        sizes = self._sizes
        order = self._order
        move_to_end = order.move_to_end
        popitem = order.popitem
        pop_size = sizes.pop
        capacity = self.capacity
        used = self._used
        current = self._current
        hits = hit_bytes = misses = miss_bytes = evictions = admissions = 0
        for i in range(begin, end):
            obj_id = obj_ids[i]
            size = sizes_col[i]
            if len(current) >= rotation_items:
                self._previous = current
                current = BloomFilter(rotation_items, fpr)
                self._current = current
            if obj_id in sizes:
                hits += 1
                hit_bytes += size
                move_to_end(obj_id)
                current.add(obj_id)
            else:
                misses += 1
                miss_bytes += size
                if size <= capacity:
                    seen = obj_id in current or (
                        self._previous is not None and obj_id in self._previous
                    )
                    current.add(obj_id)
                    if seen:
                        used += size
                        while used > capacity:
                            victim, _ = popitem(last=False)
                            used -= pop_size(victim)
                            evictions += 1
                        sizes[obj_id] = size
                        admissions += 1
                        order[obj_id] = None
        self._used = used
        self.hits += hits
        self.hit_bytes += hit_bytes
        self.misses += misses
        self.miss_bytes += miss_bytes
        self.evictions += evictions
        self.admissions += admissions

    def metadata_bytes(self) -> int:
        total = self._current.metadata_bytes()
        if self._previous is not None:
            total += self._previous.metadata_bytes()
        return super().metadata_bytes() + total
