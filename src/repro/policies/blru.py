"""B-LRU — Bloom-filter LRU (footnote 6 of the paper).

A Bloom filter remembers which contents have been seen before; an object
is only admitted on its *second* request, which keeps one-hit wonders out
of the cache.  The filter is rotated (two-generation scheme) once it has
absorbed ``rotation_items`` distinct keys so stale history ages out while
recent contents stay remembered across the rotation.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.bloom import BloomFilter


class BloomLruCache(CachePolicy):
    """LRU eviction behind a seen-before Bloom-filter admission gate."""

    name = "b-lru"

    def __init__(
        self,
        capacity: int,
        rotation_items: int = 100_000,
        false_positive_rate: float = 0.01,
    ):
        super().__init__(capacity)
        if rotation_items <= 0:
            raise ValueError("rotation_items must be positive")
        self._rotation_items = rotation_items
        self._fpr = false_positive_rate
        self._current = BloomFilter(rotation_items, false_positive_rate)
        self._previous: BloomFilter | None = None
        self._order: OrderedDict[int, None] = OrderedDict()

    def _seen_before(self, obj_id: int) -> bool:
        if obj_id in self._current:
            return True
        return self._previous is not None and obj_id in self._previous

    def _on_access(self, req: Request) -> None:
        if len(self._current) >= self._rotation_items:
            self._previous = self._current
            self._current = BloomFilter(self._rotation_items, self._fpr)

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)
        self._current.add(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        seen = self._seen_before(req.obj_id)
        self._current.add(req.obj_id)
        return seen

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def metadata_bytes(self) -> int:
        total = self._current.metadata_bytes()
        if self._previous is not None:
            total += self._previous.metadata_bytes()
        return super().metadata_bytes() + total
