"""Cache-policy framework.

Every caching algorithm in the paper — the seven SOTA baselines, the
prototype baselines and LHR itself — is expressed as a subclass of
:class:`CachePolicy`.  The base class owns the byte-accurate cache state
(what is cached, how many bytes are used) and the admission/eviction
control flow; subclasses supply the policy logic through four hooks:

* ``_should_admit(req)``  — admission decision on a miss (default: admit).
* ``_select_victim(req)`` — which cached object to evict when space is
  needed (abstract).
* ``_on_hit(req)`` / ``_on_access(req)`` / ``_on_admit(req)`` /
  ``_on_evict(obj_id)`` — bookkeeping notifications.

The framework follows the paper's accounting rules: an object larger than
the cache is never admitted, every miss costs its size in WAN traffic
regardless of admission, and per-policy metadata is reported via
``metadata_bytes`` so experiments can deduct it from usable capacity
(Section 7.1 "Overhead").
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.obs import NULL_OBS, Observation
from repro.obs.trace import DecisionTracer
from repro.traces.request import Request

#: Evictions a single admission must force before the policy emits a
#: ``policy.eviction_pressure`` event (bursts below this stay aggregate).
EVICTION_PRESSURE_BURST = 8


class CachePolicy(ABC):
    """Byte-accurate cache with pluggable admission and eviction."""

    #: Human-readable policy name used in result tables.
    name = "base"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._sizes: dict[int, int] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.admissions = 0
        self.evictions = 0
        #: Observation handle; disabled by default (one attribute check).
        self.obs: Observation = NULL_OBS
        #: Decision tracer; None by default.  Attaching one swaps the
        #: ``request`` dispatch (see ``attach_tracer``), so the untraced
        #: path carries zero added per-request cost.
        self.tracer: DecisionTracer | None = None
        #: Victim collector; a list only while a traced admission runs.
        self._trace_victims: list[int] | None = None
        #: True when this instance must not run a native scalar kernel
        #: (see ``_restrict_scalar_kernel``).
        self._scalar_kernel_blocked = False

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_objects(self) -> int:
        return len(self._sizes)

    def contains(self, obj_id: int) -> bool:
        return obj_id in self._sizes

    def cached_objects(self) -> dict[int, int]:
        """Snapshot of ``obj_id -> size`` for everything currently cached."""
        return dict(self._sizes)

    def request(self, req: Request) -> bool:
        """Process one request; return True on a cache hit."""
        self._on_access(req)
        if req.obj_id in self._sizes:
            self.hits += 1
            self.hit_bytes += req.size
            self._on_hit(req)
            return True
        self.misses += 1
        self.miss_bytes += req.size
        self._on_miss(req)
        if req.size <= self.capacity and self._should_admit(req):
            self._admit(req)
        return False

    def _request_traced(self, req: Request) -> bool:
        """The ``request`` control flow with decision recording.

        Identical to the fast path except that the admission verdict,
        its inputs (``decision_inputs``) and any eviction victims are
        captured and handed to the tracer.  Installed over ``request``
        via the instance dict by ``attach_tracer``.
        """
        tracer = self.tracer
        self._on_access(req)
        if req.obj_id in self._sizes:
            self.hits += 1
            self.hit_bytes += req.size
            self._on_hit(req)
            probability, threshold, rank = self.decision_inputs(req)
            tracer.observe(
                req,
                hit=True,
                probability=probability,
                threshold=threshold,
                hazard_rank=rank,
            )
            return True
        self.misses += 1
        self.miss_bytes += req.size
        self._on_miss(req)
        probability, threshold, rank = self.decision_inputs(req)
        admitted = req.size <= self.capacity and self._should_admit(req)
        victims: tuple[int, ...] = ()
        if admitted:
            self._trace_victims = []
            self._remove = self._capture_remove
            try:
                self._admit(req)
            finally:
                victims = tuple(self._trace_victims)
                self._trace_victims = None
                del self.__dict__["_remove"]
        tracer.observe(
            req,
            hit=False,
            admitted=admitted,
            probability=probability,
            threshold=threshold,
            hazard_rank=rank,
            victims=victims,
        )
        return False

    def request_scalar(
        self, obj_id: int, size: int, time: float, index: int = -1
    ) -> bool:
        """Process one request given as scalars; return True on a hit.

        This is the columnar engine's entry point: ``replay_into`` drives
        a :class:`~repro.traces.packed.PackedTrace` through it without
        allocating per-request ``Request`` objects.  The default shim
        materializes a ``Request`` and defers to :meth:`request`, so every
        policy supports the fast path out of the box; hot policies
        override it with an allocation-free kernel that replicates the
        ``request`` control flow exactly (the equivalence suite pins the
        two paths to bit-identical hit/miss streams).

        While a tracer or an enabled observation handle is attached, any
        native kernel is shadowed back to this shim through the instance
        dict — kernels skip tracing hooks and eviction-pressure events,
        so instrumented runs must flow through ``request``.
        """
        return self.request(Request(time, obj_id, size, index))

    def replay_span(self, obj_ids, sizes, times, begin: int, end: int) -> None:
        """Replay requests ``[begin, end)`` given as parallel scalar columns.

        The columnar engine feeds whole bookkeeping-free chunks through
        this so policies can amortize dispatch: the default walks the span
        through :meth:`request_scalar` (honouring any instance-pinned
        shim), while hot policies override it with a loop whose state
        lives entirely in locals and whose counters are written back once
        at the span edge.  The engine only reads counters at span
        boundaries, so deferred write-back is observationally identical.
        """
        request_scalar = self.request_scalar
        for i in range(begin, end):
            request_scalar(obj_ids[i], sizes[i], times[i], i)

    def _restrict_scalar_kernel(self, *kernel_classes: type) -> None:
        """Keep a subclass off an inherited native scalar kernel.

        A native ``request_scalar`` (or ``replay_span``) inlines the base
        control flow and the parent's hooks; a subclass overriding any
        hook (or ``request`` itself) would silently lose its behaviour on
        the fast path.  Kernel-bearing classes call this from
        ``__init__`` with the exact classes the kernel was written for;
        any other ``type(self)`` gets the safe ``Request``-wrapping shim
        pinned instead.
        """
        if type(self) not in kernel_classes:
            self._scalar_kernel_blocked = True
            self.__dict__["request_scalar"] = CachePolicy.request_scalar.__get__(
                self
            )
            self.__dict__["replay_span"] = CachePolicy.replay_span.__get__(self)

    def _sync_scalar_dispatch(self) -> None:
        """Pin or unpin the scalar shim to match instrumentation state.

        Called by ``attach_observation``/``attach_tracer``: native kernels
        bypass decision tracing and eviction-pressure events, so while
        either is active ``request_scalar`` and ``replay_span`` must
        resolve to the base implementations (which route through
        ``request``).  Detaching restores the class kernels unless the
        instance is permanently restricted.
        """
        if (
            self._scalar_kernel_blocked
            or self.tracer is not None
            or self.obs.enabled
        ):
            self.__dict__["request_scalar"] = CachePolicy.request_scalar.__get__(
                self
            )
            self.__dict__["replay_span"] = CachePolicy.replay_span.__get__(self)
        else:
            self.__dict__.pop("request_scalar", None)
            self.__dict__.pop("replay_span", None)

    def process(self, requests) -> None:
        """Convenience: run a request iterable through the cache."""
        for req in requests:
            self.request(req)

    @property
    def object_hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        total = self.hit_bytes + self.miss_bytes
        return self.hit_bytes / total if total else 0.0

    def metadata_bytes(self) -> int:
        """Approximate policy metadata footprint for overhead accounting.

        The default charges a conservative 64 bytes per cached object for
        the id/size bookkeeping; subclasses add their own structures.
        """
        return 64 * len(self._sizes)

    def attach_observation(self, obs: Observation) -> None:
        """Point this policy's instrumentation at ``obs``.

        Subclasses with internal components that observe (LHR's detector,
        threshold estimator, HRO bound) override this to propagate the
        handle; they must call ``super().attach_observation(obs)``.
        """
        self.obs = obs
        self._sync_scalar_dispatch()

    def attach_tracer(self, tracer: DecisionTracer | None) -> None:
        """Record every admission/eviction decision into ``tracer``.

        Attaching shadows ``request`` with ``_request_traced`` through
        the instance dict, so untraced policies run the seed's exact
        instruction stream — no per-request guard on the disabled path
        (``bench_obs_overhead`` asserts this stays true).

        Subclasses whose decision inputs need extra bookkeeping (LHR's
        hazard-rank tracking) override this; they must call
        ``super().attach_tracer(tracer)``.  Pass ``None`` to detach.
        """
        self.tracer = tracer
        if tracer is None:
            self.__dict__.pop("request", None)
            self._sync_scalar_dispatch()
            return
        if type(self).request is not CachePolicy.request:
            raise ValueError(
                f"{self.name}: request() is overridden, so decision "
                "tracing cannot see its admissions; tracing supports "
                "only policies on the base control flow"
            )
        self.request = self._request_traced
        self._sync_scalar_dispatch()

    def decision_inputs(
        self, req: Request
    ) -> tuple[float | None, float | None, int | None]:
        """The ``(probability, threshold, hazard_rank)`` inputs behind the
        decision for ``req``, for decision-trace records.  Policies
        without a probabilistic admission model return all-``None``.
        """
        return (None, None, None)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _on_access(self, req: Request) -> None:
        """Called for every request, hit or miss, before the lookup result
        is known to the caller.  Feature trackers live here."""

    def _on_hit(self, req: Request) -> None:
        """Called when ``req`` hits."""

    def _on_miss(self, req: Request) -> None:
        """Called when ``req`` misses (before any admission decision)."""

    def _should_admit(self, req: Request) -> bool:
        """Admission decision for a missed object that fits in the cache."""
        return True

    def _on_admit(self, req: Request) -> None:
        """Called after ``req.obj_id`` has been inserted."""

    def _on_evict(self, obj_id: int) -> None:
        """Called after ``obj_id`` has been removed."""

    @abstractmethod
    def _select_victim(self, incoming: Request) -> int:
        """Return the obj_id to evict to make room for ``incoming``.

        Only called while the cache genuinely needs space; must return a
        currently cached object id.
        """

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------

    def _admit(self, req: Request) -> None:
        victims = 0
        while self._used + req.size > self.capacity:
            victim = self._select_victim(req)
            if victim not in self._sizes:
                raise RuntimeError(
                    f"{self.name}: victim {victim} is not cached"
                )
            self._remove(victim)
            victims += 1
        self._sizes[req.obj_id] = req.size
        self._used += req.size
        self.admissions += 1
        if victims and self.obs.enabled:
            self.obs.registry.histogram(
                "policy_evictions_per_admission",
                help="evictions forced by each admission that evicted",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            ).observe(victims)
            if victims >= EVICTION_PRESSURE_BURST:
                self.obs.emit(
                    "policy.eviction_pressure",
                    policy=self.name,
                    time=req.time,
                    obj_id=req.obj_id,
                    size=req.size,
                    victims=victims,
                    used_bytes=self._used,
                    capacity=self.capacity,
                )
        self._on_admit(req)

    def _remove(self, obj_id: int) -> None:
        size = self._sizes.pop(obj_id)
        self._used -= size
        self.evictions += 1
        self._on_evict(obj_id)

    def _capture_remove(self, obj_id: int) -> None:
        """``_remove`` plus victim capture; shadows ``_remove`` through
        the instance dict only while a traced admission is in flight, so
        untraced evictions pay no guard."""
        self._trace_victims.append(obj_id)
        type(self)._remove(self, obj_id)


class NoCache(CachePolicy):
    """Degenerate policy that never admits anything (admit-nothing model).

    Useful as a floor in experiments and as the "simple admit-nothing
    model" Section 4.2 mentions.
    """

    name = "no-cache"

    def _should_admit(self, req: Request) -> bool:
        return False

    def _select_victim(self, incoming: Request) -> int:
        raise RuntimeError("no-cache never stores objects")
