"""Caching policies: the paper's seven SOTA baselines plus supporting
classics, and a registry for building policies by name in experiments.

The seven best-performing SOTAs reported in the paper (Section 6.2) are
LRB, Hawkeye, LRU, LRU-4, LFU-DA, AdaptSize and B-LRU; LHR itself lives
in :mod:`repro.core.lhr`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.policies.adaptsize import AdaptSizeCache
from repro.policies.arc import ArcCache
from repro.policies.base import CachePolicy, NoCache
from repro.policies.blru import BloomLruCache
from repro.policies.classic import (
    FifoCache,
    GdsCache,
    GdsfCache,
    LfuCache,
    LfuDaCache,
    LruCache,
    LruKCache,
    RandomCache,
)
from repro.policies.hawkeye import HawkeyeCache
from repro.policies.hyperbolic import HyperbolicCache
from repro.policies.lfo import LfoCache
from repro.policies.lhd import LhdCache
from repro.policies.lrb import LrbCache
from repro.policies.s4lru import S4LruCache
from repro.policies.secondhit import SecondHitCache
from repro.policies.tinylfu import TinyLfuCache, WTinyLfuCache

#: Policy constructors by canonical name; all accept ``capacity`` first.
POLICY_REGISTRY: dict[str, Callable[..., CachePolicy]] = {
    "fifo": FifoCache,
    "random": RandomCache,
    "lru": LruCache,
    "lru-2": lambda capacity, k=2, **kw: LruKCache(capacity, k=k, **kw),
    "lru-4": lambda capacity, k=4, **kw: LruKCache(capacity, k=k, **kw),
    "lfu": LfuCache,
    "lfu-da": LfuDaCache,
    "gds": GdsCache,
    "gdsf": GdsfCache,
    "lhd": LhdCache,
    "s4lru": S4LruCache,
    "hyperbolic": HyperbolicCache,
    "secondhit": SecondHitCache,
    "arc": ArcCache,
    "adaptsize": AdaptSizeCache,
    "b-lru": BloomLruCache,
    "tinylfu": TinyLfuCache,
    "w-tinylfu": WTinyLfuCache,
    "hawkeye": HawkeyeCache,
    "lrb": LrbCache,
    "lfo": LfoCache,
    "no-cache": NoCache,
}

#: The seven SOTA baselines of the paper's evaluation (Section 6.2).
SOTA_POLICIES: tuple[str, ...] = (
    "lrb",
    "hawkeye",
    "lru",
    "lru-4",
    "lfu-da",
    "adaptsize",
    "b-lru",
)


def make_policy(name: str, capacity: int, **kwargs) -> CachePolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICY_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return factory(capacity, **kwargs)


__all__ = [
    "AdaptSizeCache",
    "ArcCache",
    "BloomLruCache",
    "CachePolicy",
    "FifoCache",
    "GdsCache",
    "GdsfCache",
    "HawkeyeCache",
    "HyperbolicCache",
    "LfoCache",
    "LfuCache",
    "LfuDaCache",
    "LhdCache",
    "LrbCache",
    "LruCache",
    "LruKCache",
    "NoCache",
    "POLICY_REGISTRY",
    "RandomCache",
    "S4LruCache",
    "SOTA_POLICIES",
    "SecondHitCache",
    "TinyLfuCache",
    "WTinyLfuCache",
    "make_policy",
]
