"""LRB — Learning Relaxed Bélády (Song, Berger, Li, Lloyd, NSDI '20).

LRB relaxes Bélády's rule: instead of evicting the object with the single
farthest next request, evicting *any* object whose next request lies
beyond a "Bélády boundary" is good enough.  That relaxation makes the
oracle learnable:

* For every request inside a sliding *memory window*, LRB later learns
  the true time-to-next-request (or "beyond boundary" if none arrives
  within the window) and uses it as a regression label.
* A GBM predicts log(time-to-next-request) from per-object features:
  recent inter-request deltas, exponentially decayed counters (EDCs),
  object size and request count.
* On eviction, LRB samples ``num_candidates`` cached objects, predicts
  their next-request times and evicts the farthest (preferring any
  predicted beyond the boundary).

Admission is admit-all; LRB is an eviction policy.  This mirrors the
open-source LRB simulator's design, with the same GBM family implemented
in :mod:`repro.core.gbm`.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.gbm import GradientBoostingRegressor
from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.indexed_set import IndexedSet

#: Number of past inter-request deltas used as features.
_NUM_DELTAS = 8
#: Number of exponentially decayed counters and their half-life bases.
_NUM_EDCS = 4


class _ObjectState:
    """Per-object feature state tracked by LRB."""

    __slots__ = ("deltas", "last_time", "count", "size", "edcs")

    def __init__(self, size: int):
        self.deltas: deque[float] = deque(maxlen=_NUM_DELTAS)
        self.last_time = -1.0
        self.count = 0
        self.size = size
        self.edcs = [0.0] * _NUM_EDCS


class LrbCache(CachePolicy):
    """Relaxed-Bélády eviction with a GBM next-request-time predictor."""

    name = "lrb"

    def __init__(
        self,
        capacity: int,
        memory_window: float | None = None,
        num_candidates: int = 64,
        training_batch: int = 8_192,
        max_training_data: int = 32_768,
        seed: int = 0,
        gbm_params: dict | None = None,
    ):
        super().__init__(capacity)
        #: Bélády boundary in seconds; ``None`` = auto (set from trace pace).
        self.memory_window = memory_window
        self._num_candidates = num_candidates
        self._training_batch = training_batch
        self._max_training_data = max_training_data
        self._rng = np.random.default_rng(seed)
        self._gbm_params = gbm_params or {
            "n_estimators": 16,
            "max_depth": 4,
            "learning_rate": 0.3,
            "subsample": 0.8,
            "seed": seed,
        }
        self._model: GradientBoostingRegressor | None = None
        self._states: dict[int, _ObjectState] = {}
        self._cached = IndexedSet()
        # Pending samples: feature row frozen at request time, waiting for
        # the next request (or window expiry) to supply the label.
        self._pending: dict[int, tuple[float, np.ndarray]] = {}
        self._train_features: list[np.ndarray] = []
        self._train_labels: list[float] = []
        self._samples_since_fit = 0
        self._first_time: float | None = None
        self._trainings = 0

    # ------------------------------------------------------------------
    # Feature handling
    # ------------------------------------------------------------------

    def _features(self, state: _ObjectState, now: float) -> np.ndarray:
        row = np.empty(_NUM_DELTAS + _NUM_EDCS + 3, dtype=np.float64)
        age = now - state.last_time if state.last_time >= 0 else self._window(now)
        deltas = list(state.deltas)
        for i in range(_NUM_DELTAS):
            row[i] = deltas[-1 - i] if i < len(deltas) else self._window(now)
        row[_NUM_DELTAS : _NUM_DELTAS + _NUM_EDCS] = state.edcs
        row[-3] = math.log1p(state.size)
        row[-2] = state.count
        row[-1] = age
        return row

    def _window(self, now: float) -> float:
        if self.memory_window is not None:
            return self.memory_window
        if self._first_time is None or now <= self._first_time:
            return 1.0
        # Auto boundary: a quarter of the elapsed trace so far, clamped.
        return max((now - self._first_time) * 0.25, 1.0)

    def _touch(self, req: Request) -> None:
        state = self._states.get(req.obj_id)
        if state is None:
            state = _ObjectState(req.size)
            self._states[req.obj_id] = state
        if state.last_time >= 0:
            delta = req.time - state.last_time
            state.deltas.append(delta)
            for i in range(_NUM_EDCS):
                half_life = 10.0 ** (i + 1)
                decay = 2.0 ** (-delta / half_life)
                state.edcs[i] = 1.0 + state.edcs[i] * decay
        else:
            for i in range(_NUM_EDCS):
                state.edcs[i] = 1.0
        state.count += 1
        state.last_time = req.time

    # ------------------------------------------------------------------
    # Training data collection
    # ------------------------------------------------------------------

    def _label_pending(self, req: Request) -> None:
        pending = self._pending.pop(req.obj_id, None)
        if pending is not None:
            issued_at, features = pending
            self._add_sample(features, req.time - issued_at)

    def _expire_pending(self, now: float) -> None:
        window = self._window(now)
        expired = [
            oid
            for oid, (issued_at, _) in self._pending.items()
            if now - issued_at > window
        ]
        for oid in expired:
            issued_at, features = self._pending.pop(oid)
            # Label: beyond the Bélády boundary (2x window as in LRB).
            self._add_sample(features, 2.0 * window)

    def _add_sample(self, features: np.ndarray, time_to_next: float) -> None:
        self._train_features.append(features)
        self._train_labels.append(math.log1p(max(time_to_next, 0.0)))
        self._samples_since_fit += 1
        if len(self._train_features) > self._max_training_data:
            drop = len(self._train_features) - self._max_training_data
            del self._train_features[:drop]
            del self._train_labels[:drop]
        if self._samples_since_fit >= self._training_batch:
            self._fit()

    def _fit(self) -> None:
        if len(self._train_features) < 256:
            return
        features = np.vstack(self._train_features)
        labels = np.asarray(self._train_labels)
        model = GradientBoostingRegressor(**self._gbm_params)
        self._model = model.fit(features, labels)
        self._samples_since_fit = 0
        self._trainings += 1

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    def _on_access(self, req: Request) -> None:
        if self._first_time is None:
            self._first_time = req.time
        self._label_pending(req)
        self._touch(req)
        self._pending[req.obj_id] = (req.time, self._features(self._states[req.obj_id], req.time))
        if (req.index >= 0 and req.index % 1024 == 0) or len(self._pending) > 4 * max(
            len(self._cached), 1024
        ):
            self._expire_pending(req.time)

    def _on_admit(self, req: Request) -> None:
        self._cached.add(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        self._cached.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        candidates = self._cached.sample(self._num_candidates, self._rng)
        if self._model is None or len(candidates) == 1:
            # Before the first model: farthest last-access (LRU-like).
            return min(
                candidates, key=lambda oid: self._states[oid].last_time
            )
        rows = np.vstack(
            [self._features(self._states[oid], incoming.time) for oid in candidates]
        )
        predictions = self._model.predict(rows)
        return candidates[int(np.argmax(predictions))]

    @property
    def trainings(self) -> int:
        """Number of model (re)fits so far."""
        return self._trainings

    def metadata_bytes(self) -> int:
        per_state = 8 * (_NUM_DELTAS + _NUM_EDCS + 3)
        total = per_state * len(self._states)
        total += 8 * (_NUM_DELTAS + _NUM_EDCS + 3 + 1) * len(self._train_features)
        total += (16 + 8 * (_NUM_DELTAS + _NUM_EDCS + 3)) * len(self._pending)
        if self._model is not None:
            total += self._model.metadata_bytes()
        return super().metadata_bytes() + total
