"""SecondHit — cache-on-second-request admission (Maggs & Sitaraman,
"Algorithmic Nuggets in Content Delivery", 2015).

Akamai's production admission rule: an object enters the cache only on
its second request within a recency horizon.  Unlike B-LRU's Bloom
filter, the original uses an exact (bounded) table of recently seen
object ids; this implementation keeps an LRU-ordered table of the last
``history_items`` first-seen ids with an optional time horizon.
Eviction is plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class SecondHitCache(CachePolicy):
    """Exact-history cache-on-second-request with LRU eviction."""

    name = "secondhit"

    def __init__(
        self,
        capacity: int,
        history_items: int = 100_000,
        horizon_seconds: float | None = None,
    ):
        super().__init__(capacity)
        if history_items <= 0:
            raise ValueError("history_items must be positive")
        self._history_items = history_items
        self._horizon = horizon_seconds
        self._seen: OrderedDict[int, float] = OrderedDict()
        self._order: OrderedDict[int, None] = OrderedDict()

    def _seen_recently(self, req: Request) -> bool:
        seen_at = self._seen.get(req.obj_id)
        if seen_at is None:
            return False
        if self._horizon is not None and req.time - seen_at > self._horizon:
            del self._seen[req.obj_id]
            return False
        return True

    def _remember(self, req: Request) -> None:
        self._seen[req.obj_id] = req.time
        self._seen.move_to_end(req.obj_id)
        while len(self._seen) > self._history_items:
            self._seen.popitem(last=False)

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)
        self._remember(req)

    def _should_admit(self, req: Request) -> bool:
        admit = self._seen_recently(req)
        self._remember(req)
        return admit

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._seen)
