"""S4LRU — quadruply-segmented LRU (Huang et al., "An Analysis of
Facebook Photo Caching", SOSP '13 — the paper's citation [34]).

The cache is split into ``num_segments`` LRU queues.  Objects enter at
the lowest segment; a hit promotes the object one segment up; overflow
at segment ``k`` demotes its LRU object to segment ``k-1`` (and out of
the cache at segment 0).  Repeatedly-hit objects climb to the protected
top while one-hit objects wash out of the bottom quickly — a cheap
frequency gradient without counters.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class _Segment:
    """LRU-ordered byte-accounted queue (one level of the gradient)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._items: OrderedDict[int, int] = OrderedDict()
        self.bytes = 0

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def add(self, obj_id: int, size: int) -> None:
        self._items[obj_id] = size
        self.bytes += size

    def touch(self, obj_id: int) -> None:
        self._items.move_to_end(obj_id)

    def remove(self, obj_id: int) -> int:
        size = self._items.pop(obj_id)
        self.bytes -= size
        return size

    def pop_lru(self) -> tuple[int, int]:
        obj_id, size = next(iter(self._items.items()))
        del self._items[obj_id]
        self.bytes -= size
        return obj_id, size

    @property
    def overflowing(self) -> bool:
        return self.bytes > self.capacity and len(self._items) > 1


class S4LruCache(CachePolicy):
    """Segmented LRU with promotion-on-hit and cascading demotion."""

    name = "s4lru"

    def __init__(self, capacity: int, num_segments: int = 4):
        if num_segments < 2:
            raise ValueError("num_segments must be >= 2")
        super().__init__(capacity)
        per_segment = max(capacity // num_segments, 1)
        self._segments = [_Segment(per_segment) for _ in range(num_segments)]
        self._level: dict[int, int] = {}

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def segment_of(self, obj_id: int) -> int | None:
        """Which segment (0 = lowest) currently holds the object."""
        return self._level.get(obj_id)

    def _place(self, obj_id: int, size: int, level: int) -> None:
        self._segments[level].add(obj_id, size)
        self._level[obj_id] = level
        self._cascade(level)

    def _cascade(self, level: int) -> None:
        # Demote overflow downward; segment 0's overflow leaves the cache.
        for current in range(level, -1, -1):
            segment = self._segments[current]
            while segment.overflowing:
                victim, size = segment.pop_lru()
                if current > 0:
                    self._segments[current - 1].add(victim, size)
                    self._level[victim] = current - 1
                else:
                    del self._level[victim]
                    if self.contains(victim):
                        self._remove(victim)

    def _on_hit(self, req: Request) -> None:
        level = self._level[req.obj_id]
        if level + 1 < len(self._segments):
            size = self._segments[level].remove(req.obj_id)
            self._place(req.obj_id, size, level + 1)
        else:
            self._segments[level].touch(req.obj_id)

    def _on_admit(self, req: Request) -> None:
        self._place(req.obj_id, req.size, 0)

    def _on_evict(self, obj_id: int) -> None:
        level = self._level.pop(obj_id, None)
        if level is not None and obj_id in self._segments[level]:
            self._segments[level].remove(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        # The base eviction loop needs a victim: take the LRU of the
        # lowest non-empty segment.
        for segment in self._segments:
            if len(segment):
                return next(iter(segment._items))
        raise RuntimeError("s4lru segments out of sync with cache state")

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 8 * len(self._level)
