"""TinyLFU and W-TinyLFU (Einziger, Friedman, Manes).

TinyLFU is a frequency-based admission filter: on a miss, the incoming
object is admitted only if its sketch-estimated frequency exceeds that of
the would-be eviction victim.  W-TinyLFU ("windowed") prepends a small
unfiltered LRU window (~1% of capacity) and protects the main region with
a segmented LRU, which fixes TinyLFU's cold-start bias against new items.
W-TinyLFU is Caffeine's default policy — the baseline of Appendix A.3.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import CachePolicy
from repro.traces.request import Request
from repro.util.sketch import CountMinSketch


class TinyLfuCache(CachePolicy):
    """Plain TinyLFU: LRU eviction with frequency-duel admission."""

    name = "tinylfu"

    def __init__(
        self,
        capacity: int,
        sketch_width: int = 16_384,
        sample_multiplier: int = 10,
    ):
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        # Aging is driven externally: Caffeine halves the sketch every
        # ~10x as many increments as the cache holds entries, which keeps
        # the frequency window proportional to cache churn regardless of
        # object sizes.
        self._sketch = CountMinSketch(width=sketch_width, depth=4, sample_size=0)
        self._sample_multiplier = sample_multiplier
        self._increments = 0

    def _on_access(self, req: Request) -> None:
        self._sketch.add(req.obj_id)
        self._increments += 1
        if self._increments >= max(1024, self._sample_multiplier * max(self.num_objects, 1)):
            self._sketch._age()
            self._increments = 0

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)

    def _should_admit(self, req: Request) -> bool:
        if self._used + req.size <= self.capacity or not self._order:
            return True
        victim = next(iter(self._order))
        return self._sketch.estimate(req.obj_id) > self._sketch.estimate(victim)

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + self._sketch.metadata_bytes()


class _Segment:
    """Byte-accounted LRU segment for W-TinyLFU's window/probation/protected."""

    def __init__(self) -> None:
        self._items: OrderedDict[int, int] = OrderedDict()
        self.bytes = 0

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def add(self, obj_id: int, size: int) -> None:
        self._items[obj_id] = size
        self.bytes += size

    def touch(self, obj_id: int) -> None:
        self._items.move_to_end(obj_id)

    def remove(self, obj_id: int) -> int:
        size = self._items.pop(obj_id)
        self.bytes -= size
        return size

    def lru(self) -> int:
        return next(iter(self._items))


class WTinyLfuCache(CachePolicy):
    """W-TinyLFU: admission window + TinyLFU-filtered segmented-LRU main.

    Caffeine's default window is 1% of capacity, which is tuned for
    unit-size in-memory entries; with CDN-size objects (tens of MB) a 1%
    window holds at most a couple of objects and the policy degenerates,
    so the default here is 10% (Caffeine's adaptive sizing moves toward
    larger windows on such workloads too).  The main region is 20%
    probation / 80% protected, and ties in the frequency duel go to the
    fresher candidate.
    """

    name = "w-tinylfu"

    def __init__(
        self,
        capacity: int,
        window_fraction: float = 0.1,
        protected_fraction: float = 0.8,
        sketch_width: int = 16_384,
        sample_multiplier: int = 10,
    ):
        super().__init__(capacity)
        if not 0.0 < window_fraction < 1.0:
            raise ValueError("window_fraction must lie in (0, 1)")
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must lie in (0, 1)")
        self._window_capacity = max(int(capacity * window_fraction), 1)
        main_capacity = capacity - self._window_capacity
        self._protected_capacity = int(main_capacity * protected_fraction)
        self._window = _Segment()
        self._probation = _Segment()
        self._protected = _Segment()
        self._sketch = CountMinSketch(width=sketch_width, depth=4, sample_size=0)
        self._sample_multiplier = sample_multiplier
        self._increments = 0

    def _on_access(self, req: Request) -> None:
        self._sketch.add(req.obj_id)
        self._increments += 1
        if self._increments >= max(1024, self._sample_multiplier * max(self.num_objects, 1)):
            self._sketch._age()
            self._increments = 0

    def _on_hit(self, req: Request) -> None:
        if req.obj_id in self._window:
            self._window.touch(req.obj_id)
        elif req.obj_id in self._protected:
            self._protected.touch(req.obj_id)
        else:
            # Probation hit: promote to protected, demoting overflow back.
            size = self._probation.remove(req.obj_id)
            self._protected.add(req.obj_id, size)
            while self._protected.bytes > self._protected_capacity and len(
                self._protected
            ) > 1:
                demoted = self._protected.lru()
                demoted_size = self._protected.remove(demoted)
                self._probation.add(demoted, demoted_size)

    def _should_admit(self, req: Request) -> bool:
        # The TinyLFU duel runs at admission time: when the cache is full,
        # the incoming object must beat the would-be victim's frequency to
        # enter.  While there is free space everything is admitted (the
        # window absorbs new arrivals unfiltered).
        if self._used + req.size <= self.capacity:
            return True
        victim = self._select_victim(req)
        return self._sketch.estimate(req.obj_id) >= self._sketch.estimate(victim)

    def _on_admit(self, req: Request) -> None:
        self._window.add(req.obj_id, req.size)
        # Window overflow spills into probation (no drop — eviction is the
        # base loop's job, driven by _select_victim).
        while self._window.bytes > self._window_capacity and len(self._window) > 1:
            spilled = self._window.lru()
            size = self._window.remove(spilled)
            self._probation.add(spilled, size)

    def _on_evict(self, obj_id: int) -> None:
        for segment in (self._window, self._probation, self._protected):
            if obj_id in segment:
                segment.remove(obj_id)
                return

    def _select_victim(self, incoming: Request) -> int:
        if len(self._probation):
            return self._probation.lru()
        if len(self._protected):
            return self._protected.lru()
        return self._window.lru()

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + self._sketch.metadata_bytes()
