"""Classic eviction policies: FIFO, RANDOM, LRU, LRU-K, LFU, LFU-DA, GDSF.

These are the conventional baselines from Section 8 ("Conventional
caching algorithms").  LRU-4, LFU-DA and GDSF are among the paper's seven
best-performing SOTAs (Section 6.2).
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class FifoCache(CachePolicy):
    """First-in first-out eviction."""

    name = "fifo"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._queue: deque[int] = deque()

    def _on_admit(self, req: Request) -> None:
        self._queue.append(req.obj_id)

    def _select_victim(self, incoming: Request) -> int:
        while self._queue:
            candidate = self._queue[0]
            if self.contains(candidate):
                return self._queue.popleft()
            self._queue.popleft()
        raise RuntimeError("fifo queue out of sync with cache state")


class RandomCache(CachePolicy):
    """Uniform-random eviction; the memoryless baseline."""

    name = "random"

    def __init__(self, capacity: int, seed: int = 0):
        super().__init__(capacity)
        self._rng = np.random.default_rng(seed)
        self._order: list[int] = []
        self._slot: dict[int, int] = {}

    def _on_admit(self, req: Request) -> None:
        self._slot[req.obj_id] = len(self._order)
        self._order.append(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        slot = self._slot.pop(obj_id)
        last = self._order.pop()
        if last != obj_id:
            self._order[slot] = last
            self._slot[last] = slot

    def _select_victim(self, incoming: Request) -> int:
        index = int(self._rng.integers(0, len(self._order)))
        return self._order[index]


class LruCache(CachePolicy):
    """Least Recently Used — the production default the paper argues against."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        self._restrict_scalar_kernel(LruCache)

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))

    def request_scalar(
        self, obj_id: int, size: int, time: float, index: int = -1
    ) -> bool:
        # Native kernel: CachePolicy.request with the LRU hooks inlined.
        # The equivalence suite pins it bit-identical to the object path.
        sizes = self._sizes
        order = self._order
        if obj_id in sizes:
            self.hits += 1
            self.hit_bytes += size
            order.move_to_end(obj_id)
            return True
        self.misses += 1
        self.miss_bytes += size
        capacity = self.capacity
        if size <= capacity:
            used = self._used + size
            while used > capacity:
                victim, _ = order.popitem(last=False)
                used -= sizes.pop(victim)
                self.evictions += 1
            self._used = used
            sizes[obj_id] = size
            self.admissions += 1
            order[obj_id] = None
        return False

    def replay_span(self, obj_ids, sizes_col, times, begin: int, end: int) -> None:
        # Native span kernel: the scalar kernel's loop with every hot name
        # held in a local and the counters written back once at the span
        # edge — the engine reads them only at span boundaries.
        sizes = self._sizes
        order = self._order
        move_to_end = order.move_to_end
        popitem = order.popitem
        pop_size = sizes.pop
        capacity = self.capacity
        used = self._used
        hits = hit_bytes = misses = miss_bytes = evictions = admissions = 0
        for i in range(begin, end):
            obj_id = obj_ids[i]
            size = sizes_col[i]
            if obj_id in sizes:
                hits += 1
                hit_bytes += size
                move_to_end(obj_id)
            else:
                misses += 1
                miss_bytes += size
                if size <= capacity:
                    used += size
                    while used > capacity:
                        victim, _ = popitem(last=False)
                        used -= pop_size(victim)
                        evictions += 1
                    sizes[obj_id] = size
                    admissions += 1
                    order[obj_id] = None
        self._used = used
        self.hits += hits
        self.hit_bytes += hit_bytes
        self.misses += misses
        self.miss_bytes += miss_bytes
        self.evictions += evictions
        self.admissions += admissions


class LruKCache(CachePolicy):
    """LRU-K (O'Neil et al.): evict by backward-K reference time.

    The victim is the object whose K-th most recent reference is oldest;
    objects with fewer than K references rank before all fully-referenced
    objects (classic LRU-K tie-break), falling back to plain LRU order
    among themselves.  ``k=4`` gives the paper's LRU-4 baseline.
    """

    name = "lru-k"

    def __init__(self, capacity: int, k: int = 4):
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(capacity)
        self.k = k
        self.name = f"lru-{k}"
        self._history: dict[int, deque[float]] = {}
        #: Occupied history slots — kept incrementally so metadata_bytes
        #: stays O(1) under the engine's probe loop (the deques are
        #: maxlen-bounded and never shrink, so the count only grows).
        self._history_slots = 0
        self._heap = _PriorityIndex()
        self._restrict_scalar_kernel(LruKCache)

    def _on_access(self, req: Request) -> None:
        times = self._history.get(req.obj_id)
        if times is None:
            times = deque(maxlen=self.k)
            self._history[req.obj_id] = times
        if len(times) < self.k:
            self._history_slots += 1
        times.append(req.time)
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._backward_k_time(req.obj_id))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._backward_k_time(req.obj_id))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _backward_k_time(self, obj_id: int) -> float:
        times = self._history.get(obj_id)
        if times is None or len(times) < self.k:
            return -np.inf
        return times[0]

    def _select_victim(self, incoming: Request) -> int:
        # Smallest backward-K time first; objects with fewer than K
        # references carry -inf and are evicted first, oldest-pushed first
        # (the heap's FIFO tie-break approximates LRU among them).
        return self._heap.peek_min()

    def request_scalar(
        self, obj_id: int, size: int, time: float, index: int = -1
    ) -> bool:
        # Native kernel mirroring CachePolicy.request + the LRU-K hooks.
        k = self.k
        times = self._history.get(obj_id)
        if times is None:
            times = deque(maxlen=k)
            self._history[obj_id] = times
        if len(times) < k:
            self._history_slots += 1
        times.append(time)
        sizes = self._sizes
        heap = self._heap
        if obj_id in sizes:
            heap.update(obj_id, times[0] if len(times) == k else -np.inf)
            self.hits += 1
            self.hit_bytes += size
            return True
        self.misses += 1
        self.miss_bytes += size
        capacity = self.capacity
        if size <= capacity:
            used = self._used + size
            while used > capacity:
                victim = heap.peek_min()
                if victim not in sizes:
                    raise RuntimeError(
                        f"{self.name}: victim {victim} is not cached"
                    )
                used -= sizes.pop(victim)
                self.evictions += 1
                heap.discard(victim)
            self._used = used
            sizes[obj_id] = size
            self.admissions += 1
            heap.update(obj_id, times[0] if len(times) == k else -np.inf)
        return False

    def replay_span(self, obj_ids, sizes_col, times, begin: int, end: int) -> None:
        # Native span kernel: the scalar kernel's loop with the hot names
        # in locals and counters written back once at the span edge.
        k = self.k
        history = self._history
        history_get = history.get
        sizes = self._sizes
        heap = self._heap
        heap_update = heap.update
        heap_discard = heap.discard
        peek_min = heap.peek_min
        pop_size = sizes.pop
        capacity = self.capacity
        used = self._used
        history_slots = self._history_slots
        neg_inf = -np.inf
        hits = hit_bytes = misses = miss_bytes = evictions = admissions = 0
        for i in range(begin, end):
            obj_id = obj_ids[i]
            size = sizes_col[i]
            times_q = history_get(obj_id)
            if times_q is None:
                times_q = deque(maxlen=k)
                history[obj_id] = times_q
            if len(times_q) < k:
                history_slots += 1
            times_q.append(times[i])
            if obj_id in sizes:
                heap_update(obj_id, times_q[0] if len(times_q) == k else neg_inf)
                hits += 1
                hit_bytes += size
            else:
                misses += 1
                miss_bytes += size
                if size <= capacity:
                    used += size
                    while used > capacity:
                        victim = peek_min()
                        if victim not in sizes:
                            raise RuntimeError(
                                f"{self.name}: victim {victim} is not cached"
                            )
                        used -= pop_size(victim)
                        evictions += 1
                        heap_discard(victim)
                    sizes[obj_id] = size
                    admissions += 1
                    heap_update(
                        obj_id, times_q[0] if len(times_q) == k else neg_inf
                    )
        self._used = used
        self._history_slots = history_slots
        self.hits += hits
        self.hit_bytes += hit_bytes
        self.misses += misses
        self.miss_bytes += miss_bytes
        self.evictions += evictions
        self.admissions += admissions

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 8 * self._history_slots


class LfuCache(CachePolicy):
    """Least Frequently Used with per-object lifetime counts."""

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, float(self._counts[req.obj_id]))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, float(self._counts[req.obj_id]))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        return self._heap.peek_min()

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class LfuDaCache(CachePolicy):
    """LFU with Dynamic Aging (Arlitt et al.) — one of the paper's SOTAs.

    Priority is ``count + L`` where the aging factor ``L`` is raised to the
    priority of each evicted object, so long-resident but stale objects
    eventually lose to newly popular ones.
    """

    name = "lfu-da"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()
        self._age = 0.0
        self._restrict_scalar_kernel(LfuDaCache)

    def _priority(self, obj_id: int) -> float:
        return self._counts.get(obj_id, 0) + self._age

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._priority(req.obj_id))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._priority(req.obj_id))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        victim = self._heap.peek_min()
        self._age = self._heap.priority(victim)
        return victim

    def request_scalar(
        self, obj_id: int, size: int, time: float, index: int = -1
    ) -> bool:
        # Native kernel mirroring CachePolicy.request + the LFU-DA hooks.
        counts = self._counts
        count = counts.get(obj_id, 0) + 1
        counts[obj_id] = count
        sizes = self._sizes
        heap = self._heap
        if obj_id in sizes:
            heap.update(obj_id, count + self._age)
            self.hits += 1
            self.hit_bytes += size
            return True
        self.misses += 1
        self.miss_bytes += size
        capacity = self.capacity
        if size <= capacity:
            used = self._used + size
            while used > capacity:
                victim = heap.peek_min()
                self._age = heap.priority(victim)
                if victim not in sizes:
                    raise RuntimeError(
                        f"{self.name}: victim {victim} is not cached"
                    )
                used -= sizes.pop(victim)
                self.evictions += 1
                heap.discard(victim)
            self._used = used
            sizes[obj_id] = size
            self.admissions += 1
            heap.update(obj_id, count + self._age)
        return False

    def replay_span(self, obj_ids, sizes_col, times, begin: int, end: int) -> None:
        # Native span kernel: the scalar kernel's loop with the hot names
        # in locals; the aging factor rides in a local too and is written
        # back with the counters at the span edge.
        counts = self._counts
        counts_get = counts.get
        sizes = self._sizes
        heap = self._heap
        heap_update = heap.update
        heap_discard = heap.discard
        peek_min = heap.peek_min
        heap_priority = heap.priority
        pop_size = sizes.pop
        capacity = self.capacity
        used = self._used
        age = self._age
        hits = hit_bytes = misses = miss_bytes = evictions = admissions = 0
        for i in range(begin, end):
            obj_id = obj_ids[i]
            size = sizes_col[i]
            count = counts_get(obj_id, 0) + 1
            counts[obj_id] = count
            if obj_id in sizes:
                heap_update(obj_id, count + age)
                hits += 1
                hit_bytes += size
            else:
                misses += 1
                miss_bytes += size
                if size <= capacity:
                    used += size
                    while used > capacity:
                        victim = peek_min()
                        age = heap_priority(victim)
                        if victim not in sizes:
                            raise RuntimeError(
                                f"{self.name}: victim {victim} is not cached"
                            )
                        used -= pop_size(victim)
                        evictions += 1
                        heap_discard(victim)
                    sizes[obj_id] = size
                    admissions += 1
                    heap_update(obj_id, count + age)
        self._age = age
        self._used = used
        self.hits += hits
        self.hit_bytes += hit_bytes
        self.misses += misses
        self.miss_bytes += miss_bytes
        self.evictions += evictions
        self.admissions += admissions

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class GdsfCache(CachePolicy):
    """GreedyDual-Size-Frequency (Cherkasova).

    Priority is ``L + frequency / size``; small, popular objects are
    retained preferentially, which matters on CDN traces whose sizes span
    seven orders of magnitude.
    """

    name = "gdsf"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()
        self._age = 0.0

    def _priority(self, obj_id: int, size: int) -> float:
        return self._age + self._counts.get(obj_id, 0) / size

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._priority(req.obj_id, req.size))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._priority(req.obj_id, req.size))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        victim = self._heap.peek_min()
        self._age = self._heap.priority(victim)
        return victim

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class GdsCache(GdsfCache):
    """GreedyDual-Size (Cao & Irani): ``L + 1/size``, frequency-blind.

    The non-frequency ancestor of GDSF; kept as a baseline to isolate how
    much of GDSF's win comes from frequency vs pure size-awareness.
    """

    name = "gds"

    def _priority(self, obj_id: int, size: int) -> float:
        return self._age + 1.0 / size


class _PriorityIndex:
    """Thin wrapper over LazyHeap with discard-if-present semantics."""

    def __init__(self) -> None:
        from repro.util.heap import LazyHeap

        self._heap = LazyHeap()

    def update(self, key: int, priority: float) -> None:
        self._heap.push(key, priority)

    def discard(self, key: int) -> None:
        if key in self._heap:
            self._heap.remove(key)

    def peek_min(self) -> int:
        return self._heap.peek()[0]

    def priority(self, key: int) -> float:
        return self._heap.priority(key)
