"""Classic eviction policies: FIFO, RANDOM, LRU, LRU-K, LFU, LFU-DA, GDSF.

These are the conventional baselines from Section 8 ("Conventional
caching algorithms").  LRU-4, LFU-DA and GDSF are among the paper's seven
best-performing SOTAs (Section 6.2).
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro.policies.base import CachePolicy
from repro.traces.request import Request


class FifoCache(CachePolicy):
    """First-in first-out eviction."""

    name = "fifo"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._queue: deque[int] = deque()

    def _on_admit(self, req: Request) -> None:
        self._queue.append(req.obj_id)

    def _select_victim(self, incoming: Request) -> int:
        while self._queue:
            candidate = self._queue[0]
            if self.contains(candidate):
                return self._queue.popleft()
            self._queue.popleft()
        raise RuntimeError("fifo queue out of sync with cache state")


class RandomCache(CachePolicy):
    """Uniform-random eviction; the memoryless baseline."""

    name = "random"

    def __init__(self, capacity: int, seed: int = 0):
        super().__init__(capacity)
        self._rng = np.random.default_rng(seed)
        self._order: list[int] = []
        self._slot: dict[int, int] = {}

    def _on_admit(self, req: Request) -> None:
        self._slot[req.obj_id] = len(self._order)
        self._order.append(req.obj_id)

    def _on_evict(self, obj_id: int) -> None:
        slot = self._slot.pop(obj_id)
        last = self._order.pop()
        if last != obj_id:
            self._order[slot] = last
            self._slot[last] = slot

    def _select_victim(self, incoming: Request) -> int:
        index = int(self._rng.integers(0, len(self._order)))
        return self._order[index]


class LruCache(CachePolicy):
    """Least Recently Used — the production default the paper argues against."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def _on_hit(self, req: Request) -> None:
        self._order.move_to_end(req.obj_id)

    def _on_admit(self, req: Request) -> None:
        self._order[req.obj_id] = None

    def _on_evict(self, obj_id: int) -> None:
        self._order.pop(obj_id, None)

    def _select_victim(self, incoming: Request) -> int:
        return next(iter(self._order))


class LruKCache(CachePolicy):
    """LRU-K (O'Neil et al.): evict by backward-K reference time.

    The victim is the object whose K-th most recent reference is oldest;
    objects with fewer than K references rank before all fully-referenced
    objects (classic LRU-K tie-break), falling back to plain LRU order
    among themselves.  ``k=4`` gives the paper's LRU-4 baseline.
    """

    name = "lru-k"

    def __init__(self, capacity: int, k: int = 4):
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(capacity)
        self.k = k
        self.name = f"lru-{k}"
        self._history: dict[int, deque[float]] = {}
        self._heap = _PriorityIndex()

    def _on_access(self, req: Request) -> None:
        times = self._history.get(req.obj_id)
        if times is None:
            times = deque(maxlen=self.k)
            self._history[req.obj_id] = times
        times.append(req.time)
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._backward_k_time(req.obj_id))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._backward_k_time(req.obj_id))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _backward_k_time(self, obj_id: int) -> float:
        times = self._history.get(obj_id)
        if times is None or len(times) < self.k:
            return -np.inf
        return times[0]

    def _select_victim(self, incoming: Request) -> int:
        # Smallest backward-K time first; objects with fewer than K
        # references carry -inf and are evicted first, oldest-pushed first
        # (the heap's FIFO tie-break approximates LRU among them).
        return self._heap.peek_min()

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 8 * sum(
            len(times) for times in self._history.values()
        )


class LfuCache(CachePolicy):
    """Least Frequently Used with per-object lifetime counts."""

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, float(self._counts[req.obj_id]))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, float(self._counts[req.obj_id]))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        return self._heap.peek_min()

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class LfuDaCache(CachePolicy):
    """LFU with Dynamic Aging (Arlitt et al.) — one of the paper's SOTAs.

    Priority is ``count + L`` where the aging factor ``L`` is raised to the
    priority of each evicted object, so long-resident but stale objects
    eventually lose to newly popular ones.
    """

    name = "lfu-da"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()
        self._age = 0.0

    def _priority(self, obj_id: int) -> float:
        return self._counts.get(obj_id, 0) + self._age

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._priority(req.obj_id))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._priority(req.obj_id))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        victim = self._heap.peek_min()
        self._age = self._heap.priority(victim)
        return victim

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class GdsfCache(CachePolicy):
    """GreedyDual-Size-Frequency (Cherkasova).

    Priority is ``L + frequency / size``; small, popular objects are
    retained preferentially, which matters on CDN traces whose sizes span
    seven orders of magnitude.
    """

    name = "gdsf"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[int, int] = {}
        self._heap = _PriorityIndex()
        self._age = 0.0

    def _priority(self, obj_id: int, size: int) -> float:
        return self._age + self._counts.get(obj_id, 0) / size

    def _on_access(self, req: Request) -> None:
        self._counts[req.obj_id] = self._counts.get(req.obj_id, 0) + 1
        if self.contains(req.obj_id):
            self._heap.update(req.obj_id, self._priority(req.obj_id, req.size))

    def _on_admit(self, req: Request) -> None:
        self._heap.update(req.obj_id, self._priority(req.obj_id, req.size))

    def _on_evict(self, obj_id: int) -> None:
        self._heap.discard(obj_id)

    def _select_victim(self, incoming: Request) -> int:
        victim = self._heap.peek_min()
        self._age = self._heap.priority(victim)
        return victim

    def metadata_bytes(self) -> int:
        return super().metadata_bytes() + 16 * len(self._counts)


class GdsCache(GdsfCache):
    """GreedyDual-Size (Cao & Irani): ``L + 1/size``, frequency-blind.

    The non-frequency ancestor of GDSF; kept as a baseline to isolate how
    much of GDSF's win comes from frequency vs pure size-awareness.
    """

    name = "gds"

    def _priority(self, obj_id: int, size: int) -> float:
        return self._age + 1.0 / size


class _PriorityIndex:
    """Thin wrapper over LazyHeap with discard-if-present semantics."""

    def __init__(self) -> None:
        from repro.util.heap import LazyHeap

        self._heap = LazyHeap()

    def update(self, key: int, priority: float) -> None:
        self._heap.push(key, priority)

    def discard(self, key: int) -> None:
        if key in self._heap:
            self._heap.remove(key)

    def peek_min(self) -> int:
        return self._heap.peek()[0]

    def priority(self, key: int) -> float:
        return self._heap.priority(key)
