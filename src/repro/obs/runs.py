"""Persistent run ledger: append-only cross-run experiment tracking.

Every ``simulate`` / ``compare`` / workload-lab / benchmark invocation
can persist a :class:`RunRecord` — run id, UTC timestamp, git revision,
config digest, final metrics snapshot, per-cell results, an event digest
(drift/retrain/stall counts) and the per-window time series — into a
:class:`RunLedger` rooted at a directory.  The ledger is what makes the
paper's longitudinal questions answerable *across* runs: LHR's
advantage over LRU/HRO shows up in per-window hit-ratio trajectories
under drift, and a single end-of-run scalar (or a single hand-committed
baseline file) cannot carry that history.

Layout on disk (append-only; one directory per run)::

    <root>/<run_id>/manifest.json   # provenance + metrics + cells
    <root>/<run_id>/series.npz      # per-cell per-window columns
    <root>/<run_id>/spans.json      # timeline spans (traced runs only)
    <root>/<run_id>/learner.npz     # learner-health columns (telemetry runs)

``run_id`` is ``<UTC timestamp>-<config digest prefix>`` so a plain
lexicographic sort is chronological.  Writes are atomic at the run
granularity: the series file lands first and the manifest is renamed
into place last, so a reader never sees a manifest without its series
and a crashed writer leaves at worst an ignorable manifest-less
directory.

The consumer surface is the ``repro runs`` CLI family (``list`` /
``show`` / ``diff`` / ``export`` / ``check`` / ``gc``), the
``/runs`` endpoint on :class:`~repro.obs.server.ObsServer`, and the
history-aware regression check in :mod:`repro.obs.baseline`
(``repro bench-compare --ledger``).  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import shutil
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.obs.learner import series_to_columns as learner_series_to_columns

RUN_SCHEMA = "repro-run/1"

#: The npz column names stored per cell, in manifest order.  They mirror
#: :class:`~repro.sim.metrics.WindowMetrics` exactly (plus the eviction
#: pressure column the engine tracks per window), so the on-disk series
#: bit-matches the in-memory stream of a seeded run.
SERIES_FIELDS = ("requests", "hits", "hit_bytes", "total_bytes", "evictions")

__all__ = [
    "RUN_SCHEMA",
    "SERIES_FIELDS",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "config_digest",
    "current_git_rev",
    "default_ledger_root",
    "digest_events",
    "diff_records",
    "record_from_results",
    "series_from_results",
]


# ----------------------------------------------------------------------
# Provenance helpers
# ----------------------------------------------------------------------


def config_digest(config: dict) -> str:
    """Stable 16-hex-digit digest of a JSON-able config mapping.

    Canonical JSON (sorted keys, no whitespace variance) in, SHA-256
    prefix out — two runs share a digest iff they share a config.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


_GIT_REV: str | None = None


def current_git_rev() -> str:
    """The repo HEAD revision, or ``"unknown"`` outside a git checkout.

    ``REPRO_GIT_REV`` overrides (CI images without a .git directory);
    the subprocess result is cached per process — provenance stamping
    must never add per-run fork cost.
    """
    global _GIT_REV
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    if _GIT_REV is None:
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
                check=True,
            ).stdout.strip() or "unknown"
        except Exception:  # noqa: BLE001 — no git, no .git, no permission
            _GIT_REV = "unknown"
    return _GIT_REV


def default_ledger_root() -> Path:
    """``$REPRO_LEDGER_DIR`` when set, else ``.repro/runs`` in the CWD."""
    override = os.environ.get("REPRO_LEDGER_DIR")
    if override:
        return Path(override)
    return Path(".repro") / "runs"


def digest_events(events) -> dict:
    """Fold an event stream into the ledger's compact activity digest.

    Counts the learner lifecycle (windows inspected / drift detections /
    retrains) and the sweep failure modes (stalled and failed cells) —
    the numbers SLO rules and cross-run diffs care about, without
    persisting the full stream.
    """
    digest = {
        "drift_windows": 0,
        "drift_detections": 0,
        "retrains": 0,
        "stalls": 0,
        "failures": 0,
    }
    for event in events or ():
        kind = event.get("event")
        if kind == "lhr.drift":
            digest["drift_windows"] += 1
            if event.get("drifted"):
                digest["drift_detections"] += 1
        elif kind == "lhr.retrain":
            digest["retrains"] += 1
        elif kind == "sweep.cell_stalled":
            digest["stalls"] += 1
        elif kind == "sweep.cell_failed":
            digest["failures"] += 1
    return digest


# ----------------------------------------------------------------------
# RunRecord
# ----------------------------------------------------------------------


@dataclass
class RunRecord:
    """One persisted invocation: provenance, outcome, and time series.

    ``series`` maps ``"c<i>.<field>"`` (cell position in ``cells``,
    field from :data:`SERIES_FIELDS`) to an int64 column of per-window
    values; it rides a sidecar npz, everything else the JSON manifest.
    ``spans`` holds the run's timeline span dicts
    (:meth:`~repro.obs.spans.SpanRecorder.as_dicts`) when the run was
    traced; they ride a ``spans.json`` sidecar and feed ``repro
    timeline``.  Empty provenance fields (``run_id``, ``created_utc``,
    ``git_rev``, ``config_digest``) are stamped by
    :meth:`RunLedger.record`.
    """

    command: str
    name: str = ""
    run_id: str = ""
    schema: str = RUN_SCHEMA
    created_utc: str = ""
    git_rev: str = ""
    config: dict = field(default_factory=dict)
    config_digest: str = ""
    metrics: dict = field(default_factory=dict)
    cells: list = field(default_factory=list)
    events: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    series: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    #: Per-cell learner-health columns (``"c<i>.<column>"`` →
    #: float64 array, see :mod:`repro.obs.learner`); rides a
    #: ``learner.npz`` sidecar and feeds ``repro learner``.
    learner: dict = field(default_factory=dict)
    #: Manifest-recorded span count; lets summaries report "traced"
    #: without loading the ``spans.json`` sidecar.
    _manifest_span_count: int = field(default=0, repr=False, compare=False)
    #: Manifest-recorded learner window total; lets summaries report
    #: "learner telemetry present" without loading ``learner.npz``.
    _manifest_learner_windows: int = field(default=0, repr=False, compare=False)

    def manifest(self) -> dict:
        """The JSON-able manifest (everything except the raw columns)."""
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "created_utc": self.created_utc,
            "command": self.command,
            "name": self.name,
            "git_rev": self.git_rev,
            "config": self.config,
            "config_digest": self.config_digest,
            "metrics": self.metrics,
            "cells": list(self.cells),
            "events": dict(self.events),
            "extra": dict(self.extra),
            "series_cells": sorted(
                {key.split(".", 1)[0] for key in self.series}
            ),
            "span_count": len(self.spans),
            "learner_windows": self.learner_window_count(),
        }

    def summary(self) -> dict:
        """One ``repro runs list`` / ``/runs`` row."""
        return {
            "run_id": self.run_id,
            "created_utc": self.created_utc,
            "command": self.command,
            "name": self.name,
            "git_rev": self.git_rev[:12],
            "config_digest": self.config_digest,
            "cells": len(self.cells),
            "windows": self.window_count(),
            "spans": self.span_count(),
            "learner_windows": self.learner_window_count(),
        }

    def window_count(self) -> int:
        """Windows in the longest per-cell series (0 when unwindowed).

        Falls back to the manifest's per-cell ``windows`` counts so
        summaries stay correct when the npz columns were not loaded.
        """
        if self.series:
            return max((len(col) for col in self.series.values()), default=0)
        return max(
            (int(cell.get("windows", 0)) for cell in self.cells), default=0
        )

    def span_count(self) -> int:
        """Timeline spans recorded for this run (0 when untraced).

        Falls back to the manifest's ``span_count`` so summaries stay
        correct when the ``spans.json`` sidecar was not loaded.
        """
        return len(self.spans) if self.spans else self._manifest_span_count

    def learner_window_count(self) -> int:
        """Learner-telemetry windows across all cells (0 when off).

        Falls back to the manifest's ``learner_windows`` so summaries
        stay correct when the ``learner.npz`` sidecar was not loaded.
        """
        if self.learner:
            return sum(
                int(np.asarray(column).size)
                for key, column in self.learner.items()
                if key.endswith(".window")
            )
        return self._manifest_learner_windows

    def cell_learner(self, index: int) -> dict:
        """The ``{column: array}`` learner series of cell ``index``."""
        prefix = f"c{index}."
        return {
            key[len(prefix):]: column
            for key, column in self.learner.items()
            if key.startswith(prefix)
        }

    def cell_key(self, cell: dict) -> str:
        """The stable identity of one cell for cross-run matching."""
        key = f"{cell.get('policy')}@{cell.get('capacity')}"
        scenario = cell.get("scenario")
        return f"{scenario}/{key}" if scenario else key

    def cell_series(self, index: int) -> dict:
        """The ``{field: column}`` series of cell ``index`` (may be {})."""
        prefix = f"c{index}."
        return {
            key[len(prefix):]: column
            for key, column in self.series.items()
            if key.startswith(prefix)
        }

    @classmethod
    def from_manifest(
        cls,
        manifest: dict,
        series: dict | None = None,
        spans: list | None = None,
        learner: dict | None = None,
    ) -> "RunRecord":
        if manifest.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"unknown run schema {manifest.get('schema')!r}; "
                f"expected {RUN_SCHEMA!r}"
            )
        return cls(
            command=manifest.get("command", ""),
            name=manifest.get("name", ""),
            run_id=manifest.get("run_id", ""),
            schema=manifest["schema"],
            created_utc=manifest.get("created_utc", ""),
            git_rev=manifest.get("git_rev", ""),
            config=manifest.get("config", {}),
            config_digest=manifest.get("config_digest", ""),
            metrics=manifest.get("metrics", {}),
            cells=manifest.get("cells", []),
            events=manifest.get("events", {}),
            extra=manifest.get("extra", {}),
            series=dict(series or {}),
            spans=list(spans or []),
            learner=dict(learner or {}),
            _manifest_span_count=int(manifest.get("span_count", 0)),
            _manifest_learner_windows=int(manifest.get("learner_windows", 0)),
        )


def series_from_results(results) -> dict:
    """Columnarize every result's per-window metrics into npz columns.

    Cell ``i`` is ``results[i]``; unwindowed results contribute nothing.
    Values are copied straight off each
    :class:`~repro.sim.metrics.WindowMetrics` so the stored columns
    bit-match the in-memory stream.
    """
    series: dict = {}
    for i, result in enumerate(results):
        windows = getattr(result, "windows", None)
        if not windows:
            continue
        for field_name in SERIES_FIELDS:
            series[f"c{i}.{field_name}"] = np.array(
                [getattr(w, field_name) for w in windows], dtype=np.int64
            )
    return series


def record_from_results(
    command: str,
    config: dict,
    results,
    name: str = "",
    events=None,
    cell_tags=None,
    extra: dict | None = None,
    spans=None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a grid of ``SimulationResult``.

    ``cell_tags`` optionally supplies one extra mapping per result (the
    workload lab tags cells with their scenario).  The event digest
    comes from ``events`` when the run was observed; an unobserved run
    carries a zero digest with ``events_observed: false``.  ``spans``
    optionally attaches the run's timeline span dicts
    (:meth:`~repro.obs.spans.SpanRecorder.as_dicts`) for ``repro
    timeline``.
    """
    results = list(results)
    cells = []
    for i, result in enumerate(results):
        cell = {
            "policy": result.policy,
            "capacity": result.capacity,
            "requests": result.requests,
            "hits": result.hits,
            "hit_bytes": result.hit_bytes,
            "total_bytes": result.total_bytes,
            "object_hit_ratio": round(result.object_hit_ratio, 6),
            "byte_hit_ratio": round(result.byte_hit_ratio, 6),
            "evictions": result.evictions,
            "admissions": result.admissions,
            "runtime_seconds": round(result.runtime_seconds, 6),
            "windows": len(result.windows),
        }
        if cell_tags is not None:
            cell.update(cell_tags[i])
        cells.append(cell)
    metrics = {
        "requests": sum(r.requests for r in results),
        "hits": sum(r.hits for r in results),
        "hit_bytes": sum(r.hit_bytes for r in results),
        "total_bytes": sum(r.total_bytes for r in results),
        "wall_seconds": round(sum(r.runtime_seconds for r in results), 6),
    }
    event_digest = digest_events(events)
    event_digest["events_observed"] = events is not None
    return RunRecord(
        command=command,
        name=name,
        config=dict(config),
        metrics=metrics,
        cells=cells,
        events=event_digest,
        extra=dict(extra or {}),
        series=series_from_results(results),
        spans=list(spans or []),
        learner=learner_series_to_columns(results),
    )


# ----------------------------------------------------------------------
# RunLedger
# ----------------------------------------------------------------------


class RunLedger:
    """Append-only, file-based store of :class:`RunRecord` directories.

    ``clock`` injects the UTC timestamp source (tests pin it); the root
    directory is created lazily on the first :meth:`record`, so merely
    constructing a ledger (e.g. for ``repro runs list`` against a
    missing directory) touches nothing.
    """

    MANIFEST = "manifest.json"
    SERIES = "series.npz"
    SPANS = "spans.json"
    LEARNER = "learner.npz"

    def __init__(self, root: str | Path | None = None, clock=None) -> None:
        self.root = Path(root) if root is not None else default_ledger_root()
        self._clock = clock or (lambda: datetime.now(timezone.utc))

    # -- write ---------------------------------------------------------

    def record(self, record: RunRecord) -> str:
        """Persist ``record``, stamping missing provenance; returns the
        run id.  Never overwrites: a colliding id gets a ``-N`` suffix."""
        if not record.created_utc:
            record.created_utc = self._clock().strftime("%Y-%m-%dT%H:%M:%SZ")
        if not record.git_rev:
            record.git_rev = current_git_rev()
        if not record.config_digest:
            record.config_digest = config_digest(record.config)
        if not record.run_id:
            # Microsecond stamp: ids of same-second runs still sort in
            # recording order, which list/gc/latest~N all rely on.
            stamp = self._clock().strftime("%Y%m%dT%H%M%S.%fZ")
            record.run_id = f"{stamp}-{record.config_digest[:8]}"
        record.run_id = self._unique_id(record.run_id)
        run_dir = self.root / record.run_id
        run_dir.mkdir(parents=True)
        if record.series:
            # Uncompressed on purpose: a run writes once and the <2%
            # overhead budget (bench_obs_overhead) rules out deflate.
            with open(run_dir / self.SERIES, "wb") as handle:
                np.savez(handle, **record.series)
        if record.spans:
            # Sidecars land before the manifest rename commits the run,
            # so a committed run never points at a missing spans file.
            (run_dir / self.SPANS).write_text(
                json.dumps(record.spans, separators=(",", ":")) + "\n"
            )
        if record.learner:
            # Learner-health sidecar: same commit discipline as spans.
            with open(run_dir / self.LEARNER, "wb") as handle:
                np.savez(handle, **record.learner)
        tmp = run_dir / (self.MANIFEST + ".tmp")
        tmp.write_text(
            json.dumps(record.manifest(), indent=2, sort_keys=True) + "\n"
        )
        # The manifest is the commit marker: rename it into place last.
        os.replace(tmp, run_dir / self.MANIFEST)
        return record.run_id

    def _unique_id(self, run_id: str) -> str:
        candidate = run_id
        suffix = 1
        while (self.root / candidate).exists():
            candidate = f"{run_id}-{suffix}"
            suffix += 1
        return candidate

    # -- read ----------------------------------------------------------

    def run_ids(self) -> list[str]:
        """Committed run ids, oldest first (ids sort chronologically)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / self.MANIFEST).is_file()
        )

    def resolve(self, ref: str) -> str:
        """Resolve ``latest``/``latest~N`` or a unique id prefix."""
        ids = self.run_ids()
        if not ids:
            raise ValueError(f"run ledger at {self.root} is empty")
        if ref == "latest":
            return ids[-1]
        if ref.startswith("latest~"):
            back = int(ref.split("~", 1)[1])
            if back >= len(ids):
                raise ValueError(
                    f"{ref!r} reaches past the {len(ids)} recorded run(s)"
                )
            return ids[-1 - back]
        if ref in ids:  # an exact id always wins over prefix ambiguity
            return ref
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if not matches:
            raise ValueError(f"no run matching {ref!r} in {self.root}")
        if len(matches) > 1:
            raise ValueError(
                f"ambiguous run ref {ref!r}: matches {', '.join(matches)}"
            )
        return matches[0]

    def load(
        self,
        ref: str,
        series: bool = True,
        spans: bool = True,
        learner: bool = False,
    ) -> RunRecord:
        """Load one run (manifest always; sidecars unless disabled).

        ``learner`` defaults off — only ``repro learner`` pays for the
        per-window learner columns.
        """
        run_id = self.resolve(ref)
        run_dir = self.root / run_id
        manifest = json.loads((run_dir / self.MANIFEST).read_text())
        columns: dict = {}
        series_path = run_dir / self.SERIES
        if series and series_path.is_file():
            with np.load(series_path) as npz:
                columns = {key: npz[key] for key in npz.files}
        span_dicts: list = []
        spans_path = run_dir / self.SPANS
        if spans and spans_path.is_file():
            span_dicts = json.loads(spans_path.read_text())
        learner_columns: dict = {}
        learner_path = run_dir / self.LEARNER
        if learner and learner_path.is_file():
            with np.load(learner_path) as npz:
                learner_columns = {key: npz[key] for key in npz.files}
        return RunRecord.from_manifest(
            manifest, columns, span_dicts, learner_columns
        )

    def records(self, command: str | None = None, name: str | None = None):
        """All runs oldest→newest, optionally filtered, without sidecars."""
        out = []
        for run_id in self.run_ids():
            record = self.load(run_id, series=False, spans=False)
            if command is not None and record.command != command:
                continue
            if name is not None and record.name != name:
                continue
            out.append(record)
        return out

    def summaries(self, limit: int = 0) -> list[dict]:
        """``repro runs list`` / ``/runs`` rows, oldest first."""
        rows = [record.summary() for record in self.records()]
        return rows[-limit:] if limit else rows

    def bench_history(
        self, name: str, limit: int = 3, exclude: str | None = None
    ) -> list[dict]:
        """The last ``limit`` benchmark telemetry payloads for ``name``.

        Oldest→newest, ready for
        :func:`repro.obs.baseline.compare_with_history`; ``exclude``
        drops the run id of the payload under test so a freshly
        recorded run never serves as its own history.
        """
        payloads = [
            record.metrics
            for record in self.records(command="bench", name=name)
            if record.run_id != exclude
        ]
        return payloads[-limit:] if limit else payloads

    # -- retention -----------------------------------------------------

    def gc(self, keep: int, dry_run: bool = False) -> list[str]:
        """Prune all but the newest ``keep`` runs; returns pruned ids.

        Deterministic: runs are ordered by id (chronological), so two
        ``gc --keep N`` calls over the same ledger prune identically.
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        ids = self.run_ids()
        doomed = ids[: max(len(ids) - keep, 0)]
        if not dry_run:
            for run_id in doomed:
                shutil.rmtree(self.root / run_id)
        return doomed

    # -- export --------------------------------------------------------

    def export_csv(self, ref: str, path: str | Path) -> int:
        """Write one run's per-window series as flat CSV rows; returns
        the number of data rows written."""
        record = self.load(ref)
        path = Path(path)
        rows = 0
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["cell", "policy", "capacity", "window", *SERIES_FIELDS,
                 "hit_ratio"]
            )
            for i, cell in enumerate(record.cells):
                columns = record.cell_series(i)
                if not columns:
                    continue
                length = len(next(iter(columns.values())))
                for w in range(length):
                    requests = int(columns["requests"][w])
                    hits = int(columns["hits"][w])
                    writer.writerow(
                        [
                            i,
                            cell.get("policy"),
                            cell.get("capacity"),
                            w,
                            *(int(columns[f][w]) for f in SERIES_FIELDS),
                            round(hits / requests, 6) if requests else 0.0,
                        ]
                    )
                    rows += 1
        return rows


# ----------------------------------------------------------------------
# Cross-run diff
# ----------------------------------------------------------------------


@dataclass
class CellDelta:
    """Aggregate + per-window comparison of one matched cell pair."""

    key: str
    hit_ratio_a: float
    hit_ratio_b: float
    requests_delta: int
    hits_delta: int
    evictions_delta: int
    windows_compared: int = 0
    windows_differing: int = 0
    max_window_hit_ratio_delta: float = 0.0

    @property
    def hit_ratio_delta(self) -> float:
        return self.hit_ratio_b - self.hit_ratio_a

    @property
    def identical(self) -> bool:
        return (
            self.requests_delta == 0
            and self.hits_delta == 0
            and self.evictions_delta == 0
            and self.windows_differing == 0
        )

    def as_dict(self) -> dict:
        return {
            "cell": self.key,
            "hit_ratio_a": self.hit_ratio_a,
            "hit_ratio_b": self.hit_ratio_b,
            "hit_ratio_delta": round(self.hit_ratio_delta, 6),
            "requests_delta": self.requests_delta,
            "hits_delta": self.hits_delta,
            "evictions_delta": self.evictions_delta,
            "windows_compared": self.windows_compared,
            "windows_differing": self.windows_differing,
            "max_window_hit_ratio_delta": round(
                self.max_window_hit_ratio_delta, 6
            ),
            "identical": self.identical,
        }


@dataclass
class RunDiff:
    """Outcome of ``repro runs diff A B``."""

    run_a: str
    run_b: str
    deltas: list = field(default_factory=list)
    only_a: list = field(default_factory=list)
    only_b: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return (
            not self.only_a
            and not self.only_b
            and all(delta.identical for delta in self.deltas)
        )

    def as_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "identical": self.identical,
            "cells": [delta.as_dict() for delta in self.deltas],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        lines = [f"runs diff: {self.run_a} (a) vs {self.run_b} (b)"]
        header = (
            f"  {'cell':<28}{'hit a':>9}{'hit b':>9}{'delta':>9}"
            f"{'win!=':>7}{'max win d':>11}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for delta in self.deltas:
            lines.append(
                f"  {delta.key:<28}{delta.hit_ratio_a:>9.4f}"
                f"{delta.hit_ratio_b:>9.4f}{delta.hit_ratio_delta:>+9.4f}"
                f"{delta.windows_differing:>5}/{delta.windows_compared:<2}"
                f"{delta.max_window_hit_ratio_delta:>10.4f}"
            )
        for key in self.only_a:
            lines.append(f"  only in a: {key}")
        for key in self.only_b:
            lines.append(f"  only in b: {key}")
        lines += [f"  note: {note}" for note in self.notes]
        lines.append(
            "verdict: IDENTICAL" if self.identical else "verdict: DIFFERENT"
        )
        return "\n".join(lines)


def diff_records(a: RunRecord, b: RunRecord) -> RunDiff:
    """Per-cell and per-window comparison of two runs.

    Cells match on ``[scenario/]policy@capacity``; two identical-seed
    runs of the same config diff to zero everywhere (counters and
    window columns are deterministic), so any nonzero delta is signal.
    """
    diff = RunDiff(run_a=a.run_id, run_b=b.run_id)
    if a.config_digest != b.config_digest:
        diff.notes.append(
            f"config digests differ ({a.config_digest} vs {b.config_digest})"
        )
    if a.git_rev != b.git_rev:
        diff.notes.append(
            f"git revisions differ ({a.git_rev[:12]} vs {b.git_rev[:12]})"
        )
    cells_a = {a.cell_key(cell): (i, cell) for i, cell in enumerate(a.cells)}
    cells_b = {b.cell_key(cell): (i, cell) for i, cell in enumerate(b.cells)}
    diff.only_a = sorted(set(cells_a) - set(cells_b))
    diff.only_b = sorted(set(cells_b) - set(cells_a))
    for key in sorted(set(cells_a) & set(cells_b)):
        index_a, cell_a = cells_a[key]
        index_b, cell_b = cells_b[key]
        delta = CellDelta(
            key=key,
            hit_ratio_a=cell_a.get("object_hit_ratio", 0.0),
            hit_ratio_b=cell_b.get("object_hit_ratio", 0.0),
            requests_delta=cell_b.get("requests", 0) - cell_a.get("requests", 0),
            hits_delta=cell_b.get("hits", 0) - cell_a.get("hits", 0),
            evictions_delta=(
                cell_b.get("evictions", 0) - cell_a.get("evictions", 0)
            ),
        )
        series_a = a.cell_series(index_a)
        series_b = b.cell_series(index_b)
        if series_a and series_b:
            _diff_series(delta, series_a, series_b)
        elif series_a or series_b:
            diff.notes.append(f"{key}: window series present in only one run")
        diff.deltas.append(delta)
    return diff


def _diff_series(delta: CellDelta, series_a: dict, series_b: dict) -> None:
    """Fill the per-window fields of one cell delta (in place)."""
    n = min(len(series_a["requests"]), len(series_b["requests"]))
    if len(series_a["requests"]) != len(series_b["requests"]):
        delta.windows_differing += abs(
            len(series_a["requests"]) - len(series_b["requests"])
        )
    delta.windows_compared = n
    if n == 0:
        return
    differing = np.zeros(n, dtype=bool)
    for field_name in SERIES_FIELDS:
        col_a = series_a.get(field_name)
        col_b = series_b.get(field_name)
        if col_a is None or col_b is None:
            continue
        differing |= col_a[:n] != col_b[:n]
    delta.windows_differing += int(differing.sum())
    req_a = np.maximum(series_a["requests"][:n], 1)
    req_b = np.maximum(series_b["requests"][:n], 1)
    ratio_a = series_a["hits"][:n] / req_a
    ratio_b = series_b["hits"][:n] / req_b
    delta.max_window_hit_ratio_delta = float(np.abs(ratio_b - ratio_a).max())
