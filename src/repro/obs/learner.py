"""Learner observatory: per-window model-health telemetry for LHR.

The paper's central claim is that LHR *learns* a good admission policy
from HRO's optimal decisions — but hit ratios alone cannot say whether
the learned model is healthy between retrains.  This module adds a
fourth observation sink, ``obs.learner``, threaded through the window
pipeline (:mod:`repro.core.lhr`, :mod:`repro.core.detection`,
:mod:`repro.core.threshold`, :mod:`repro.core.gbm`) that records, per
sliding window:

* **prediction-score histograms** and the admit rate at the current
  ``delta`` — the shape of the model's output distribution;
* **online calibration** of the admission probability ``p_i`` against
  realized reuse (whether the scored content was re-referenced within
  the window — the same signal HRO's verdicts are built from), as a
  Brier score plus reliability bins kept as *mergeable moments* so
  parallel sweep shards combine associatively;
* the **Zipf-alpha fit with its standard error** — the noise scale the
  detector's fixed ``epsilon`` is blind to (ROADMAP item 5);
* **shadow drift statistics** candidate detectors would consume — a
  noise-scaled epsilon verdict, top-k overlap and Kendall-tau of the
  window popularity ranks — evaluated counterfactually: they never
  affect control flow;
* the **threshold/delta trajectory** and **retrain-cause attribution**
  (first window / drift / degenerate fit / every-window ablation);
* **GBM model fingerprints** (feature importances, tree count/depth,
  node count) on each refit.

Everything is collected at window close from buffers LHR already
maintains, so the per-request packed fast path is undisturbed; the
disabled sink (:data:`NULL_LEARNER`) costs one attribute check per
window.  Like ``obs.spans``, the learner sink is deliberately *not*
covered by ``Observation.enabled``.

See ``docs/OBSERVABILITY.md`` ("Learner observatory") for the signal
catalog and calibration semantics.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

import numpy as np

#: Reliability / prediction-score histogram bins over [0, 1].
CAL_BINS = 10
#: Popularity ranks compared between consecutive windows.
TOP_K = 32
#: Multiplier on the combined alpha standard error for the shadow
#: noise-scaled drift verdict: shadow-drift iff
#: ``|alpha_k - alpha_{k-1}| >= max(epsilon, NOISE_SCALE * se)``.
NOISE_SCALE = 3.0

#: Retrain causes, in code order (the ``cause`` column stores the index).
RETRAIN_CAUSES = ("none", "first_window", "drift", "degenerate", "every_window")
_CAUSE_CODE = {name: code for code, name in enumerate(RETRAIN_CAUSES)}


# ----------------------------------------------------------------------
# Streaming calibration (mergeable moments)
# ----------------------------------------------------------------------


@dataclass
class CalibrationStats:
    """Brier score + reliability bins as mergeable sufficient statistics.

    Stores only sums — sample count, sum of squared errors, and per-bin
    (count, sum of predictions, sum of outcomes) — so two shards merge
    by component-wise addition.  Merging is associative and commutative,
    which is what lets parallel sweep cells combine grid-ordered into
    exactly the serial aggregate.
    """

    count: int = 0
    sq_error: float = 0.0
    bin_count: np.ndarray = field(
        default_factory=lambda: np.zeros(CAL_BINS, dtype=np.int64)
    )
    bin_p_sum: np.ndarray = field(
        default_factory=lambda: np.zeros(CAL_BINS, dtype=np.float64)
    )
    bin_y_sum: np.ndarray = field(
        default_factory=lambda: np.zeros(CAL_BINS, dtype=np.float64)
    )

    @classmethod
    def from_arrays(cls, probabilities, outcomes) -> "CalibrationStats":
        """Accumulate a batch of (p, realized) pairs.

        NaN-safe on empty input: a window with no scored requests yields
        the identity element of ``merge``.
        """
        p = np.asarray(probabilities, dtype=np.float64)
        y = np.asarray(outcomes, dtype=np.float64)
        stats = cls()
        if p.size == 0:
            return stats
        p = np.clip(p, 0.0, 1.0)
        stats.count = int(p.size)
        err = p - y
        stats.sq_error = float(np.dot(err, err))
        bins = np.minimum((p * CAL_BINS).astype(np.int64), CAL_BINS - 1)
        stats.bin_count = np.bincount(bins, minlength=CAL_BINS).astype(np.int64)
        stats.bin_p_sum = np.bincount(bins, weights=p, minlength=CAL_BINS)
        stats.bin_y_sum = np.bincount(bins, weights=y, minlength=CAL_BINS)
        return stats

    def merge(self, other: "CalibrationStats") -> "CalibrationStats":
        """Associative combine: the aggregate of both shards."""
        merged = CalibrationStats()
        merged.count = self.count + other.count
        merged.sq_error = self.sq_error + other.sq_error
        merged.bin_count = self.bin_count + other.bin_count
        merged.bin_p_sum = self.bin_p_sum + other.bin_p_sum
        merged.bin_y_sum = self.bin_y_sum + other.bin_y_sum
        return merged

    @property
    def brier(self) -> float:
        """Mean squared error of p against realized reuse; NaN when empty."""
        return self.sq_error / self.count if self.count else float("nan")

    def reliability_rows(self) -> list[dict]:
        """Per-bin ``(lo, hi, count, mean_p, frequency)`` — the reliability
        diagram's rows.  Empty bins report NaN means rather than raising."""
        rows = []
        for b in range(CAL_BINS):
            n = int(self.bin_count[b])
            rows.append(
                {
                    "lo": b / CAL_BINS,
                    "hi": (b + 1) / CAL_BINS,
                    "count": n,
                    "mean_p": self.bin_p_sum[b] / n if n else float("nan"),
                    "frequency": self.bin_y_sum[b] / n if n else float("nan"),
                }
            )
        return rows

    def expected_calibration_error(self) -> float:
        """Bin-count-weighted |mean_p - frequency|; NaN when empty."""
        if not self.count:
            return float("nan")
        total = 0.0
        for b in range(CAL_BINS):
            n = int(self.bin_count[b])
            if n:
                total += n * abs(
                    self.bin_p_sum[b] / n - self.bin_y_sum[b] / n
                )
        return total / self.count


def realized_reuse(obj_ids) -> np.ndarray:
    """Per-request realized-reuse labels for one window.

    ``reuse[i] = 1`` iff the same content id appears again later in the
    window — the within-window re-reference signal HRO's verdicts (the
    model's training target) are derived from.  O(n) backward walk.
    """
    n = len(obj_ids)
    reuse = np.zeros(n, dtype=np.float64)
    seen: set = set()
    for i in range(n - 1, -1, -1):
        oid = obj_ids[i]
        if oid in seen:
            reuse[i] = 1.0
        else:
            seen.add(oid)
    return reuse


# ----------------------------------------------------------------------
# Shadow drift statistics (rank-aware, counterfactual)
# ----------------------------------------------------------------------


def top_ranked_ids(counts: dict, k: int = TOP_K) -> list[int]:
    """The window's top-``k`` content ids by request count.

    Ties break on the id so the ranking is deterministic regardless of
    dict iteration order (serial == parallel).
    """
    return [
        oid
        for oid, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    ]


def rank_overlap(previous: list[int], current: list[int]) -> float:
    """Top-k overlap |A ∩ B| / min(|A|, |B|); NaN when either is empty."""
    if not previous or not current:
        return float("nan")
    inter = len(set(previous) & set(current))
    return inter / min(len(previous), len(current))


def kendall_tau(previous: list[int], current: list[int]) -> float:
    """Kendall rank correlation of the ids common to both top-k lists.

    O(m^2) pair counting over at most ``TOP_K`` common items; NaN when
    fewer than two ids are shared (no pairs to compare).
    """
    prev_rank = {oid: r for r, oid in enumerate(previous)}
    common = [oid for oid in current if oid in prev_rank]
    m = len(common)
    if m < 2:
        return float("nan")
    ranks = [prev_rank[oid] for oid in common]
    concordant = 0
    discordant = 0
    for i in range(m):
        for j in range(i + 1, m):
            if ranks[i] < ranks[j]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (m * (m - 1) / 2)


def noise_threshold(
    epsilon: float, stderr_now: float, stderr_prev: float | None
) -> float:
    """The noise-scaled drift threshold a sharpened detector would use.

    ``max(epsilon, NOISE_SCALE * se_diff)`` where ``se_diff`` combines
    the two windows' alpha standard errors in quadrature.  Infinite when
    either stderr is unknown/infinite (the verdict then never fires —
    conservative by construction).
    """
    if stderr_prev is None or not math.isfinite(stderr_prev):
        return float("inf")
    if not math.isfinite(stderr_now):
        return float("inf")
    se_diff = math.sqrt(stderr_now * stderr_now + stderr_prev * stderr_prev)
    return max(epsilon, NOISE_SCALE * se_diff)


# ----------------------------------------------------------------------
# The telemetry sink
# ----------------------------------------------------------------------

#: 1-D float64 per-window columns, in serialization order.
SCALAR_COLUMNS = (
    "window",
    "alpha",
    "alpha_stderr",
    "r_squared",
    "fit_contents",
    "drifted",
    "degenerate",
    "shadow_drift",
    "noise_threshold",
    "topk_overlap",
    "kendall_tau",
    "delta",
    "threshold_adopted",
    "incumbent_ratio",
    "best_ratio",
    "samples",
    "admit_rate",
    "mean_p",
    "brier",
    "retrained",
    "cause",
    "train_rows",
    "trees",
    "max_tree_depth",
    "tree_nodes",
    "train_seconds",
    "importance_top_feature",
    "importance_top_share",
    "importance_entropy",
)

#: 2-D (windows x CAL_BINS) columns.
MATRIX_COLUMNS = ("score_hist", "cal_count", "cal_p_sum", "cal_y_sum")

#: Columns that carry wall-clock measurements — everything else is a
#: pure function of (trace, config, seed), so serial and parallel runs
#: must agree bit for bit on all columns *except* these.
TIMING_COLUMNS = ("train_seconds",)


def series_equal(a: "LearnerSeries", b: "LearnerSeries") -> bool:
    """Deterministic equality: every column identical (NaN == NaN),
    ignoring the wall-clock :data:`TIMING_COLUMNS`."""
    if set(a.columns) != set(b.columns):
        return False
    for name, left in a.columns.items():
        if name in TIMING_COLUMNS:
            continue
        right = b.columns[name]
        if left.shape != right.shape or not np.array_equal(
            left, right, equal_nan=True
        ):
            return False
    return True


@dataclass
class LearnerSeries:
    """One policy run's per-window learner-health series, columnar.

    ``columns`` maps every name in :data:`SCALAR_COLUMNS` to a 1-D
    float64 array and every name in :data:`MATRIX_COLUMNS` to a
    ``(windows, CAL_BINS)`` array.  Plain numpy + strings, so the series
    pickles across the worker→driver pipe and round-trips through npz.
    """

    policy: str = ""
    capacity: int = 0
    columns: dict = field(default_factory=dict)

    @property
    def windows(self) -> int:
        col = self.columns.get("window")
        return int(col.size) if col is not None else 0

    def calibration(self) -> CalibrationStats:
        """The run-level calibration aggregate: the merge of every
        window's mergeable moments (associative, so any grouping of the
        windows — serial or sharded — yields the same aggregate)."""
        stats = CalibrationStats()
        if not self.windows:
            return stats
        stats.count = int(self.columns["samples"].sum())
        brier = self.columns["brier"]
        samples = self.columns["samples"]
        finite = np.isfinite(brier)
        stats.sq_error = float(np.dot(brier[finite], samples[finite]))
        stats.bin_count = self.columns["cal_count"].sum(axis=0).astype(np.int64)
        stats.bin_p_sum = self.columns["cal_p_sum"].sum(axis=0)
        stats.bin_y_sum = self.columns["cal_y_sum"].sum(axis=0)
        return stats

    def cause_counts(self) -> dict:
        """Retrain-cause attribution: cause name -> window count."""
        codes = self.columns.get("cause")
        counts = dict.fromkeys(RETRAIN_CAUSES, 0)
        if codes is not None:
            for code in codes.astype(np.int64):
                counts[RETRAIN_CAUSES[int(code)]] += 1
        return counts

    def noise_dominated_detections(self) -> int:
        """Windows the epsilon detector fired on but the noise-scaled
        shadow verdict would not have — the drift-thrash signal."""
        if not self.windows:
            return 0
        cols = self.columns
        mask = (
            (cols["drifted"] > 0)
            & (cols["degenerate"] == 0)
            & (cols["shadow_drift"] == 0)
            & np.isfinite(cols["noise_threshold"])
        )
        return int(mask.sum())


class LearnerTelemetry:
    """The live learner sink: per-window recorder *and* driver-side hub.

    On the recording side, the LHR window pipeline calls the
    ``record_*`` hooks as each window closes; ``record_window`` (always
    last, from :meth:`LhrCache._close_window`) folds the pending drift /
    threshold / refit fragments into one completed row.  On the driver
    side, sweep cells that ran with their own telemetry ship a
    :class:`LearnerSeries` back on the result and the driver ``absorb``s
    them keyed by grid index — per-cell series are independent, so
    absorption order cannot change content and serial and parallel
    sweeps produce identical series.  ``snapshot`` serves the live
    ``/learner`` endpoint from either role.
    """

    enabled = True

    def __init__(self) -> None:
        self._pending: dict = {}
        self._rows: list[dict] = []
        self._cells: dict[int, LearnerSeries] = {}
        self._lock = threading.Lock()

    # -- recorder hooks (window pipeline) ------------------------------

    def record_drift(self, **fields) -> None:
        """Drift-detector fragment: alpha±stderr plus shadow statistics."""
        self._pending.update(fields)

    def record_threshold(self, **fields) -> None:
        """Threshold-estimator fragment: delta trajectory for the window."""
        self._pending.update(fields)

    def record_refit(self, **fields) -> None:
        """GBM fragment: model fingerprint for this window's refit."""
        self._pending.update(fields)

    def record_window(
        self,
        window: int,
        delta: float,
        samples: int,
        admit_rate: float,
        mean_p: float,
        retrained: bool,
        cause: str,
        calibration: CalibrationStats,
        score_hist: np.ndarray,
    ) -> None:
        """Finalize one window: merge pending fragments into a full row."""
        row = {name: float("nan") for name in SCALAR_COLUMNS}
        row.update(
            {
                "drifted": 0.0,
                "degenerate": 0.0,
                "shadow_drift": 0.0,
                "threshold_adopted": 0.0,
                "retrained": 0.0,
                "train_rows": 0.0,
                "trees": 0.0,
                "max_tree_depth": 0.0,
                "tree_nodes": 0.0,
                "train_seconds": 0.0,
            }
        )
        row.update(self._pending)
        self._pending = {}
        row["window"] = float(window)
        row["delta"] = float(delta)
        row["samples"] = float(samples)
        row["admit_rate"] = float(admit_rate)
        row["mean_p"] = float(mean_p)
        row["retrained"] = float(bool(retrained))
        row["cause"] = float(_CAUSE_CODE[cause])
        row["brier"] = calibration.brier
        row["score_hist"] = np.asarray(score_hist, dtype=np.float64)
        row["cal_count"] = calibration.bin_count.astype(np.float64)
        row["cal_p_sum"] = calibration.bin_p_sum.copy()
        row["cal_y_sum"] = calibration.bin_y_sum.copy()
        with self._lock:
            self._rows.append(row)

    # -- series / hub --------------------------------------------------

    def series(self, policy: str = "", capacity: int = 0) -> LearnerSeries:
        """Columnarize the recorded rows (non-destructive)."""
        with self._lock:
            rows = list(self._rows)
        columns: dict = {}
        for name in SCALAR_COLUMNS:
            columns[name] = np.array(
                [row[name] for row in rows], dtype=np.float64
            )
        for name in MATRIX_COLUMNS:
            if rows:
                columns[name] = np.vstack([row[name] for row in rows])
            else:
                columns[name] = np.zeros((0, CAL_BINS), dtype=np.float64)
        return LearnerSeries(policy=policy, capacity=capacity, columns=columns)

    def absorb(
        self, index: int, series: LearnerSeries | None
    ) -> None:
        """Driver-side merge: file one cell's series under its grid index."""
        if series is None:
            return
        with self._lock:
            self._cells[index] = series

    def cells(self) -> list[tuple[int, LearnerSeries]]:
        """Absorbed cell series in grid order."""
        with self._lock:
            return sorted(self._cells.items())

    def snapshot(self) -> dict:
        """Live JSON view for the ``/learner`` endpoint."""
        cells = []
        for index, series in self.cells():
            cal = series.calibration()
            causes = series.cause_counts()
            cells.append(
                {
                    "cell": index,
                    "policy": series.policy,
                    "capacity": series.capacity,
                    "windows": series.windows,
                    "brier": _json_float(cal.brier),
                    "retrains": int(
                        series.columns["retrained"].sum()
                    )
                    if series.windows
                    else 0,
                    "causes": {k: v for k, v in causes.items() if v},
                }
            )
        with self._lock:
            live_rows = len(self._rows)
            last = self._rows[-1] if self._rows else None
        live: dict = {"windows": live_rows}
        if last is not None:
            live["last_window"] = int(last["window"])
            live["last_alpha"] = _json_float(last["alpha"])
            live["last_alpha_stderr"] = _json_float(last["alpha_stderr"])
            live["last_brier"] = _json_float(last["brier"])
            live["last_delta"] = _json_float(last["delta"])
        return {"cells": cells, "live": live}


class _NullLearner:
    """Disabled learner sink — one attribute check per window, no state."""

    enabled = False

    def record_drift(self, **fields) -> None:
        pass

    def record_threshold(self, **fields) -> None:
        pass

    def record_refit(self, **fields) -> None:
        pass

    def record_window(self, *args, **kwargs) -> None:
        pass

    def absorb(self, index, series) -> None:
        pass

    def series(self, policy: str = "", capacity: int = 0) -> LearnerSeries:
        return LearnerSeries(policy=policy, capacity=capacity)

    def snapshot(self) -> dict:
        return {"cells": [], "live": {"windows": 0}}


#: Shared disabled learner sink; the default on every Observation.
NULL_LEARNER = _NullLearner()


# ----------------------------------------------------------------------
# Ledger (de)serialization
# ----------------------------------------------------------------------


def series_to_columns(results) -> dict:
    """Flatten per-cell learner series into ``c{i}.{column}`` npz keys.

    ``results`` is the grid-ordered sweep result list; cells without a
    series contribute nothing.  Returns {} when no cell recorded one —
    the ledger then skips the sidecar entirely.
    """
    columns: dict = {}
    for i, result in enumerate(results):
        series = getattr(result, "learner", None)
        if series is None or not series.windows:
            continue
        for name, values in series.columns.items():
            columns[f"c{i}.{name}"] = values
    return columns


def columns_to_series(columns: dict, cells: list[dict]) -> list[tuple[int, LearnerSeries]]:
    """Rebuild per-cell :class:`LearnerSeries` from loaded npz columns.

    ``cells`` is the manifest's cell list (policy/capacity per index).
    """
    per_cell: dict[int, dict] = {}
    for key, values in columns.items():
        prefix, _, name = key.partition(".")
        if not prefix.startswith("c"):
            continue
        try:
            index = int(prefix[1:])
        except ValueError:
            continue
        per_cell.setdefault(index, {})[name] = np.asarray(values)
    out = []
    for index in sorted(per_cell):
        meta = cells[index] if 0 <= index < len(cells) else {}
        out.append(
            (
                index,
                LearnerSeries(
                    policy=str(meta.get("policy", "")),
                    capacity=int(meta.get("capacity", 0)),
                    columns=per_cell[index],
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# The `repro learner` report
# ----------------------------------------------------------------------


def _json_float(value) -> float | None:
    value = float(value)
    return value if math.isfinite(value) else None


def _fmt(value, digits: int = 4) -> str:
    value = float(value)
    if math.isnan(value):
        return "-"
    if math.isinf(value):
        return "inf"
    return f"{value:.{digits}f}"


@dataclass
class LearnerCellReport:
    """Learner-health digest of one (policy, capacity) cell."""

    cell: int
    series: LearnerSeries

    def as_dict(self) -> dict:
        series = self.series
        cols = series.columns
        cal = series.calibration()
        causes = series.cause_counts()
        windows = series.windows
        alpha = cols.get("alpha", np.empty(0))
        stderr = cols.get("alpha_stderr", np.empty(0))
        finite_alpha = alpha[np.isfinite(alpha)] if windows else np.empty(0)
        finite_se = stderr[np.isfinite(stderr)] if windows else np.empty(0)
        detections = int(cols["drifted"].sum()) if windows else 0
        shadow = int(cols["shadow_drift"].sum()) if windows else 0
        noise_dominated = series.noise_dominated_detections()
        overlap = cols.get("topk_overlap", np.empty(0))
        tau = cols.get("kendall_tau", np.empty(0))
        finite_overlap = overlap[np.isfinite(overlap)] if windows else np.empty(0)
        finite_tau = tau[np.isfinite(tau)] if windows else np.empty(0)
        return {
            "cell": self.cell,
            "policy": series.policy,
            "capacity": series.capacity,
            "windows": windows,
            "calibration": {
                "samples": cal.count,
                "brier": _json_float(cal.brier),
                "ece": _json_float(cal.expected_calibration_error()),
                "bins": [
                    {
                        "lo": row["lo"],
                        "hi": row["hi"],
                        "count": row["count"],
                        "mean_p": _json_float(row["mean_p"]),
                        "frequency": _json_float(row["frequency"]),
                    }
                    for row in cal.reliability_rows()
                ],
            },
            "alpha": {
                "mean": _json_float(finite_alpha.mean())
                if finite_alpha.size
                else None,
                "mean_stderr": _json_float(finite_se.mean())
                if finite_se.size
                else None,
            },
            "drift": {
                "detections": detections,
                "shadow_detections": shadow,
                "noise_dominated_detections": noise_dominated,
                "mean_topk_overlap": _json_float(finite_overlap.mean())
                if finite_overlap.size
                else None,
                "mean_kendall_tau": _json_float(finite_tau.mean())
                if finite_tau.size
                else None,
            },
            "retrains": {
                "total": int(cols["retrained"].sum()) if windows else 0,
                "causes": {k: v for k, v in causes.items() if v},
                "train_seconds": _json_float(cols["train_seconds"].sum())
                if windows
                else 0.0,
            },
            "delta": {
                "first": _json_float(cols["delta"][0]) if windows else None,
                "last": _json_float(cols["delta"][-1]) if windows else None,
                "adoptions": int(cols["threshold_adopted"].sum())
                if windows
                else 0,
            },
        }

    def thrash_diagnosis(self) -> str | None:
        """Flag the epsilon=0.002-style pathology: most detections are
        noise-dominated (the fixed epsilon sits below the alpha-fit
        sampling noise, so the detector fires on estimator jitter — the
        stationary-control thrash documented in docs/WORKLOADS.md)."""
        series = self.series
        windows = series.windows
        if not windows:
            return None
        detections = int(series.columns["drifted"].sum())
        noise_dominated = series.noise_dominated_detections()
        if detections >= 3 and noise_dominated * 2 > detections:
            return (
                f"cell {self.cell} ({series.policy}/{series.capacity}): "
                f"{noise_dominated}/{detections} drift detections are "
                "noise-dominated (|d-alpha| below the noise-scaled "
                "threshold) — epsilon sits inside the alpha-fit sampling "
                "noise; see docs/WORKLOADS.md (drift thrash) and ROADMAP "
                "item 5."
            )
        return None


@dataclass
class LearnerReport:
    """The ``repro learner`` report over one ledger run."""

    run: str
    cells: list[LearnerCellReport]

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "cells": [cell.as_dict() for cell in self.cells],
            "thrash": [
                diag
                for cell in self.cells
                if (diag := cell.thrash_diagnosis()) is not None
            ],
        }

    def render_text(self, timeline: bool = True) -> str:
        lines = [f"learner observatory — run {self.run}"]
        if not self.cells:
            lines.append("  (no learner series recorded)")
            return "\n".join(lines)
        for cell in self.cells:
            digest = cell.as_dict()
            series = cell.series
            cols = series.columns
            lines.append("")
            lines.append(
                f"cell {digest['cell']}: {digest['policy']} @ "
                f"{digest['capacity']} bytes — {digest['windows']} windows"
            )
            cal = digest["calibration"]
            lines.append(
                f"  calibration: brier={_fmt(cal['brier'] if cal['brier'] is not None else float('nan'))} "
                f"ece={_fmt(cal['ece'] if cal['ece'] is not None else float('nan'))} "
                f"over {cal['samples']} scored requests"
            )
            lines.append("    bin        count  mean_p  realized")
            for row in cal["bins"]:
                if not row["count"]:
                    continue
                mean_p = row["mean_p"] if row["mean_p"] is not None else float("nan")
                freq = (
                    row["frequency"]
                    if row["frequency"] is not None
                    else float("nan")
                )
                lines.append(
                    f"    [{row['lo']:.1f},{row['hi']:.1f})"
                    f"  {row['count']:>6}  {_fmt(mean_p, 3):>6}  {_fmt(freq, 3):>8}"
                )
            alpha = digest["alpha"]
            drift = digest["drift"]
            lines.append(
                "  alpha: mean="
                + _fmt(alpha["mean"] if alpha["mean"] is not None else float("nan"))
                + " ± "
                + _fmt(
                    alpha["mean_stderr"]
                    if alpha["mean_stderr"] is not None
                    else float("nan")
                )
                + " (mean stderr)"
            )
            lines.append(
                f"  drift: {drift['detections']} detections, "
                f"{drift['shadow_detections']} shadow (noise-scaled), "
                f"{drift['noise_dominated_detections']} noise-dominated; "
                f"top-k overlap={_fmt(drift['mean_topk_overlap'] if drift['mean_topk_overlap'] is not None else float('nan'), 3)} "
                f"tau={_fmt(drift['mean_kendall_tau'] if drift['mean_kendall_tau'] is not None else float('nan'), 3)}"
            )
            retrains = digest["retrains"]
            causes = ", ".join(
                f"{name}={count}" for name, count in retrains["causes"].items()
            )
            lines.append(
                f"  retrains: {retrains['total']} "
                f"({causes or 'none'}) in {_fmt(retrains['train_seconds'], 3)}s"
            )
            delta = digest["delta"]
            lines.append(
                "  delta: "
                + _fmt(delta["first"] if delta["first"] is not None else float("nan"), 2)
                + " -> "
                + _fmt(delta["last"] if delta["last"] is not None else float("nan"), 2)
                + f" ({delta['adoptions']} adoptions)"
            )
            if timeline and series.windows:
                lines.append(
                    "    win  alpha     stderr    drift shadow overlap tau     cause"
                )
                for w in range(series.windows):
                    cause = RETRAIN_CAUSES[int(cols["cause"][w])]
                    lines.append(
                        f"    {int(cols['window'][w]):>3}"
                        f"  {_fmt(cols['alpha'][w]):>8}"
                        f"  {_fmt(cols['alpha_stderr'][w]):>8}"
                        f"  {'*' if cols['drifted'][w] else '.':>5}"
                        f" {'*' if cols['shadow_drift'][w] else '.':>6}"
                        f" {_fmt(cols['topk_overlap'][w], 2):>7}"
                        f" {_fmt(cols['kendall_tau'][w], 2):>7}"
                        f" {cause if cause != 'none' else '':>12}"
                    )
        diagnoses = [
            diag
            for cell in self.cells
            if (diag := cell.thrash_diagnosis()) is not None
        ]
        lines.append("")
        if diagnoses:
            lines.append("thrash diagnosis:")
            for diag in diagnoses:
                lines.append(f"  ! {diag}")
        else:
            lines.append("thrash diagnosis: no noise-dominated retrain pathology")
        return "\n".join(lines)


def analyze_learner(run: str, cells: list[tuple[int, LearnerSeries]]) -> LearnerReport:
    """Build the ``repro learner`` report from per-cell series.

    Cells with zero windows (policies without a window pipeline — LRU
    and friends record nothing) are dropped: the report covers learner
    health, and they have no learner."""
    return LearnerReport(
        run=run,
        cells=[
            LearnerCellReport(cell=i, series=s)
            for i, s in cells
            if s.windows
        ],
    )
