"""Scoped profiling timers.

A :class:`ScopedTimer` measures one ``with`` block on the monotonic
clock and folds the duration into a registry histogram — aggregation,
not per-entry logging, so wrapping a hot path (the replay loop, a GBM
fit, the hazard re-ranking at a window close) adds two clock reads and
one histogram observe per entry when observation is enabled, and nothing
at all when it is not (:data:`NULL_TIMER` is a shared no-op).
"""

from __future__ import annotations

import time

from repro.obs.registry import Histogram


class ScopedTimer:
    """Context manager timing one block into a histogram."""

    __slots__ = ("_histogram", "_start", "last_seconds")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0
        #: Duration of the most recent completed block.
        self.last_seconds = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.last_seconds = time.perf_counter() - self._start
        self._histogram.observe(self.last_seconds)


class _NullTimer:
    """Shared do-nothing timer for the disabled path."""

    __slots__ = ()
    last_seconds = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_TIMER = _NullTimer()
