"""Scoped profiling timers.

A :class:`ScopedTimer` measures one ``with`` block on the monotonic
clock and folds the duration into a registry histogram — aggregation,
not per-entry logging, so wrapping a hot path (the replay loop, a GBM
fit, the hazard re-ranking at a window close) adds two clock reads and
one histogram observe per entry when observation is enabled, and nothing
at all when it is not (:data:`NULL_TIMER` is a shared no-op).
"""

from __future__ import annotations

import time

from repro.obs.registry import Histogram


class ScopedTimer:
    """Context manager timing one block into a histogram.

    Re-entrant: nested ``with`` on the same instance keeps a stack of
    start times, so a recursive phase records one observation per entry
    instead of the inner entry clobbering the outer one's start.
    """

    __slots__ = ("_histogram", "_starts", "last_seconds")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._starts: list[float] = []
        #: Duration of the most recent completed block.
        self.last_seconds = 0.0

    def __enter__(self) -> "ScopedTimer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        if not self._starts:
            raise RuntimeError("ScopedTimer exited more times than entered")
        self.last_seconds = time.perf_counter() - self._starts.pop()
        self._histogram.observe(self.last_seconds)


class _NullTimer:
    """Shared do-nothing timer for the disabled path."""

    __slots__ = ()
    last_seconds = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_TIMER = _NullTimer()
