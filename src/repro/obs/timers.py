"""Scoped profiling timers.

A :class:`ScopedTimer` measures one ``with`` block on the monotonic
clock and folds the duration into a registry histogram — aggregation,
not per-entry logging, so wrapping a hot path (the replay loop, a GBM
fit, the hazard re-ranking at a window close) adds two clock reads and
one histogram observe per entry when observation is enabled, and nothing
at all when it is not (:data:`NULL_TIMER` is a shared no-op).
"""

from __future__ import annotations

import threading
import time

from repro.obs.registry import Histogram


class ScopedTimer:
    """Context manager timing one block into a histogram.

    Re-entrant *and* thread-safe: the start stack is thread-local, so
    nested ``with`` on the same instance records one observation per
    entry, and concurrent blocks on different threads (the driver loop
    vs. the heartbeat drainer sharing one ``obs.timer(...)``) each time
    their own block instead of interleaving start stacks and swapping
    durations.  ``last_seconds`` remains shared — it reports the most
    recently completed block on *any* thread, which is what the single-
    threaded callers that read it expect.
    """

    __slots__ = ("_histogram", "_local", "last_seconds")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._local = threading.local()
        #: Duration of the most recent completed block (any thread).
        self.last_seconds = 0.0

    def _starts(self) -> list[float]:
        starts = getattr(self._local, "starts", None)
        if starts is None:
            starts = self._local.starts = []
        return starts

    def __enter__(self) -> "ScopedTimer":
        self._starts().append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        starts = self._starts()
        if not starts:
            raise RuntimeError("ScopedTimer exited more times than entered")
        self.last_seconds = time.perf_counter() - starts.pop()
        self._histogram.observe(self.last_seconds)


class _NullTimer:
    """Shared do-nothing timer for the disabled path."""

    __slots__ = ()
    last_seconds = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_TIMER = _NullTimer()
