"""Structured event log: typed JSONL events with a no-op fast path.

Events are flat dicts with an ``event`` type drawn from a registered
catalog (:data:`EVENT_TYPES`), a monotonically increasing ``seq`` number
assigned by the recorder, and event-specific fields.  Recorders never
stamp wall-clock time — emitters pass simulation time when it matters —
so event streams from repeated runs of a seeded simulation are
byte-identical, which is what the parallel/serial equivalence tests pin.

The catalog (see ``docs/OBSERVABILITY.md`` for field-level details):

* ``sim.window`` — one reporting window of the replay loop closed.
* ``lhr.retrain`` — the LHR admission model was (re)trained.
* ``lhr.drift`` — the Zipf-alpha drift detector inspected a window.
* ``lhr.threshold_update`` — the admission threshold was re-estimated.
* ``sweep.cell_start`` / ``sweep.cell_done`` / ``sweep.cell_failed`` —
  lifecycle of one (policy, capacity) sweep cell.
* ``sweep.cell_stalled`` — a running cell went silent past the stall
  timeout (only emitted when a progress tracker monitors the sweep).
* ``policy.eviction_pressure`` — a single admission forced an unusually
  long eviction burst.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

#: The known event catalog.  ``register_event_type`` extends it (e.g. a
#: later subsystem adding its own lifecycle events).
EVENT_TYPES: set[str] = {
    "sim.window",
    "lhr.retrain",
    "lhr.drift",
    "lhr.threshold_update",
    "sweep.cell_start",
    "sweep.cell_done",
    "sweep.cell_failed",
    "sweep.cell_stalled",
    "policy.eviction_pressure",
}


def register_event_type(name: str) -> str:
    """Add a new event type to the catalog; returns the name."""
    if not name or "." not in name:
        raise ValueError(
            f"event type must look like 'subsystem.event', got {name!r}"
        )
    EVENT_TYPES.add(name)
    return name


class NullRecorder:
    """The disabled recorder: every emit is a no-op.

    ``enabled`` is False so instrumentation sites can skip building the
    event payload entirely — the disabled path costs one attribute check.

    Every recorder is a context manager: ``__exit__`` closes, and close
    implies flush, so an exception mid-run can never truncate an event
    log held open by a recorder used via ``with``.
    """

    enabled = False

    def emit(self, event: str, **fields) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryRecorder(NullRecorder):
    """Collects events in memory — tests, and the worker side of a
    parallel sweep (events ship back to the parent with the result)."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}; register it first")
        self.events.append({"event": event, "seq": len(self.events), **fields})

    def by_type(self, event: str) -> list[dict]:
        return [e for e in self.events if e["event"] == event]


def _json_default(value):
    """Fallback serializer for event fields ``json`` can't encode.

    Numpy scalars unwrap via ``.item()`` (instrumentation sites often
    pass them straight out of arrays); anything else degrades to
    ``repr`` — a lossy but never-crashing event beats a lost one.
    """
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    return repr(value)


class JsonlRecorder(NullRecorder):
    """Appends one JSON object per event to a file (JSON Lines).

    Durability: ``flush`` pushes buffered events to the OS and ``close``
    (hence context-manager exit) always flushes first, so a run that
    exits cleanly — or crashes anywhere outside a partially buffered
    write — leaves a replayable log the run ledger can ingest.  Pass
    ``fsync=True`` to additionally ``os.fsync`` on every flush/close for
    power-loss durability (measurably slower; off by default).  A log
    truncated mid-line by a hard kill is still readable via
    :func:`read_events_jsonl` with ``strict=False``.
    """

    enabled = True

    def __init__(self, path: str | Path, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self._file: IO[str] | None = self.path.open("w")
        self._seq = 0

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}; register it first")
        if self._file is None:
            raise RuntimeError("recorder is closed")
        record = {"event": event, "seq": self._seq, **fields}
        self._seq += 1
        self._file.write(
            json.dumps(record, sort_keys=False, default=_json_default) + "\n"
        )

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None


def read_events_jsonl(path: str | Path, strict: bool = True) -> list[dict]:
    """Read an event log written by :class:`JsonlRecorder`.

    With ``strict=False`` a final line truncated mid-write (the process
    was killed between a flush and the next one) is skipped instead of
    raising, so a crashed run's log remains ingestible; malformed JSON
    anywhere *before* the last line still raises — that is corruption,
    not a crash artifact.
    """
    lines = Path(path).read_text().splitlines()
    events: list[dict] = []
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if not strict and number == len(lines) - 1:
                break  # torn trailing write from a killed process
            raise ValueError(
                f"{path}: line {number + 1} is not valid JSON: {line[:80]!r}"
            ) from None
    return events


class TextRecorder(NullRecorder):
    """Human-readable one-line-per-event output (the CLI's ``--verbose``)."""

    enabled = True

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}; register it first")
        parts = " ".join(f"{k}={_compact(v)}" for k, v in fields.items())
        self._stream.write(f"[{event}] {parts}\n")

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        # The stream (typically stderr) is borrowed, not owned: flush it
        # so buffered events survive, but never close it.
        self._stream.flush()


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class FanoutRecorder(NullRecorder):
    """Broadcasts each event to several recorders (e.g. JSONL + verbose).

    One failing sink never starves the others: every recorder receives
    the event (or the close/flush) before the first exception is
    re-raised, so a crashing verbose stream cannot truncate the JSONL
    log sharing its fanout.
    """

    enabled = True

    def __init__(self, *recorders):
        self.recorders = [r for r in recorders if r is not None]

    def _broadcast(self, method: str, *args, **kwargs) -> None:
        error: BaseException | None = None
        for recorder in self.recorders:
            try:
                getattr(recorder, method)(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — deliver to all first
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def emit(self, event: str, **fields) -> None:
        self._broadcast("emit", event, **fields)

    def flush(self) -> None:
        self._broadcast("flush")

    def close(self) -> None:
        self._broadcast("close")
