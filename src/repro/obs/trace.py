"""Per-request decision traces and the miss taxonomy.

The aggregate hit ratio says *that* a policy missed; the decision trace
says *why*.  A :class:`DecisionTracer` attached to a policy (via
``CachePolicy.attach_tracer`` or ``simulate(..., tracer=...)``) records,
for every request, the admission verdict with its inputs — the admission
probability ``p_i``, the current threshold ``delta``, the object size,
and the window hazard rank when the policy can supply one — plus the
eviction victims the admission displaced.

On top of the raw records the tracer maintains a streaming **miss
taxonomy** classifying every miss into exactly one of four classes:

* ``cold`` — first request of a content that *is* re-referenced later.
* ``one_hit_wonder`` — first (and only) request of a content that is
  never re-referenced; the class B-LRU's second-hit admission targets.
  Cold vs one-hit-wonder needs the future, so first-occurrence misses
  are counted as cold while streaming and split at :meth:`taxonomy`.
* ``admission_rejected`` — the content was seen before but was not
  resident because its last admission decision rejected it (for LHR:
  ``p_i < delta``; the tracer counts those separately too).
* ``evicted_early`` — the content was admitted and then evicted before
  this re-reference; the miss is attributed to the request whose
  admission displaced it.

The class counts always sum exactly to the total number of misses: every
miss is either a first occurrence (cold ∪ one-hit-wonder) or a re-miss,
and a re-missed content was last either rejected or evicted.

Records may be ring-buffered (``buffer=N`` keeps the last N) and sampled
(``sample_every=K`` keeps every K-th request); the taxonomy counters
always cover every request regardless.  The divergence analyzer
(:mod:`repro.obs.analyze`) requires complete traces — check
:attr:`DecisionTracer.is_complete`.

This module depends on nothing else in the package so it can be imported
from anywhere (policies, engine, metrics) without cycles.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

#: Miss taxonomy class names, in report order.
MISS_COLD = "cold"
MISS_ONE_HIT_WONDER = "one_hit_wonder"
MISS_ADMISSION_REJECTED = "admission_rejected"
MISS_EVICTED_EARLY = "evicted_early"
MISS_CLASSES = (
    MISS_COLD,
    MISS_ONE_HIT_WONDER,
    MISS_ADMISSION_REJECTED,
    MISS_EVICTED_EARLY,
)

# Per-content residency states of the streaming classifier.
_RESIDENT = 0  # last interaction left the content cached (hit or admit)
_REJECTED = 1  # last admission decision declined it
_EVICTED = 2  # admitted at some point, then displaced


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One request's decision, with the inputs that produced it.

    ``admitted`` is the admission verdict on a miss and ``None`` on a
    hit (nothing to admit).  ``probability``/``threshold`` are the
    policy's decision inputs when it has them (LHR's ``p_i``/``delta``;
    HRO's size-normalized hazard threshold), ``hazard_rank`` the
    content's position in the current window's hazard ranking (0 =
    hottest) when tracked.  ``victims`` lists the contents this
    request's admission evicted.  ``miss_class`` is the streaming
    classification — ``cold`` entries may resolve to one-hit-wonders
    once the whole trace has been seen (:meth:`DecisionTracer.class_of`).
    """

    index: int
    time: float
    obj_id: int
    size: int
    hit: bool
    admitted: bool | None = None
    probability: float | None = None
    threshold: float | None = None
    hazard_rank: int | None = None
    victims: tuple[int, ...] = ()
    miss_class: str | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "obj_id": self.obj_id,
            "size": self.size,
            "hit": self.hit,
            "admitted": self.admitted,
            "probability": self.probability,
            "threshold": self.threshold,
            "hazard_rank": self.hazard_rank,
            "victims": list(self.victims),
            "miss_class": self.miss_class,
        }


@dataclass(frozen=True)
class TraceConfig:
    """Picklable recipe for building a :class:`DecisionTracer`.

    Sweep workers can't ship a live tracer in, so they ship this and
    build one per cell (:func:`repro.sim.parallel.run_sweep`).
    """

    buffer: int | None = None
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.buffer is not None and self.buffer <= 0:
            raise ValueError("buffer must be positive (or None for unbounded)")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")

    def build(self) -> "DecisionTracer":
        return DecisionTracer(buffer=self.buffer, sample_every=self.sample_every)


@dataclass
class MissTaxonomy:
    """Final miss classification counts; classes sum to total misses."""

    cold: int = 0
    one_hit_wonder: int = 0
    admission_rejected: int = 0
    evicted_early: int = 0
    #: Of the rejected misses, how many carried ``p_i < delta`` inputs.
    rejected_below_threshold: int = 0
    #: Evicted-early misses whose evictor is unknown (no eviction was
    #: reported for the content — e.g. HRO's implicit set rotations).
    unattributed_evictions: int = 0

    @property
    def total(self) -> int:
        return (
            self.cold
            + self.one_hit_wonder
            + self.admission_rejected
            + self.evicted_early
        )

    def counts(self) -> dict[str, int]:
        return {
            MISS_COLD: self.cold,
            MISS_ONE_HIT_WONDER: self.one_hit_wonder,
            MISS_ADMISSION_REJECTED: self.admission_rejected,
            MISS_EVICTED_EARLY: self.evicted_early,
        }

    def as_dict(self) -> dict:
        return {
            **self.counts(),
            "total_misses": self.total,
            "rejected_below_threshold": self.rejected_below_threshold,
            "unattributed_evictions": self.unattributed_evictions,
        }


class DecisionTracer:
    """Streaming per-request decision recorder and miss classifier.

    Policies call :meth:`observe` once per request (see
    ``CachePolicy._request_traced``); anything that produces per-request
    verdicts — HRO included — can feed one directly.  The tracer never
    touches the policy: it is pure bookkeeping, picklable, and safe to
    ship across process boundaries with a sweep result.
    """

    def __init__(self, buffer: int | None = None, sample_every: int = 1):
        if buffer is not None and buffer <= 0:
            raise ValueError("buffer must be positive (or None for unbounded)")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.buffer = buffer
        self.sample_every = sample_every
        self.records: deque[DecisionRecord] | list[DecisionRecord]
        self.records = deque(maxlen=buffer) if buffer is not None else []
        self.requests = 0
        self.hits = 0
        self.misses = 0
        #: Streaming class counts (cold still holding future one-hit-wonders).
        self._class_counts = Counter()
        self.rejected_below_threshold = 0
        #: evicted-early attribution: evicting obj_id -> misses it caused.
        self.evictor_counts: Counter = Counter()
        self._unattributed = 0
        self._occurrences: dict[int, int] = {}
        self._state: dict[int, int] = {}
        #: victim obj_id -> (evicting request index, evicting obj_id).
        self._evicted_by: dict[int, tuple[int, int]] = {}
        #: contents whose first request was a (cold) miss — the pool the
        #: one-hit-wonder split draws from at taxonomy time.
        self._cold_ids: set[int] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def observe(
        self,
        req,
        hit: bool,
        admitted: bool | None = None,
        probability: float | None = None,
        threshold: float | None = None,
        hazard_rank: int | None = None,
        victims: tuple[int, ...] = (),
    ) -> None:
        """Record one request's decision; ``req`` needs
        ``time``/``obj_id``/``size``/``index`` attributes."""
        index = req.index if req.index >= 0 else self.requests
        obj_id = req.obj_id
        occurrences = self._occurrences.get(obj_id, 0)
        self._occurrences[obj_id] = occurrences + 1
        self.requests += 1
        miss_class: str | None = None
        if hit:
            self.hits += 1
            self._state[obj_id] = _RESIDENT
        else:
            self.misses += 1
            miss_class = self._classify_miss(
                obj_id, occurrences, probability, threshold
            )
            self._class_counts[miss_class] += 1
            self._state[obj_id] = _RESIDENT if admitted else _REJECTED
        for victim in victims:
            self._state[victim] = _EVICTED
            self._evicted_by[victim] = (index, obj_id)
        if index % self.sample_every == 0:
            self.records.append(
                DecisionRecord(
                    index=index,
                    time=req.time,
                    obj_id=obj_id,
                    size=req.size,
                    hit=hit,
                    admitted=admitted,
                    probability=probability,
                    threshold=threshold,
                    hazard_rank=hazard_rank,
                    victims=tuple(victims),
                    miss_class=miss_class,
                )
            )

    def _classify_miss(
        self,
        obj_id: int,
        occurrences: int,
        probability: float | None,
        threshold: float | None,
    ) -> str:
        if occurrences == 0:
            self._cold_ids.add(obj_id)
            return MISS_COLD
        state = self._state.get(obj_id)
        if state == _EVICTED:
            attribution = self._evicted_by.get(obj_id)
            if attribution is not None:
                self.evictor_counts[attribution[1]] += 1
            else:
                self._unattributed += 1
            return MISS_EVICTED_EARLY
        if state == _RESIDENT:
            # A resident content missing means residency was invalidated
            # without an eviction report — HRO's window rotations do this.
            self._unattributed += 1
            return MISS_EVICTED_EARLY
        if (
            probability is not None
            and threshold is not None
            and probability < threshold
        ):
            self.rejected_below_threshold += 1
        return MISS_ADMISSION_REJECTED

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """True when every request produced a retained record."""
        return self.sample_every == 1 and len(self.records) == self.requests

    def one_hit_wonders(self) -> set[int]:
        """Contents requested exactly once whose single request missed."""
        return {
            obj_id
            for obj_id in self._cold_ids
            if self._occurrences.get(obj_id) == 1
        }

    def taxonomy(self) -> MissTaxonomy:
        """The final miss taxonomy; class counts sum to total misses."""
        wonders = len(self.one_hit_wonders())
        return MissTaxonomy(
            cold=self._class_counts[MISS_COLD] - wonders,
            one_hit_wonder=wonders,
            admission_rejected=self._class_counts[MISS_ADMISSION_REJECTED],
            evicted_early=self._class_counts[MISS_EVICTED_EARLY],
            rejected_below_threshold=self.rejected_below_threshold,
            unattributed_evictions=self._unattributed,
        )

    def class_of(self, record: DecisionRecord) -> str | None:
        """Resolve a record's final miss class (cold vs one-hit-wonder)."""
        if record.miss_class != MISS_COLD:
            return record.miss_class
        if self._occurrences.get(record.obj_id) == 1:
            return MISS_ONE_HIT_WONDER
        return MISS_COLD

    def top_evictors(self, n: int = 5) -> list[tuple[int, int]]:
        """The contents whose admissions caused the most early-eviction
        misses, as ``(obj_id, misses_caused)`` pairs."""
        return self.evictor_counts.most_common(n)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def summary(self) -> dict:
        """JSON-able overview: counters, taxonomy and top evictors."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 6),
            "records_kept": len(self.records),
            "sample_every": self.sample_every,
            "buffer": self.buffer,
            "taxonomy": self.taxonomy().as_dict(),
            "top_evictors": [
                {"obj_id": obj_id, "misses_caused": count}
                for obj_id, count in self.top_evictors()
            ],
        }
