"""Timeline analysis over recorded spans.

:func:`analyze_spans` turns the span dicts a run recorded (the same
payload the ledger persists as ``spans.json`` and ``--trace-out``
exports as Chrome trace JSON) into a :class:`TimelineReport`:

* **phase breakdown** — per ``(category, name)`` phase: span count,
  total time, and *self* time (total minus direct children), so "90% of
  the run is ``sim.chunk`` but its self time is 4%" reads correctly when
  window closes and refits nest inside chunks;
* **critical path** — from the outermost root span, repeatedly descend
  into the longest direct child (crossing process boundaries via the
  reparenting :meth:`~repro.obs.spans.SpanRecorder.absorb` applied on
  the sweep result path), yielding the chain that bounded wall time;
* **per-worker utilization** — busy time (cell spans) over the
  timeline's wall range, one lane per pid;
* **stragglers** — max vs. median cell duration and the worst cells,
  the number the parallel sweep's tail latency hides.

The analysis is pure (span dicts in, dataclasses out); ``repro
timeline`` renders :meth:`TimelineReport.render_text`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CriticalHop",
    "PhaseStat",
    "StragglerStats",
    "TimelineReport",
    "WorkerLane",
    "analyze_spans",
]

#: Critical-path walks stop after this many hops (cycles cannot occur —
#: parents always start no later than children — but depth stays bounded
#: for pathological inputs).
MAX_CRITICAL_DEPTH = 24

#: How many straggler cells to surface.
TOP_STRAGGLERS = 5


@dataclass
class PhaseStat:
    """Aggregate for one ``(cat, name)`` phase."""

    cat: str
    name: str
    count: int
    total_seconds: float
    self_seconds: float
    #: ``self_seconds`` as a share of the summed self time (not wall —
    #: parallel lanes make summed self time exceed wall, and shares of
    #: the sum still rank phases honestly).
    self_share: float

    def as_dict(self) -> dict:
        return {
            "cat": self.cat,
            "name": self.name,
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "self_seconds": round(self.self_seconds, 6),
            "self_share": round(self.self_share, 4),
        }


@dataclass
class CriticalHop:
    """One hop on the critical path, root first."""

    name: str
    cat: str
    pid: int
    duration_seconds: float
    #: Share of the *parent hop* this span covers (1.0 for the root).
    parent_share: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "pid": self.pid,
            "duration_seconds": round(self.duration_seconds, 6),
            "parent_share": round(self.parent_share, 4),
        }


@dataclass
class WorkerLane:
    """Busy/wall accounting for one process lane."""

    pid: int
    role: str
    cells: int
    busy_seconds: float
    utilization: float

    def as_dict(self) -> dict:
        return {
            "pid": self.pid,
            "role": self.role,
            "cells": self.cells,
            "busy_seconds": round(self.busy_seconds, 6),
            "utilization": round(self.utilization, 4),
        }


@dataclass
class StragglerStats:
    """Cell-duration spread: how unbalanced was the sweep."""

    cells: int
    max_seconds: float
    median_seconds: float
    #: max/median; 1.0 means perfectly balanced cells.
    straggler_ratio: float
    #: ``(name, pid, seconds)`` of the slowest cells, slowest first.
    worst: list[tuple[str, int, float]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "cells": self.cells,
            "max_seconds": round(self.max_seconds, 6),
            "median_seconds": round(self.median_seconds, 6),
            "straggler_ratio": round(self.straggler_ratio, 3),
            "worst": [
                {"name": name, "pid": pid, "seconds": round(seconds, 6)}
                for name, pid, seconds in self.worst
            ],
        }


@dataclass
class TimelineReport:
    """Everything ``repro timeline`` renders."""

    wall_seconds: float
    span_count: int
    phases: list[PhaseStat]
    critical_path: list[CriticalHop]
    workers: list[WorkerLane]
    stragglers: StragglerStats | None

    def as_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "span_count": self.span_count,
            "phases": [p.as_dict() for p in self.phases],
            "critical_path": [h.as_dict() for h in self.critical_path],
            "workers": [w.as_dict() for w in self.workers],
            "stragglers": self.stragglers.as_dict() if self.stragglers else None,
        }

    def render_text(self) -> str:
        lines = [
            f"timeline: {self.span_count} spans over "
            f"{_fmt_seconds(self.wall_seconds)} wall"
        ]
        lines.append("")
        lines.append("phase self-time breakdown")
        header = f"  {'phase':<28} {'count':>6} {'total':>10} {'self':>10} {'share':>7}"
        lines.append(header)
        for p in self.phases:
            lines.append(
                f"  {p.cat + '/' + p.name:<28.28} {p.count:>6} "
                f"{_fmt_seconds(p.total_seconds):>10} "
                f"{_fmt_seconds(p.self_seconds):>10} "
                f"{100 * p.self_share:>6.1f}%"
            )
        lines.append("")
        lines.append("critical path")
        for depth, hop in enumerate(self.critical_path):
            indent = "  " + "  " * depth
            share = "" if depth == 0 else f"  ({100 * hop.parent_share:.0f}% of parent)"
            lines.append(
                f"{indent}{hop.name} [{hop.cat}, pid {hop.pid}] "
                f"{_fmt_seconds(hop.duration_seconds)}{share}"
            )
        if self.workers:
            lines.append("")
            lines.append("worker utilization")
            for w in self.workers:
                lines.append(
                    f"  {w.role:<14} pid {w.pid:<8} cells {w.cells:>4}  "
                    f"busy {_fmt_seconds(w.busy_seconds):>9}  "
                    f"util {100 * w.utilization:>5.1f}%"
                )
        if self.stragglers:
            s = self.stragglers
            lines.append("")
            lines.append(
                f"stragglers: {s.cells} cells, max "
                f"{_fmt_seconds(s.max_seconds)} vs median "
                f"{_fmt_seconds(s.median_seconds)} "
                f"(ratio {s.straggler_ratio:.2f}x)"
            )
            for name, pid, seconds in s.worst:
                lines.append(f"  {name:<28.28} pid {pid:<8} {_fmt_seconds(seconds)}")
        return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def analyze_spans(span_dicts) -> TimelineReport:
    """Build a :class:`TimelineReport` from span dicts.

    Only completed spans (``end`` set) participate.  Span identity is
    ``(pid, id)``; a cross-process parent reference carries
    ``parent_pid`` (see :meth:`repro.obs.spans.SpanRecorder.absorb`).
    """
    spans = [d for d in span_dicts or () if d.get("end")]
    if not spans:
        return TimelineReport(
            wall_seconds=0.0,
            span_count=0,
            phases=[],
            critical_path=[],
            workers=[],
            stragglers=None,
        )

    t_min = min(d["start"] for d in spans)
    t_max = max(d["end"] for d in spans)
    wall = max(t_max - t_min, 0.0)

    def key(d):
        return (d.get("pid", 0), d["id"])

    def parent_key(d):
        if d.get("parent") is None:
            return None
        return (d.get("parent_pid") or d.get("pid", 0), d["parent"])

    def duration(d):
        return max(d["end"] - d["start"], 0.0)

    by_key = {key(d): d for d in spans}
    children: dict[tuple, list[dict]] = {}
    for d in spans:
        pk = parent_key(d)
        if pk is not None and pk in by_key:
            children.setdefault(pk, []).append(d)

    # --- phase breakdown -------------------------------------------------
    phase_totals: dict[tuple[str, str], list[float]] = {}
    for d in spans:
        child_time = sum(duration(c) for c in children.get(key(d), ()))
        self_time = max(duration(d) - child_time, 0.0)
        bucket = phase_totals.setdefault(
            (d.get("cat", "default"), d["name"]), [0, 0.0, 0.0]
        )
        bucket[0] += 1
        bucket[1] += duration(d)
        bucket[2] += self_time
    total_self = sum(v[2] for v in phase_totals.values()) or 1.0
    phases = [
        PhaseStat(
            cat=cat,
            name=name,
            count=count,
            total_seconds=total,
            self_seconds=self_time,
            self_share=self_time / total_self,
        )
        for (cat, name), (count, total, self_time) in phase_totals.items()
    ]
    phases.sort(key=lambda p: p.self_seconds, reverse=True)

    # --- critical path ---------------------------------------------------
    roots = [d for d in spans if parent_key(d) not in by_key]
    critical: list[CriticalHop] = []
    if roots:
        node = max(roots, key=lambda d: (duration(d), -d["start"]))
        parent_duration = duration(node) or 1.0
        critical.append(
            CriticalHop(
                name=node["name"],
                cat=node.get("cat", "default"),
                pid=node.get("pid", 0),
                duration_seconds=duration(node),
                parent_share=1.0,
            )
        )
        for _ in range(MAX_CRITICAL_DEPTH):
            kids = children.get(key(node))
            if not kids:
                break
            node = max(kids, key=lambda d: (duration(d), -d["start"]))
            critical.append(
                CriticalHop(
                    name=node["name"],
                    cat=node.get("cat", "default"),
                    pid=node.get("pid", 0),
                    duration_seconds=duration(node),
                    parent_share=duration(node) / (parent_duration or 1.0),
                )
            )
            parent_duration = duration(node)

    # --- worker lanes + stragglers (cell spans) --------------------------
    cell_spans = [d for d in spans if d.get("cat") == "cell"]
    workers: list[WorkerLane] = []
    stragglers: StragglerStats | None = None
    if cell_spans:
        driver_pid = None
        if roots:
            driver_pid = max(roots, key=duration).get("pid", 0)
        lanes: dict[int, list[dict]] = {}
        for d in cell_spans:
            lanes.setdefault(d.get("pid", 0), []).append(d)
        for pid in sorted(lanes, key=lambda p: (p != driver_pid, p)):
            cells = lanes[pid]
            busy = sum(duration(c) for c in cells)
            workers.append(
                WorkerLane(
                    pid=pid,
                    role="driver" if pid == driver_pid else "worker",
                    cells=len(cells),
                    busy_seconds=busy,
                    utilization=busy / wall if wall else 0.0,
                )
            )
        durations = [duration(d) for d in cell_spans]
        med = _median(durations)
        worst = sorted(cell_spans, key=duration, reverse=True)[:TOP_STRAGGLERS]
        stragglers = StragglerStats(
            cells=len(cell_spans),
            max_seconds=max(durations),
            median_seconds=med,
            straggler_ratio=(max(durations) / med) if med else 0.0,
            worst=[
                (d["name"], d.get("pid", 0), duration(d)) for d in worst
            ],
        )

    return TimelineReport(
        wall_seconds=wall,
        span_count=len(spans),
        phases=phases,
        critical_path=critical,
        workers=workers,
        stragglers=stragglers,
    )
