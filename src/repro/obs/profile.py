"""Sampling profiler and per-phase cost attribution.

Two complementary answers to "where does a multi-hour replay spend its
time":

* :class:`SamplingProfiler` — a thread-based statistical profiler that
  periodically snapshots the target thread's stack via
  ``sys._current_frames()`` and aggregates identical stacks.  Output is
  the collapsed-stack format flamegraph tooling consumes
  (``thread;frame;frame;frame count`` per line — stacks are rooted at
  the thread's name, so driver vs. heartbeat vs. server threads
  separate in flamegraphs instead of merging indistinguishably; pass
  ``all_threads=True`` to sample every live thread, not just the
  target).  A sampler thread is used
  instead of ``signal.setitimer`` because signals only deliver to the
  main thread and would collide with libraries that install their own
  handlers; the GIL makes a cross-thread frame snapshot consistent
  enough for statistical profiling.
* :func:`phase_breakdown` — exact per-phase accounting from the
  :class:`~repro.obs.timers.ScopedTimer` histograms the instrumented
  hot paths already populate (``lhr_train_seconds``,
  ``lhr_predict_seconds``, ``hro_rank_seconds``, ...), rendered as a
  wall-time share table next to the process RSS.

``repro profile <trace> <policy>`` (see :func:`profile_simulation`)
combines both: it replays the trace under an enabled observation plus a
sampler and reports the phase table and a collapsed-stack file.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.observation import Observation
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.server import current_rss_bytes

#: Human-readable phase names for the histograms the subsystems time.
#: Anything else ending in ``_seconds`` is reported under its raw name.
PHASE_NAMES = {
    "sim_replay_seconds": "replay loop (total)",
    "lhr_train_seconds": "GBM training",
    "lhr_predict_seconds": "GBM inference",
    "hro_rank_seconds": "hazard re-ranking",
    "policy_evictions_per_admission": None,  # count histogram, not a phase
}


class SamplingProfiler:
    """Statistical profiler sampling one thread's stack at an interval.

    Use as a context manager around the code to profile; the profiled
    thread is the one that entered the context (override with
    ``target_ident``, or sample every live thread with
    ``all_threads=True``).  ``samples`` maps stack tuples — thread name
    first, then root→leaf frames — to the number of times they were
    observed.  Thread names come from :func:`threading.enumerate`
    (matched on ``ident``); a thread that cannot be matched falls back
    to ``thread-<ident>``.
    """

    def __init__(
        self,
        interval_seconds: float = 0.005,
        target_ident: int | None = None,
        all_threads: bool = False,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = interval_seconds
        self.all_threads = all_threads
        self.samples: Counter[tuple[str, ...]] = Counter()
        self._target_ident = target_ident
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._target_ident is None:
            self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample_loop(self) -> None:
        target = self._target_ident
        own = threading.get_ident()
        while not self._stop.wait(self.interval_seconds):
            frames = sys._current_frames()
            if frames.get(target) is None:  # target thread exited
                return
            names = {t.ident: t.name for t in threading.enumerate()}
            if self.all_threads:
                snapshot = [
                    (ident, frame)
                    for ident, frame in frames.items()
                    if ident != own  # never sample the sampler itself
                ]
            else:
                snapshot = [(target, frames[target])]
            for ident, frame in snapshot:
                stack: list[str] = []
                while frame is not None:
                    stack.append(_format_frame(frame))
                    frame = frame.f_back
                stack.append(names.get(ident) or f"thread-{ident}")
                self.samples[tuple(reversed(stack))] += 1

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return sum(self.samples.values())

    def collapsed(self) -> str:
        """Collapsed-stack text (``thread;a;b;c 42`` per line,
        flamegraph.pl and speedscope compatible), heaviest stacks first.
        The first element of every stack is the sampled thread's name.
        """
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                self.samples.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.collapsed())
        return path

    def hottest(self, top: int = 10) -> list[tuple[str, int]]:
        """Leaf frames ranked by inclusive sample count."""
        leaves: Counter[str] = Counter()
        for stack, count in self.samples.items():
            leaves[stack[-1]] += count
        return leaves.most_common(top)


def _format_frame(frame) -> str:
    code = frame.f_code
    module = Path(code.co_filename).stem
    return f"{module}.{code.co_name}"


# ----------------------------------------------------------------------
# Phase attribution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseRow:
    """One phase's exact cost, from its scoped-timer histogram."""

    phase: str
    metric: str
    calls: int
    total_seconds: float
    mean_seconds: float
    wall_share: float  # fraction of the run's wall time

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "metric": self.metric,
            "calls": self.calls,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 9),
            "wall_share": round(self.wall_share, 4),
        }


def phase_breakdown(
    registry: MetricsRegistry, wall_seconds: float
) -> list[PhaseRow]:
    """Per-phase wall-time rows from every ``*_seconds`` histogram.

    Phases nest (GBM training happens *inside* the replay loop), so the
    shares are not meant to sum to 100% — the replay-loop row is the
    envelope and the inner rows attribute slices of it.
    """
    rows: list[PhaseRow] = []
    for name in registry.names():
        if not name.endswith("_seconds"):
            continue
        metric = registry.get(name)
        if not isinstance(metric, Histogram) or metric.count == 0:
            continue
        if name in PHASE_NAMES and PHASE_NAMES[name] is None:
            continue
        rows.append(
            PhaseRow(
                phase=PHASE_NAMES.get(name) or name,
                metric=name,
                calls=metric.count,
                total_seconds=metric.sum,
                mean_seconds=metric.sum / metric.count,
                wall_share=(metric.sum / wall_seconds) if wall_seconds else 0.0,
            )
        )
    rows.sort(key=lambda row: -row.total_seconds)
    return rows


@dataclass
class ProfileReport:
    """Everything ``repro profile`` prints or writes for one run."""

    policy: str
    trace: str
    capacity: int
    wall_seconds: float
    rss_bytes: int
    requests: int
    hit_ratio: float
    phases: list[PhaseRow] = field(default_factory=list)
    profiler: SamplingProfiler | None = None

    @property
    def sample_count(self) -> int:
        return self.profiler.sample_count if self.profiler else 0

    def write_collapsed(self, path: str | Path) -> Path:
        if self.profiler is None:
            raise ValueError("report has no attached profiler")
        return self.profiler.write_collapsed(path)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "capacity": self.capacity,
            "wall_seconds": round(self.wall_seconds, 4),
            "rss_bytes": self.rss_bytes,
            "requests": self.requests,
            "hit_ratio": round(self.hit_ratio, 6),
            "samples": self.sample_count,
            "phases": [row.as_dict() for row in self.phases],
        }

    def render_text(self) -> str:
        lines = [
            f"profile: {self.policy} on {self.trace!r} "
            f"(capacity {self.capacity} bytes)",
            f"wall {self.wall_seconds:.3f}s  "
            f"{self.requests / self.wall_seconds if self.wall_seconds else 0.0:,.0f} req/s  "
            f"hit ratio {self.hit_ratio:.4f}  "
            f"rss {self.rss_bytes / (1 << 20):.1f} MB  "
            f"{self.sample_count} stack samples",
            "",
            f"{'phase':<26}{'calls':>10}{'total_s':>12}{'mean_us':>12}{'% wall':>9}",
        ]
        for row in self.phases:
            lines.append(
                f"{row.phase:<26}{row.calls:>10}"
                f"{row.total_seconds:>12.4f}"
                f"{row.mean_seconds * 1e6:>12.1f}"
                f"{100 * row.wall_share:>8.1f}%"
            )
        if not self.phases:
            lines.append("(no timed phases — did the run enable observation?)")
        if self.profiler and self.profiler.samples:
            lines.append("")
            lines.append("hottest frames (inclusive samples):")
            for frame, count in self.profiler.hottest(5):
                share = 100 * count / self.sample_count
                lines.append(f"  {frame:<40} {count:>6}  {share:5.1f}%")
        return "\n".join(lines)


def profile_simulation(
    trace,
    policy_name: str,
    capacity: int,
    window_requests: int = 0,
    warmup_requests: int = 0,
    interval_seconds: float = 0.005,
    policy_kwargs: dict | None = None,
) -> ProfileReport:
    """Replay ``trace`` through ``policy_name`` under the sampler and an
    enabled observation; return the combined :class:`ProfileReport`.
    """
    # Imported here: repro.sim imports repro.obs at module load, so a
    # top-level import would be circular.
    from repro.sim.engine import simulate
    from repro.sim.runner import build_policy

    policy = build_policy(policy_name, capacity, **(policy_kwargs or {}))
    obs = Observation()
    profiler = SamplingProfiler(interval_seconds=interval_seconds)
    start = time.perf_counter()
    with profiler:
        result = simulate(
            policy,
            trace,
            window_requests=window_requests,
            warmup_requests=warmup_requests,
            obs=obs,
        )
    wall = time.perf_counter() - start
    return ProfileReport(
        policy=result.policy,
        trace=trace.name,
        capacity=capacity,
        wall_seconds=wall,
        rss_bytes=current_rss_bytes(),
        requests=result.requests,
        hit_ratio=result.object_hit_ratio,
        phases=phase_breakdown(obs.registry, wall),
        profiler=profiler,
    )
