"""LHR ↔ HRO divergence auditing over decision traces.

The paper's central claim is that LHR works because it *imitates* HRO's
per-request verdicts (Sections 4–5).  This module quantifies how well
that imitation holds on a given trace: it joins a policy's decision
trace (:mod:`repro.obs.trace`) against an HRO decision trace of the same
requests and produces a per-window **divergence report**:

* **agreement rate** — the fraction of requests where the policy's
  cacheability verdict (hit, or miss-and-admitted) matches HRO's
  (content in the current hazard top set);
* **false admits** — the policy admits/holds a content HRO would not
  cache;
* **false rejects** — the policy rejects/lacks a content HRO would
  cache (the verdicts the imitation loss actually penalizes);
* **hit-ratio gap attribution** — of the requests HRO classifies as
  hits but the policy missed, how many fall into each miss-taxonomy
  class (``admission_rejected``, ``evicted_early``, …), which localizes
  the gap the same way the paper's Figs. 9–11 ablations do.

``analyze_trace`` is the one-call entry point behind the ``repro
analyze`` CLI subcommand: run the policy (traced) and HRO (traced) over
one trace and assemble an :class:`AnalysisReport` renderable as text,
JSON, or a per-window CSV time series.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.hro import HroBound
from repro.obs.trace import MISS_CLASSES, DecisionTracer, MissTaxonomy


def decision_verdict(record) -> bool:
    """A record's cacheability verdict: the policy holds (hit) or wants
    (miss-and-admitted) the content after this request."""
    return record.hit or bool(record.admitted)


def trace_hro(
    trace,
    capacity: int,
    window_multiple: float = 4.0,
    min_window_requests: int = 0,
    hazard_model: str = "poisson",
    tracer: DecisionTracer | None = None,
) -> tuple[DecisionTracer, HroBound]:
    """Run HRO over ``trace`` recording a per-request decision trace.

    Each record's ``admitted`` carries HRO's cacheability verdict — the
    content sits in the current hazard top set (or everything, before
    the first window closes) — for hits and misses alike, so
    :func:`decision_verdict` works on both sides of the join.
    ``threshold`` is the marginal size-normalized hazard and
    ``hazard_rank`` the content's position in the current ranking.
    HRO has no explicit evictions; a previously-cacheable content that
    drops out of the top set shows up as an *unattributed*
    ``evicted_early`` miss in the taxonomy.
    """
    bound = HroBound(
        capacity,
        window_multiple,
        min_window_requests=min_window_requests,
        hazard_model=hazard_model,
    )
    bound.track_decisions = True
    if tracer is None:
        tracer = DecisionTracer()
    for req in trace:
        hit = bound.process(req)
        tracer.observe(
            req,
            hit=hit,
            admitted=bound.last_would_cache,
            threshold=bound.hazard_threshold,
            hazard_rank=bound.hazard_rank(req.obj_id),
        )
    return tracer, bound


@dataclass
class WindowDivergence:
    """Policy-vs-HRO decision agreement over one reporting window."""

    index: int
    requests: int = 0
    policy_hits: int = 0
    hro_hits: int = 0
    agreements: int = 0
    false_admits: int = 0
    false_rejects: int = 0
    #: HRO-hit-but-policy-miss counts by the policy's miss class.
    gap_by_class: dict[str, int] = field(default_factory=dict)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.requests if self.requests else 0.0

    @property
    def policy_hit_ratio(self) -> float:
        return self.policy_hits / self.requests if self.requests else 0.0

    @property
    def hro_hit_ratio(self) -> float:
        return self.hro_hits / self.requests if self.requests else 0.0

    @property
    def hit_ratio_gap(self) -> float:
        """HRO hit ratio minus policy hit ratio (>= 0 in expectation:
        HRO upper-bounds every non-anticipative policy)."""
        return self.hro_hit_ratio - self.policy_hit_ratio

    def as_row(self) -> dict:
        """Flat dict for CSV/JSON time series."""
        row = {
            "window": self.index,
            "requests": self.requests,
            "policy_hits": self.policy_hits,
            "hro_hits": self.hro_hits,
            "policy_hit_ratio": round(self.policy_hit_ratio, 6),
            "hro_hit_ratio": round(self.hro_hit_ratio, 6),
            "hit_ratio_gap": round(self.hit_ratio_gap, 6),
            "agreement_rate": round(self.agreement_rate, 6),
            "false_admits": self.false_admits,
            "false_rejects": self.false_rejects,
        }
        for name in MISS_CLASSES:
            row[f"gap_{name}"] = self.gap_by_class.get(name, 0)
        return row


@dataclass
class DivergenceReport:
    """Per-window and aggregate LHR↔HRO decision divergence."""

    policy: str
    windows: list[WindowDivergence]
    totals: WindowDivergence

    @property
    def agreement_rate(self) -> float:
        return self.totals.agreement_rate

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "totals": {**self.totals.as_row(), "window": None},
            "windows": [w.as_row() for w in self.windows],
        }

    def csv_rows(self) -> list[dict]:
        return [w.as_row() for w in self.windows]

    def write_csv(self, path: str | Path) -> None:
        """Per-window divergence time series as CSV."""
        rows = self.csv_rows()
        fieldnames = list(
            rows[0] if rows else WindowDivergence(index=0).as_row()
        )
        with Path(path).open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)


def divergence_report(
    policy_tracer: DecisionTracer,
    hro_tracer: DecisionTracer,
    window_requests: int = 1000,
    policy: str = "policy",
) -> DivergenceReport:
    """Join two complete decision traces of the same request stream.

    Both tracers must be complete (no ring buffering, no sampling) and
    cover the same number of requests; records are joined positionally
    and verified to refer to the same content.
    """
    if not policy_tracer.is_complete or not hro_tracer.is_complete:
        raise ValueError(
            "divergence analysis needs complete decision traces "
            "(buffer=None, sample_every=1)"
        )
    if policy_tracer.requests != hro_tracer.requests:
        raise ValueError(
            f"traces cover different request counts: "
            f"{policy_tracer.requests} vs {hro_tracer.requests}"
        )
    if window_requests <= 0:
        raise ValueError("window_requests must be positive")
    windows: list[WindowDivergence] = []
    totals = WindowDivergence(index=-1)
    current: WindowDivergence | None = None
    for position, (mine, theirs) in enumerate(
        zip(policy_tracer.records, hro_tracer.records)
    ):
        if mine.obj_id != theirs.obj_id:
            raise ValueError(
                f"decision traces disagree on request {position}: "
                f"obj {mine.obj_id} vs {theirs.obj_id} — not the same trace"
            )
        if current is None or current.requests >= window_requests:
            current = WindowDivergence(index=len(windows))
            windows.append(current)
        policy_verdict = decision_verdict(mine)
        hro_verdict = decision_verdict(theirs)
        for bucket in (current, totals):
            bucket.requests += 1
            bucket.policy_hits += mine.hit
            bucket.hro_hits += theirs.hit
            if policy_verdict == hro_verdict:
                bucket.agreements += 1
            elif policy_verdict:
                bucket.false_admits += 1
            else:
                bucket.false_rejects += 1
        if theirs.hit and not mine.hit:
            missed_class = policy_tracer.class_of(mine)
            if missed_class is not None:
                for bucket in (current, totals):
                    bucket.gap_by_class[missed_class] = (
                        bucket.gap_by_class.get(missed_class, 0) + 1
                    )
    return DivergenceReport(policy=policy, windows=windows, totals=totals)


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` reports for one (trace, capacity)."""

    trace: str
    policy: str
    capacity: int
    requests: int
    policy_taxonomy: MissTaxonomy
    hro_taxonomy: MissTaxonomy
    divergence: DivergenceReport
    policy_hit_ratio: float
    hro_hit_ratio: float
    top_evictors: list[tuple[int, int]]

    def as_dict(self) -> dict:
        return {
            "trace": self.trace,
            "policy": self.policy,
            "capacity": self.capacity,
            "requests": self.requests,
            "policy_hit_ratio": round(self.policy_hit_ratio, 6),
            "hro_hit_ratio": round(self.hro_hit_ratio, 6),
            "miss_taxonomy": self.policy_taxonomy.as_dict(),
            "hro_miss_taxonomy": self.hro_taxonomy.as_dict(),
            "top_evictors": [
                {"obj_id": obj_id, "misses_caused": count}
                for obj_id, count in self.top_evictors
            ],
            "divergence": self.divergence.as_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def render_text(self) -> str:
        """Human-readable report: taxonomy table, divergence summary and
        the per-window time series."""
        tax = self.policy_taxonomy
        lines = [
            f"analysis: {self.policy} vs hro on {self.trace!r} "
            f"(capacity {self.capacity} bytes, {self.requests} requests)",
            "",
            f"hit ratio: {self.policy_hit_ratio:.4f} ({self.policy})  "
            f"{self.hro_hit_ratio:.4f} (hro bound)  "
            f"gap {self.hro_hit_ratio - self.policy_hit_ratio:+.4f}",
            "",
            f"miss taxonomy ({self.policy}): {tax.total} misses",
        ]
        for name, count in tax.counts().items():
            share = count / tax.total if tax.total else 0.0
            detail = ""
            if name == "admission_rejected" and tax.rejected_below_threshold:
                detail = f"  (p < delta: {tax.rejected_below_threshold})"
            if name == "evicted_early" and tax.unattributed_evictions:
                detail = f"  (unattributed: {tax.unattributed_evictions})"
            lines.append(f"  {name:<20} {count:>8}  {share:>6.1%}{detail}")
        if self.top_evictors:
            evictors = ", ".join(
                f"{obj_id} ({count})" for obj_id, count in self.top_evictors
            )
            lines.append(f"  top evictors (obj_id (misses caused)): {evictors}")
        totals = self.divergence.totals
        lines += [
            "",
            f"divergence vs hro: agreement {totals.agreement_rate:.4f}  "
            f"false admits {totals.false_admits}  "
            f"false rejects {totals.false_rejects}",
        ]
        gap = totals.gap_by_class
        if gap:
            attributed = ", ".join(
                f"{name}={gap[name]}" for name in MISS_CLASSES if name in gap
            )
            lines.append(f"hit-ratio gap attribution (hro hit, we missed): {attributed}")
        rows = self.divergence.csv_rows()
        if rows:
            lines.append("")
            lines.append(
                f"{'window':>6}{'requests':>10}{'hit':>8}{'hro':>8}"
                f"{'gap':>8}{'agree':>8}{'f.adm':>7}{'f.rej':>7}"
            )
            for row in rows:
                lines.append(
                    f"{row['window']:>6}{row['requests']:>10}"
                    f"{row['policy_hit_ratio']:>8.3f}{row['hro_hit_ratio']:>8.3f}"
                    f"{row['hit_ratio_gap']:>8.3f}{row['agreement_rate']:>8.3f}"
                    f"{row['false_admits']:>7}{row['false_rejects']:>7}"
                )
        return "\n".join(lines)


def analyze_trace(
    trace,
    capacity: int,
    policy: str = "lhr",
    window_requests: int = 1000,
    policy_kwargs: dict | None = None,
    window_multiple: float = 4.0,
    min_window_requests: int = 512,
) -> AnalysisReport:
    """Run ``policy`` (traced) and HRO (traced) over ``trace`` and join
    them into an :class:`AnalysisReport`.

    ``window_multiple``/``min_window_requests`` configure the HRO
    reference bound; when the policy is an LHR variant the same values
    are passed to it so both sides window the trace identically.
    """
    # Imported here: repro.sim imports repro.obs at package init, so a
    # top-level import would be circular.
    from repro.sim.engine import simulate
    from repro.sim.runner import build_policy

    kwargs = dict(policy_kwargs or {})
    if policy in ("lhr", "d-lhr", "n-lhr"):
        kwargs.setdefault("window_multiple", window_multiple)
        kwargs.setdefault("min_window_requests", min_window_requests)
    policy_obj = build_policy(policy, capacity, **kwargs)
    policy_tracer = DecisionTracer()
    simulate(policy_obj, trace, tracer=policy_tracer)
    hro_tracer, _ = trace_hro(
        trace,
        capacity,
        window_multiple=window_multiple,
        min_window_requests=min_window_requests,
    )
    divergence = divergence_report(
        policy_tracer,
        hro_tracer,
        window_requests=window_requests,
        policy=policy_obj.name,
    )
    return AnalysisReport(
        trace=getattr(trace, "name", "trace"),
        policy=policy_obj.name,
        capacity=capacity,
        requests=policy_tracer.requests,
        policy_taxonomy=policy_tracer.taxonomy(),
        hro_taxonomy=hro_tracer.taxonomy(),
        divergence=divergence,
        policy_hit_ratio=policy_tracer.hit_ratio,
        hro_hit_ratio=hro_tracer.hit_ratio,
        top_evictors=policy_tracer.top_evictors(),
    )
