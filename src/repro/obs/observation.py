"""The observation handle threaded through the simulator and policies.

An :class:`Observation` bundles the two sinks instrumentation writes to —
a structured-event recorder and a metrics registry — behind one object
that is cheap to carry and cheap to ignore:

* ``obs.emit("lhr.retrain", ...)`` records a structured event,
* ``obs.timer("lhr_train_seconds")`` returns a scoped timer whose
  duration aggregates into a registry histogram,
* ``obs.registry.counter(...)`` etc. for direct metric access.

A third sink, ``obs.spans``, carries the timeline recorder
(:mod:`repro.obs.spans`); it defaults to the no-op :data:`NULL_SPANS`
and is deliberately *not* covered by ``enabled`` — ``enabled`` keeps
meaning "events and metrics flow", while span recording has its own
``obs.spans.enabled`` flag.  That split is what lets
:meth:`Observation.spans_only` record a timeline while the packed
replay fast path and native policy kernels (both gated on
``obs.enabled``) stay engaged.

A fourth sink, ``obs.learner``, carries the per-window learner-health
telemetry (:mod:`repro.obs.learner`).  It follows the same contract as
spans: defaults to the no-op :data:`NULL_LEARNER`, has its own
``obs.learner.enabled`` flag outside ``enabled``, and — because it only
collects at window close from buffers LHR already keeps — leaves the
packed fast path and the per-request accounting bit-identical.

The module-level :data:`NULL_OBS` singleton is the disabled handle:
``enabled`` is False, ``emit`` does nothing and ``timer`` returns a
shared no-op, so code holding it pays one attribute check per
instrumentation site.  Everything defaults to :data:`NULL_OBS`;
observation is strictly opt-in.
"""

from __future__ import annotations

from repro.obs.events import NullRecorder
from repro.obs.learner import NULL_LEARNER
from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.spans import NULL_SPANS
from repro.obs.timers import NULL_TIMER, ScopedTimer


class Observation:
    """Live observation: events go to ``recorder``, metrics to ``registry``.

    ``recorder`` may stay a :class:`NullRecorder` when only metrics are
    wanted (the CLI's ``--metrics-out`` without ``--log-json``).
    """

    enabled = True

    def __init__(
        self,
        recorder=None,
        registry: MetricsRegistry | None = None,
        spans=None,
        learner=None,
    ):
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = spans if spans is not None else NULL_SPANS
        self.learner = learner if learner is not None else NULL_LEARNER

    @classmethod
    def spans_only(cls, spans) -> "Observation":
        """An observation that records *only* the span timeline.

        ``enabled`` is forced False on the instance, so event emission,
        metrics, the packed replay fast path and native policy kernels
        all behave exactly as with :data:`NULL_OBS` — ``--trace-out``
        without other observability flags must not change what executes,
        only record when it ran.
        """
        obs = cls(spans=spans)
        obs.enabled = False
        return obs

    @classmethod
    def sidecars_only(cls, spans=None, learner=None) -> "Observation":
        """An observation carrying only sidecar sinks (spans and/or the
        learner telemetry), with ``enabled`` forced False — the packed
        fast path, event emission and metrics behave exactly as with
        :data:`NULL_OBS` while the sidecars still record."""
        obs = cls(spans=spans, learner=learner)
        obs.enabled = False
        return obs

    def emit(self, event: str, **fields) -> None:
        self.recorder.emit(event, **fields)

    def timer(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> ScopedTimer:
        """A scoped timer aggregating into histogram ``name``."""
        return ScopedTimer(self.registry.histogram(name, help=help, buckets=buckets))

    def flush(self) -> None:
        self.recorder.flush()

    def close(self) -> None:
        self.recorder.close()

    def __enter__(self) -> "Observation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullObservation(Observation):
    """The disabled handle — safe to share, impossible to observe with."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def emit(self, event: str, **fields) -> None:
        pass

    def timer(self, name, help="", buckets=DEFAULT_TIME_BUCKETS):
        return NULL_TIMER

    def close(self) -> None:
        pass


#: Shared disabled observation; the default everywhere.
NULL_OBS = _NullObservation()
