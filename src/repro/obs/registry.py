"""Metrics registry: counters, gauges and histograms.

The registry is the aggregation point for everything the simulator and
the LHR internals measure about themselves — request totals, retraining
counts, scoped-timer durations.  Three design rules keep it cheap and
mergeable:

* **Flat names** — metrics are identified by a dotted/underscored name
  (``lhr_train_seconds``), no label dimensions; a sweep cell's context is
  carried by merging per-cell registries, not by label cardinality.
* **Streaming only** — histograms combine fixed buckets (Prometheus
  style) with the streaming estimators from :mod:`repro.util.stats`, so
  memory stays constant over arbitrarily long runs.
* **Mergeable** — :meth:`MetricsRegistry.merge` folds a worker process's
  registry into the parent's, which is how parallel sweeps stay
  observable (see :mod:`repro.sim.parallel`).

Snapshots export as JSON (:meth:`MetricsRegistry.as_dict`) or as
Prometheus text exposition format (:meth:`MetricsRegistry.to_prometheus`).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from pathlib import Path

from repro.util.stats import PercentileTracker, RunningStats

#: Default histogram buckets for durations in seconds: ~5 decades around
#: the microsecond-to-second range the replay/train/predict paths span.
DEFAULT_TIME_BUCKETS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def merge(self, other: "Counter") -> None:
        self._value += other._value

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-written value (e.g. current threshold, peak memory)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (peak-style gauges)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Gauge") -> None:
        # Without timestamps "last write" is meaningless across registries;
        # peak semantics are the useful cross-process reduction.
        self.max(other._value)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram plus streaming moments and percentiles.

    Buckets follow the Prometheus convention: ``bucket_counts[i]`` counts
    observations ``<= buckets[i]``, with an implicit ``+Inf`` bucket at
    the end.  Exact mean/min/max come from Welford moments; arbitrary
    percentiles from a bounded reservoir (both from :mod:`repro.util.stats`).
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "stats", "reservoir")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.stats = RunningStats()
        self.reservoir = PercentileTracker(capacity=4096, seed=0)

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.stats.add(value)
        self.reservoir.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def sum(self) -> float:
        return self.stats.mean * self.stats.count

    def percentile(self, q: float) -> float:
        return self.reservoir.percentile(q)

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layouts differ"
            )
        for i, count in enumerate(other.bucket_counts):
            self.bucket_counts[i] += count
        self.stats.merge(other.stats)
        self.reservoir.merge(other.reservoir)

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.stats.count,
            "sum": self.sum,
            "mean": self.stats.mean,
            "min": self.stats.minimum,
            "max": self.stats.maximum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": {
                _le(upper): count
                for upper, count in zip(
                    (*self.buckets, float("inf")), self.bucket_counts
                )
            },
        }


def _le(upper: float) -> str:
    return "+Inf" if upper == float("inf") else repr(upper)


#: The Prometheus metric-name charset (exposition format 0.0.4).
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


def _escape_help(text: str) -> str:
    """Escape HELP text for the exposition format.

    Backslashes and line feeds are the characters the format escapes;
    a raw newline would split the comment and corrupt the scrape.
    Double quotes are escaped too so HELP text can be pasted into label
    values without re-escaping.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


class MetricsRegistry:
    """Named collection of counters, gauges and histograms.

    Accessors are get-or-create, so instrumentation sites never need to
    pre-declare metrics; asking for an existing name with a conflicting
    kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The registered metric named ``name``, or None — unlike the
        typed accessors this never creates and never type-checks."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (sum counters, max gauges,
        merge histogram buckets/moments/reservoirs)."""
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                kwargs = {"help": theirs.help}
                if isinstance(theirs, Histogram):
                    kwargs["buckets"] = theirs.buckets
                mine = type(theirs)(name, **kwargs)
                self._metrics[name] = mine
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} vs {type(theirs).__name__}"
                )
            mine.merge(theirs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able snapshot of every metric, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Raises ``ValueError`` for metric names outside the Prometheus
        charset — emitting them raw would produce an unscrapable page.
        """
        lines: list[str] = []
        for name in self.names():
            if _METRIC_NAME_RE.fullmatch(name) is None:
                raise ValueError(
                    f"metric name {name!r} is not a valid Prometheus "
                    "name ([a-zA-Z_:][a-zA-Z0-9_:]*)"
                )
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {metric.value}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for upper, count in zip(
                    (*metric.buckets, float("inf")), metric.bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f'{name}_bucket{{le="{_le(upper)}"}} {cumulative}'
                    )
                lines.append(f"{name}_sum {metric.sum}")
                lines.append(f"{name}_count {metric.count}")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> None:
        """Write a snapshot to ``path``.

        ``.prom``/``.txt`` suffixes select the Prometheus text format;
        anything else writes JSON.
        """
        path = Path(path)
        if path.suffix.lower() in (".prom", ".txt"):
            path.write_text(self.to_prometheus())
        else:
            path.write_text(self.to_json() + "\n")
