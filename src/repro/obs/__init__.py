"""Observability substrate: metrics registry, structured events, timers,
plus the live ops surface (HTTP exporter, sampling profiler, benchmark
regression sentinel).

See ``docs/OBSERVABILITY.md`` for the event catalog, metric naming and
CLI usage (``--log-json``, ``--metrics-out``, ``--verbose``, ``--serve``,
``repro profile``, ``repro bench-compare``).
"""

from repro.obs.baseline import (
    BaselineTolerance,
    BaselineVerdict,
    compare_files,
    compare_payloads,
    load_telemetry,
    validate_telemetry,
)
from repro.obs.events import (
    EVENT_TYPES,
    FanoutRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TextRecorder,
    register_event_type,
)
from repro.obs.observation import NULL_OBS, Observation
from repro.obs.profile import (
    PhaseRow,
    ProfileReport,
    SamplingProfiler,
    phase_breakdown,
    profile_simulation,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.server import ObsServer, ProgressTracker, current_rss_bytes
from repro.obs.timers import NULL_TIMER, ScopedTimer
from repro.obs.trace import (
    MISS_CLASSES,
    DecisionRecord,
    DecisionTracer,
    MissTaxonomy,
    TraceConfig,
)

__all__ = [
    "BaselineTolerance",
    "BaselineVerdict",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DecisionRecord",
    "DecisionTracer",
    "EVENT_TYPES",
    "FanoutRecorder",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "MISS_CLASSES",
    "MemoryRecorder",
    "MetricsRegistry",
    "MissTaxonomy",
    "NULL_OBS",
    "NULL_TIMER",
    "NullRecorder",
    "ObsServer",
    "Observation",
    "PhaseRow",
    "ProfileReport",
    "ProgressTracker",
    "SamplingProfiler",
    "ScopedTimer",
    "TextRecorder",
    "TraceConfig",
    "compare_files",
    "compare_payloads",
    "current_rss_bytes",
    "load_telemetry",
    "phase_breakdown",
    "profile_simulation",
    "register_event_type",
    "validate_telemetry",
]
