"""Observability substrate: metrics registry, structured events, timers,
span-based timeline tracing (cross-process spans, Perfetto export,
critical-path/straggler analysis), plus the live ops surface (HTTP
exporter, sampling profiler, benchmark regression sentinel) and the
persistent run ledger (cross-run experiment tracking, SLO checks,
history-aware regression trends).

See ``docs/OBSERVABILITY.md`` for the event catalog, metric naming and
CLI usage (``--log-json``, ``--metrics-out``, ``--verbose``, ``--serve``,
``--trace-out``, ``repro profile``, ``repro timeline``,
``repro bench-compare``, ``repro runs``).
"""

from repro.obs.baseline import (
    BaselineTolerance,
    BaselineVerdict,
    compare_files,
    compare_payloads,
    compare_with_history,
    history_payload,
    load_telemetry,
    upgrade_payload,
    validate_telemetry,
)
from repro.obs.events import (
    EVENT_TYPES,
    FanoutRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TextRecorder,
    read_events_jsonl,
    register_event_type,
)
from repro.obs.observation import NULL_OBS, Observation
from repro.obs.profile import (
    PhaseRow,
    ProfileReport,
    SamplingProfiler,
    phase_breakdown,
    profile_simulation,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runs import (
    RunDiff,
    RunLedger,
    RunRecord,
    config_digest,
    current_git_rev,
    default_ledger_root,
    diff_records,
    digest_events,
    record_from_results,
)
from repro.obs.server import ObsServer, ProgressTracker, current_rss_bytes
from repro.obs.slo import SloReport, SloRule, SloSpec, evaluate_slo
from repro.obs.spans import (
    NULL_SPANS,
    Span,
    SpanRecorder,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeline import (
    CriticalHop,
    PhaseStat,
    StragglerStats,
    TimelineReport,
    WorkerLane,
    analyze_spans,
)
from repro.obs.timers import NULL_TIMER, ScopedTimer
from repro.obs.trace import (
    MISS_CLASSES,
    DecisionRecord,
    DecisionTracer,
    MissTaxonomy,
    TraceConfig,
)

__all__ = [
    "BaselineTolerance",
    "BaselineVerdict",
    "Counter",
    "CriticalHop",
    "DEFAULT_TIME_BUCKETS",
    "DecisionRecord",
    "DecisionTracer",
    "EVENT_TYPES",
    "FanoutRecorder",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "MISS_CLASSES",
    "MemoryRecorder",
    "MetricsRegistry",
    "MissTaxonomy",
    "NULL_OBS",
    "NULL_SPANS",
    "NULL_TIMER",
    "NullRecorder",
    "ObsServer",
    "Observation",
    "PhaseRow",
    "PhaseStat",
    "ProfileReport",
    "ProgressTracker",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "SamplingProfiler",
    "ScopedTimer",
    "SloReport",
    "SloRule",
    "SloSpec",
    "Span",
    "SpanRecorder",
    "StragglerStats",
    "TextRecorder",
    "TimelineReport",
    "TraceConfig",
    "WorkerLane",
    "analyze_spans",
    "chrome_trace",
    "compare_files",
    "compare_payloads",
    "compare_with_history",
    "config_digest",
    "current_git_rev",
    "current_rss_bytes",
    "default_ledger_root",
    "diff_records",
    "digest_events",
    "evaluate_slo",
    "history_payload",
    "load_telemetry",
    "phase_breakdown",
    "profile_simulation",
    "read_events_jsonl",
    "record_from_results",
    "register_event_type",
    "upgrade_payload",
    "validate_telemetry",
    "write_chrome_trace",
]
