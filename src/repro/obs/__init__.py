"""Observability substrate: metrics registry, structured events, timers.

See ``docs/OBSERVABILITY.md`` for the event catalog, metric naming and
CLI usage (``--log-json``, ``--metrics-out``, ``--verbose``).
"""

from repro.obs.events import (
    EVENT_TYPES,
    FanoutRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TextRecorder,
    register_event_type,
)
from repro.obs.observation import NULL_OBS, Observation
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timers import NULL_TIMER, ScopedTimer

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "EVENT_TYPES",
    "FanoutRecorder",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "MemoryRecorder",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TIMER",
    "NullRecorder",
    "Observation",
    "ScopedTimer",
    "TextRecorder",
    "register_event_type",
]
