"""Observability substrate: metrics registry, structured events, timers.

See ``docs/OBSERVABILITY.md`` for the event catalog, metric naming and
CLI usage (``--log-json``, ``--metrics-out``, ``--verbose``).
"""

from repro.obs.events import (
    EVENT_TYPES,
    FanoutRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TextRecorder,
    register_event_type,
)
from repro.obs.observation import NULL_OBS, Observation
from repro.obs.trace import (
    MISS_CLASSES,
    DecisionRecord,
    DecisionTracer,
    MissTaxonomy,
    TraceConfig,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timers import NULL_TIMER, ScopedTimer

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "DecisionRecord",
    "DecisionTracer",
    "EVENT_TYPES",
    "FanoutRecorder",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "MISS_CLASSES",
    "MemoryRecorder",
    "MetricsRegistry",
    "MissTaxonomy",
    "NULL_OBS",
    "NULL_TIMER",
    "NullRecorder",
    "Observation",
    "ScopedTimer",
    "TextRecorder",
    "TraceConfig",
    "register_event_type",
]
