"""Declarative SLOs over run-ledger records.

An :class:`SloSpec` is a small JSON document — hit-ratio floors per
policy/scenario, retrain-rate ceilings, runtime budgets, a stall-count
cap — evaluated against one :class:`~repro.obs.runs.RunRecord` by
``repro runs check``.  Exit-code semantics match ``bench-compare``:
0 when every rule holds, 1 on any violation (or ``--warn-only``).

Spec format (``schema: repro-slo/1``)::

    {
      "schema": "repro-slo/1",
      "rules": [
        {"metric": "object_hit_ratio", "min": 0.25, "policy": "lhr"},
        {"metric": "retrains", "max": 5, "scenario": "churn"},
        {"metric": "wall_seconds", "max": 60},
        {"metric": "stalls", "max": 0}
      ]
    }

Cell-scope metrics (``object_hit_ratio``, ``byte_hit_ratio``,
``requests``, ``hits``, ``evictions``, ``admissions``,
``runtime_seconds``) are checked against **every** cell matched by the
optional ``policy`` / ``scenario`` / ``capacity`` selectors; a rule
that matches no cells *fails* (a missing cell must never pass a floor
silently).  Run-scope metrics (``wall_seconds`` from the metrics
snapshot; ``stalls`` and ``failures`` from the event digest) are
checked once per run and reject selectors.  The learner-activity
metrics (``retrains``, ``drift_windows``, ``drift_detections``) exist
at both scopes: with a selector they read each matched cell's counts
(workload-lab records carry them per cell), without one they read the
run-wide event digest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SLO_SCHEMA = "repro-slo/1"

#: Metrics read off each matched cell dict.  The learner-activity trio
#: (``retrains``/``drift_windows``/``drift_detections``) is cell-scope
#: only when the rule has a selector; see :attr:`SloRule.is_run_scope`.
CELL_METRICS = (
    "object_hit_ratio",
    "byte_hit_ratio",
    "requests",
    "hits",
    "evictions",
    "admissions",
    "runtime_seconds",
    "retrains",
    "drift_windows",
    "drift_detections",
)

#: Metrics read once per run, from the event digest...
RUN_EVENT_METRICS = (
    "stalls",
    "failures",
    "retrains",
    "drift_windows",
    "drift_detections",
)

#: ...or from the run-level metrics snapshot.
RUN_SNAPSHOT_METRICS = ("wall_seconds", "requests_total")

__all__ = [
    "CELL_METRICS",
    "RUN_EVENT_METRICS",
    "RUN_SNAPSHOT_METRICS",
    "SLO_SCHEMA",
    "RuleResult",
    "SloReport",
    "SloRule",
    "SloSpec",
    "evaluate_slo",
]


@dataclass
class SloRule:
    """One bound: ``min <= metric <= max`` over its scope."""

    metric: str
    min: float | None = None
    max: float | None = None
    policy: str | None = None
    scenario: str | None = None
    capacity: int | None = None

    def __post_init__(self) -> None:
        known = sorted(
            set(CELL_METRICS + RUN_EVENT_METRICS + RUN_SNAPSHOT_METRICS)
        )
        if self.metric not in known:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; "
                f"expected one of {', '.join(known)}"
            )
        if self.min is None and self.max is None:
            raise ValueError(
                f"SLO rule for {self.metric!r} needs a min and/or max bound"
            )
        if self.has_selector and self.metric not in CELL_METRICS:
            raise ValueError(
                f"{self.metric!r} is run-scoped; policy/scenario/capacity "
                "selectors do not apply"
            )

    @property
    def has_selector(self) -> bool:
        return (
            self.policy is not None
            or self.scenario is not None
            or self.capacity is not None
        )

    @property
    def is_run_scope(self) -> bool:
        if self.metric in RUN_SNAPSHOT_METRICS:
            return True
        if self.metric not in RUN_EVENT_METRICS:
            return False
        # Dual-scope learner-activity metric: a selector pins it to the
        # matched cells, no selector reads the run-wide digest.
        return not self.has_selector

    def matches(self, cell: dict) -> bool:
        if self.policy is not None and cell.get("policy") != self.policy:
            return False
        if self.scenario is not None and cell.get("scenario") != self.scenario:
            return False
        if self.capacity is not None and cell.get("capacity") != self.capacity:
            return False
        return True

    def bounds_text(self) -> str:
        parts = []
        if self.min is not None:
            parts.append(f">= {self.min}")
        if self.max is not None:
            parts.append(f"<= {self.max}")
        return " and ".join(parts)

    def selector_text(self) -> str:
        parts = [
            f"{key}={value}"
            for key, value in (
                ("policy", self.policy),
                ("scenario", self.scenario),
                ("capacity", self.capacity),
            )
            if value is not None
        ]
        return f" [{', '.join(parts)}]" if parts else ""

    def describe(self) -> str:
        return f"{self.metric} {self.bounds_text()}{self.selector_text()}"

    def check_value(self, value: float) -> bool:
        if self.min is not None and value < self.min:
            return False
        if self.max is not None and value > self.max:
            return False
        return True

    @classmethod
    def from_dict(cls, raw: dict) -> "SloRule":
        unknown = set(raw) - {
            "metric", "min", "max", "policy", "scenario", "capacity"
        }
        if unknown:
            raise ValueError(
                f"unknown SLO rule field(s): {', '.join(sorted(unknown))}"
            )
        if "metric" not in raw:
            raise ValueError("SLO rule is missing 'metric'")
        return cls(
            metric=raw["metric"],
            min=raw.get("min"),
            max=raw.get("max"),
            policy=raw.get("policy"),
            scenario=raw.get("scenario"),
            capacity=raw.get("capacity"),
        )

    def as_dict(self) -> dict:
        out: dict = {"metric": self.metric}
        for key in ("min", "max", "policy", "scenario", "capacity"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class SloSpec:
    """A named bundle of :class:`SloRule`."""

    rules: list = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("SLO spec has no rules")

    @classmethod
    def from_dict(cls, raw: dict) -> "SloSpec":
        schema = raw.get("schema")
        if schema != SLO_SCHEMA:
            raise ValueError(
                f"unknown SLO schema {schema!r}; expected {SLO_SCHEMA!r}"
            )
        rules = raw.get("rules")
        if not isinstance(rules, list) or not rules:
            raise ValueError("SLO spec needs a non-empty 'rules' list")
        return cls(
            rules=[SloRule.from_dict(rule) for rule in rules],
            name=raw.get("name", ""),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "SloSpec":
        spec = cls.from_dict(json.loads(Path(path).read_text()))
        if not spec.name:
            spec.name = Path(path).name
        return spec

    def as_dict(self) -> dict:
        out: dict = {
            "schema": SLO_SCHEMA,
            "rules": [rule.as_dict() for rule in self.rules],
        }
        if self.name:
            out["name"] = self.name
        return out


@dataclass
class RuleResult:
    """One evaluated rule: worst observed value across its scope."""

    rule: SloRule
    ok: bool
    observed: float | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule.describe(),
            "ok": self.ok,
            "observed": self.observed,
            "detail": self.detail,
        }


@dataclass
class SloReport:
    """Verdict of one spec over one run."""

    run_id: str
    spec_name: str
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> list:
        return [result for result in self.results if not result.ok]

    def as_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "slo": self.spec_name,
            "ok": self.ok,
            "rules": [result.as_dict() for result in self.results],
        }

    def render_text(self) -> str:
        lines = [f"slo check: {self.spec_name or 'spec'} vs run {self.run_id}"]
        for result in self.results:
            mark = "PASS" if result.ok else "FAIL"
            observed = (
                "n/a" if result.observed is None else f"{result.observed:g}"
            )
            line = f"  [{mark}] {result.rule.describe()}  observed {observed}"
            if result.detail:
                line += f"  ({result.detail})"
            lines.append(line)
        lines.append("verdict: " + ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)


def evaluate_slo(spec: SloSpec, record) -> SloReport:
    """Evaluate every rule of ``spec`` against one ledger record."""
    report = SloReport(run_id=record.run_id, spec_name=spec.name)
    for rule in spec.rules:
        if rule.is_run_scope:
            report.results.append(_check_run_rule(rule, record))
        else:
            report.results.append(_check_cell_rule(rule, record.cells))
    return report


def _check_run_rule(rule: SloRule, record) -> RuleResult:
    if rule.metric in RUN_EVENT_METRICS:
        source = record.events
        detail = "event digest"
        if not source.get("events_observed", True) and rule.metric != "stalls":
            # An unobserved run has no drift/retrain stream to bound.
            return RuleResult(
                rule=rule,
                ok=False,
                observed=None,
                detail="run was not observed; no event digest to check",
            )
    else:
        source = record.metrics
        detail = "metrics snapshot"
    if rule.metric == "requests_total":
        value = source.get("requests")
    else:
        value = source.get(rule.metric)
    if value is None:
        return RuleResult(
            rule=rule,
            ok=False,
            observed=None,
            detail=f"{rule.metric} absent from {detail}",
        )
    return RuleResult(rule=rule, ok=rule.check_value(value), observed=value)


def _check_cell_rule(rule: SloRule, cells) -> RuleResult:
    matched = [cell for cell in cells if rule.matches(cell)]
    if not matched:
        return RuleResult(
            rule=rule,
            ok=False,
            observed=None,
            detail="no cells matched the rule's selectors",
        )
    worst_cell = None
    worst_value = None
    ok = True
    for cell in matched:
        value = cell.get(rule.metric)
        if value is None:
            return RuleResult(
                rule=rule,
                ok=False,
                observed=None,
                detail=f"cell {cell.get('policy')!r} lacks {rule.metric}",
            )
        if not rule.check_value(value):
            ok = False
        # Report the worst value: lowest against a floor, highest
        # against a ceiling (floor wins when both bounds are set).
        is_worse = (
            worst_value is None
            or (rule.min is not None and value < worst_value)
            or (rule.min is None and value > worst_value)
        )
        if is_worse:
            worst_value = value
            worst_cell = cell
    detail = ""
    if worst_cell is not None and len(matched) > 1:
        detail = (
            f"worst of {len(matched)} cells: {worst_cell.get('policy')}"
            f"@{worst_cell.get('capacity')}"
        )
    return RuleResult(rule=rule, ok=ok, observed=worst_value, detail=detail)
