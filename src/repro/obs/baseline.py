"""Benchmark regression sentinel over ``repro-bench`` telemetry.

:mod:`benchmarks.telemetry` writes one normalized ``BENCH_<name>.json``
per benchmark run; this module is the other half of that trajectory —
it loads two or more payloads and answers "did we regress?" with
configurable tolerances:

* **throughput** (``throughput_rps``) — regress when the relative drop
  exceeds ``throughput_drop_pct`` (throughput is noisy across machines,
  so the default tolerance is generous);
* **memory** (``peak_rss_bytes``) — regress when the relative growth
  exceeds ``rss_growth_pct``;
* **hit ratios** (per ``policy@capacity`` cell) — regress when any
  shared cell's object hit ratio drops by more than ``hit_ratio_drop``
  *absolute* (hit ratios are deterministic for seeded runs, so the
  default tolerance is tight).

The CLI surface is ``repro bench-compare old.json new.json [...]``;
with more than two files each consecutive pair is compared so a whole
committed trajectory can be audited in one call.  CI runs it warn-only
against ``benchmarks/baselines/`` (see ``.github/workflows/ci.yml``).

This module also owns the ``repro-bench`` schema contract
(:func:`validate_telemetry`); ``benchmarks.telemetry`` re-exports it so
the emission side and the comparison side can never disagree about what
a valid payload looks like.  The current schema is ``repro-bench/2``,
which stamps run-ledger provenance (``run_id``, ``git_rev``,
``config_digest``) into every payload; ``repro-bench/1`` payloads (the
committed baselines predate the ledger) remain fully readable and
comparable — :func:`upgrade_payload` lifts them with empty provenance.

Beyond the frozen-file comparison, :func:`compare_with_history` checks a
new payload against the **median** of a rolling window of prior runs
(e.g. the last 3 ledger-recorded benchmarks of the same name): a frozen
baseline pins one blessed machine-state forever, while a rolling median
tracks the trend and absorbs one-off noise spikes without letting slow
drift hide — ``repro bench-compare --ledger`` is the CLI surface.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass, field
from pathlib import Path

#: Current emission schema (with ledger provenance).
SCHEMA = "repro-bench/2"

#: The pre-ledger schema, still accepted everywhere payloads are read.
SCHEMA_V1 = "repro-bench/1"

#: Provenance fields required (as strings) by ``repro-bench/2``.
_PROVENANCE_FIELDS = ("run_id", "git_rev", "config_digest")

#: Required payload keys and the types a valid value may take.
_REQUIRED_FIELDS: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "name": (str,),
    "scale": (int, float),
    "seed": (int,),
    "jobs": (int,),
    "wall_seconds": (int, float),
    "requests": (int,),
    "throughput_rps": (int, float),
    "peak_rss_bytes": (int,),
    "hit_ratios": (dict,),
    "obs_overhead_percent": (int, float, type(None)),
    "extra": (dict,),
}

#: Numeric fields that must be finite and non-negative.  A NaN
#: throughput would sail through every tolerance comparison (NaN
#: compares false), silently disarming the sentinel — so the schema
#: rejects it at the door.
_FINITE_NON_NEGATIVE = (
    "scale",
    "wall_seconds",
    "requests",
    "throughput_rps",
    "peak_rss_bytes",
)


def validate_telemetry(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is valid ``repro-bench/2``
    (or legacy ``repro-bench/1``, which lacks the provenance fields)."""
    if not isinstance(payload, dict):
        raise ValueError(f"telemetry payload must be a dict, got {type(payload)}")
    missing = sorted(set(_REQUIRED_FIELDS) - set(payload))
    if missing:
        raise ValueError(f"telemetry payload missing fields: {missing}")
    for key, kinds in _REQUIRED_FIELDS.items():
        value = payload[key]
        if not isinstance(value, kinds) or isinstance(value, bool):
            raise ValueError(
                f"telemetry field {key!r} has type {type(value).__name__}, "
                f"expected one of {[k.__name__ for k in kinds]}"
            )
    if payload["schema"] not in (SCHEMA, SCHEMA_V1):
        raise ValueError(
            f"unknown telemetry schema {payload['schema']!r}; "
            f"expected {SCHEMA!r} (or legacy {SCHEMA_V1!r})"
        )
    if payload["schema"] == SCHEMA:
        prov_missing = sorted(set(_PROVENANCE_FIELDS) - set(payload))
        if prov_missing:
            raise ValueError(
                f"telemetry payload missing fields: {prov_missing}"
            )
        for key in _PROVENANCE_FIELDS:
            if not isinstance(payload[key], str):
                raise ValueError(
                    f"telemetry field {key!r} has type "
                    f"{type(payload[key]).__name__}, expected one of ['str']"
                )
    if not payload["name"]:
        raise ValueError("telemetry name must be non-empty")
    for key in _FINITE_NON_NEGATIVE:
        value = payload[key]
        if not math.isfinite(value):
            raise ValueError(
                f"telemetry field {key!r} must be finite, got {value!r}"
            )
        if value < 0:
            raise ValueError(f"telemetry field {key!r} must be non-negative")
    for cell, ratio in payload["hit_ratios"].items():
        if not isinstance(cell, str):
            raise ValueError(f"hit_ratios keys must be strings, got {cell!r}")
        if not isinstance(ratio, (int, float)) or not 0.0 <= ratio <= 1.0:
            raise ValueError(
                f"hit ratio for {cell!r} must be within [0, 1], got {ratio!r}"
            )
    overhead = payload["obs_overhead_percent"]
    if overhead is not None and (not math.isfinite(overhead) or overhead < 0):
        raise ValueError("obs_overhead_percent must be non-negative or null")


def load_telemetry(path: str | Path) -> dict:
    """Read and schema-validate one ``BENCH_*.json`` file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ValueError(f"telemetry file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"telemetry file {path} is not valid JSON: {exc}") from None
    try:
        validate_telemetry(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return payload


def upgrade_payload(payload: dict) -> dict:
    """The compatibility reader: lift a valid payload to ``repro-bench/2``.

    A legacy ``repro-bench/1`` payload (e.g. a committed baseline) gets
    the current schema tag and empty provenance strings — empty meaning
    "recorded before the run ledger existed", which comparisons treat as
    unknown rather than mismatched.  A v2 payload comes back as an
    unmodified copy.
    """
    validate_telemetry(payload)
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA
    for key in _PROVENANCE_FIELDS:
        upgraded.setdefault(key, "")
    return upgraded


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineTolerance:
    """How much drift a comparison accepts before calling it a regression."""

    throughput_drop_pct: float = 10.0
    rss_growth_pct: float = 20.0
    hit_ratio_drop: float = 0.01  # absolute

    def __post_init__(self) -> None:
        for name in ("throughput_drop_pct", "rss_growth_pct", "hit_ratio_drop"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and non-negative")


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric: the numbers, the bound, and the verdict."""

    metric: str
    baseline: float
    current: float
    change_pct: float
    limit_pct: float
    regressed: bool

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "change_pct": round(self.change_pct, 2),
            "limit_pct": round(self.limit_pct, 2),
            "regressed": self.regressed,
        }

    def describe(self) -> str:
        verdict = "REGRESS" if self.regressed else "ok"
        return (
            f"{self.metric:<28} {self.baseline:>14g} -> {self.current:>14g}  "
            f"{self.change_pct:>+7.1f}%  (limit {self.limit_pct:.1f}%)  {verdict}"
        )


@dataclass
class BaselineVerdict:
    """Outcome of comparing one telemetry payload against a baseline."""

    baseline_name: str
    current_name: str
    deltas: list[MetricDelta] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(delta.regressed for delta in self.deltas)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline_name,
            "current": self.current_name,
            "verdict": "regress" if self.regressed else "pass",
            "deltas": [delta.as_dict() for delta in self.deltas],
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        lines = [
            f"bench-compare: {self.baseline_name} (baseline) vs "
            f"{self.current_name} (current)"
        ]
        lines += [f"  {delta.describe()}" for delta in self.deltas]
        lines += [f"  note: {note}" for note in self.notes]
        lines.append(
            f"verdict: {'REGRESS' if self.regressed else 'PASS'}"
            + (
                f" ({len(self.regressions)} metric(s) out of tolerance)"
                if self.regressed
                else ""
            )
        )
        return "\n".join(lines)


def _pct_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else math.inf
    return 100.0 * (current - baseline) / baseline


def compare_payloads(
    baseline: dict,
    current: dict,
    tolerance: BaselineTolerance | None = None,
) -> BaselineVerdict:
    """Compare two schema-valid telemetry payloads; never raises on
    honest drift — only on malformed input."""
    validate_telemetry(baseline)
    validate_telemetry(current)
    tol = tolerance or BaselineTolerance()
    verdict = BaselineVerdict(
        baseline_name=baseline["name"], current_name=current["name"]
    )
    if baseline["name"] != current["name"]:
        verdict.notes.append(
            f"comparing different benchmarks ({baseline['name']!r} vs "
            f"{current['name']!r}); numbers may not be commensurable"
        )
    for key in ("scale", "seed"):
        if baseline[key] != current[key]:
            verdict.notes.append(
                f"{key} differs ({baseline[key]!r} vs {current[key]!r})"
            )
    digest_a = baseline.get("config_digest", "")
    digest_b = current.get("config_digest", "")
    if digest_a and digest_b and digest_a != digest_b:
        verdict.notes.append(
            f"config digests differ ({digest_a} vs {digest_b}); the runs "
            "were not configured identically"
        )

    change = _pct_change(baseline["throughput_rps"], current["throughput_rps"])
    verdict.deltas.append(
        MetricDelta(
            metric="throughput_rps",
            baseline=baseline["throughput_rps"],
            current=current["throughput_rps"],
            change_pct=change,
            limit_pct=-tol.throughput_drop_pct,
            regressed=change < -tol.throughput_drop_pct,
        )
    )
    change = _pct_change(baseline["peak_rss_bytes"], current["peak_rss_bytes"])
    verdict.deltas.append(
        MetricDelta(
            metric="peak_rss_bytes",
            baseline=baseline["peak_rss_bytes"],
            current=current["peak_rss_bytes"],
            change_pct=change,
            limit_pct=tol.rss_growth_pct,
            regressed=change > tol.rss_growth_pct,
        )
    )
    base_cells = baseline["hit_ratios"]
    curr_cells = current["hit_ratios"]
    for cell in sorted(set(base_cells) & set(curr_cells)):
        drop = base_cells[cell] - curr_cells[cell]
        verdict.deltas.append(
            MetricDelta(
                metric=f"hit_ratio[{cell}]",
                baseline=base_cells[cell],
                current=curr_cells[cell],
                change_pct=_pct_change(base_cells[cell], curr_cells[cell]),
                limit_pct=-100.0 * tol.hit_ratio_drop,
                regressed=drop > tol.hit_ratio_drop,
            )
        )
    only_base = sorted(set(base_cells) - set(curr_cells))
    only_curr = sorted(set(curr_cells) - set(base_cells))
    if only_base:
        verdict.notes.append(f"cells only in baseline: {', '.join(only_base)}")
    if only_curr:
        verdict.notes.append(f"cells only in current: {', '.join(only_curr)}")
    return verdict


def compare_files(
    paths,
    tolerance: BaselineTolerance | None = None,
) -> list[BaselineVerdict]:
    """Compare consecutive pairs of ``paths`` (oldest first).

    Two files produce one verdict; N files produce N-1 verdicts — a
    whole committed trajectory audited oldest→newest in one call.
    """
    paths = [Path(p) for p in paths]
    if len(paths) < 2:
        raise ValueError("bench-compare needs at least two telemetry files")
    payloads = [load_telemetry(path) for path in paths]
    return [
        compare_payloads(older, newer, tolerance)
        for older, newer in zip(payloads, payloads[1:])
    ]


# ----------------------------------------------------------------------
# History-aware comparison (rolling ledger window, not a frozen file)
# ----------------------------------------------------------------------


def history_payload(payloads) -> dict:
    """Synthesize one baseline payload from a rolling history of runs.

    Every numeric headline is the **median** across ``payloads`` (and
    per-cell medians for hit ratios, over the payloads that ran each
    cell), so one outlier run — a noisy machine, a cold cache — cannot
    move the baseline, while a sustained trend shifts it within
    ``len(payloads) // 2 + 1`` runs.  Metadata (name/scale/seed/jobs)
    comes from the newest payload; provenance is blanked because a
    median has no single source run (the contributing run ids ride in
    ``extra.history_run_ids``).
    """
    payloads = list(payloads)
    if not payloads:
        raise ValueError("history_payload needs at least one prior payload")
    for payload in payloads:
        validate_telemetry(payload)
    base = upgrade_payload(payloads[-1])
    base["wall_seconds"] = float(
        statistics.median(p["wall_seconds"] for p in payloads)
    )
    base["throughput_rps"] = float(
        statistics.median(p["throughput_rps"] for p in payloads)
    )
    base["requests"] = int(statistics.median(p["requests"] for p in payloads))
    base["peak_rss_bytes"] = int(
        statistics.median(p["peak_rss_bytes"] for p in payloads)
    )
    cells: dict[str, list[float]] = {}
    for payload in payloads:
        for cell, ratio in payload["hit_ratios"].items():
            cells.setdefault(cell, []).append(ratio)
    base["hit_ratios"] = {
        cell: float(statistics.median(ratios))
        for cell, ratios in sorted(cells.items())
    }
    for key in _PROVENANCE_FIELDS:
        base[key] = ""
    base["extra"] = {
        "history_size": len(payloads),
        "history_run_ids": [p.get("run_id", "") for p in payloads],
    }
    return base


def compare_with_history(
    history,
    current: dict,
    tolerance: BaselineTolerance | None = None,
) -> BaselineVerdict:
    """Compare ``current`` against the median of prior payloads.

    ``history`` is the rolling window, oldest→newest (e.g. from
    :meth:`repro.obs.runs.RunLedger.bench_history`).  Same tolerance and
    verdict semantics as :func:`compare_payloads`; the baseline name
    makes the synthetic origin explicit.
    """
    history = list(history)
    baseline = history_payload(history)
    verdict = compare_payloads(baseline, current, tolerance)
    verdict.baseline_name = (
        f"{baseline['name']} (median of {len(history)} prior runs)"
    )
    return verdict
