"""Span-based timeline tracing: who ran what, when, in which process.

Histograms (:mod:`repro.obs.registry`) answer "how much total time did
GBM refits take"; sampled stacks (:mod:`repro.obs.profile`) answer
"which frames are hot".  Neither can answer *when* — which sweep worker
sat idle, which cell straggled, how a refit lands relative to a window
close.  Spans do: a :class:`SpanRecorder` records begin/end pairs on the
monotonic clock with a name, a category, freeform attributes and a
parent (the innermost span open on the same thread), and the recorded
timeline exports to Chrome trace-event JSON (loadable in Perfetto or
``chrome://tracing``) or feeds :mod:`repro.obs.timeline` for critical-
path and straggler analysis.

Design constraints:

* **Zero disabled cost** — :data:`NULL_SPANS` mirrors the
  :data:`~repro.obs.observation.NULL_OBS` pattern: ``enabled`` is False
  and every method is a shared no-op, so instrumentation sites pay one
  attribute check (or nothing, where the engine hoists the check out of
  the loop).
* **Cross-process mergeable** — spans are stamped with the recording
  process's pid and ship across the sweep's result path as plain dicts;
  :meth:`SpanRecorder.absorb` re-ids them into the driver's recorder
  (optionally reparenting onto the driver's sweep span) so a parallel
  run merges into one coherent multi-process timeline.  Timestamps are
  ``time.perf_counter()`` readings; on Linux that is ``CLOCK_MONOTONIC``,
  which all processes of one boot share, so driver and worker spans
  align without clock translation.
* **Thread-correct nesting** — the open-span stack is thread-local, so
  spans begun on the heartbeat drainer never adopt the driver's replay
  span as a parent.

See ``docs/OBSERVABILITY.md`` ("Timeline tracing") for the span catalog
and CLI usage (``--trace-out``, ``repro timeline``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "chrome_trace",
    "write_chrome_trace",
]


@dataclass
class Span:
    """One completed (or in-flight) timeline interval.

    ``end == 0.0`` marks a span still open.  ``parent_pid`` is only set
    when :meth:`SpanRecorder.absorb` reparents a foreign span onto a
    driver span in another process; within one recorder a parent is
    always same-pid.
    """

    span_id: int
    name: str
    cat: str
    start: float
    end: float = 0.0
    pid: int = 0
    tid: int = 0
    parent_id: int | None = None
    parent_pid: int | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0) if self.end else 0.0

    def as_dict(self) -> dict:
        payload = {
            "id": self.span_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "parent": self.parent_id,
        }
        if self.parent_pid is not None:
            payload["parent_pid"] = self.parent_pid
        if self.args:
            payload["args"] = dict(self.args)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            span_id=int(payload["id"]),
            name=str(payload["name"]),
            cat=str(payload.get("cat", "default")),
            start=float(payload["start"]),
            end=float(payload.get("end", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            parent_id=(
                int(payload["parent"]) if payload.get("parent") is not None else None
            ),
            parent_pid=(
                int(payload["parent_pid"])
                if payload.get("parent_pid") is not None
                else None
            ),
            args=dict(payload.get("args", {})),
        )


class _SpanContext:
    """Context manager pairing one begin with its end."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._recorder.end(self._span)


class SpanRecorder:
    """Collects spans for one process; thread-safe, cheap to carry.

    ``begin``/``end`` are the primitive API (the engine uses them to
    bracket loop phases without ``with``-block restructuring);
    :meth:`span` is the context-manager convenience.  The parent of a
    new span is the innermost span still open *on the calling thread*.
    """

    enabled = True

    def __init__(self, role: str = "driver", clock=time.perf_counter):
        self.role = role
        self.pid = os.getpid()
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        #: Completed spans, in end order.
        self.spans: list[Span] = []
        #: Thread names keyed by the recorder-local small tid.
        self.thread_names: dict[int, str] = {}
        self._tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc_id_locked(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _thread_tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
                self.thread_names.setdefault(
                    tid, threading.current_thread().name
                )
        return tid

    def begin(self, name: str, cat: str = "default", **args) -> Span:
        """Open a span; the caller must :meth:`end` it."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._alloc_id_locked()
        span = Span(
            span_id=span_id,
            name=name,
            cat=cat,
            start=self._clock(),
            pid=self.pid,
            tid=self._thread_tid(),
            parent_id=parent,
            args=args,
        )
        stack.append(span)
        return span

    def end(self, span: Span, **args) -> Span:
        """Close ``span``; extra ``args`` merge into its attributes."""
        span.end = self._clock()
        if args:
            span.args.update(args)
        stack = self._stack()
        if span in stack:
            stack.remove(span)
        with self._lock:
            self.spans.append(span)
        return span

    def span(self, name: str, cat: str = "default", **args) -> _SpanContext:
        """``with recorder.span("lhr.gbm_refit", cat="lhr"): ...``"""
        return _SpanContext(self, self.begin(name, cat, **args))

    # ------------------------------------------------------------------
    # Merging (worker → driver)
    # ------------------------------------------------------------------

    def absorb(self, span_dicts, parent: Span | None = None) -> int:
        """Merge foreign spans (as dicts) into this recorder.

        Ids are reallocated from this recorder's counter so two worker
        batches — or an inline cell sharing the driver's pid — can never
        collide; parent links *within* the batch are remapped, and
        batch-top-level spans are reparented onto ``parent`` (a driver
        span, possibly in another process) when given.  Returns the
        number of spans absorbed.
        """
        batch = [Span.from_dict(d) for d in span_dicts or ()]
        if not batch:
            return 0
        with self._lock:
            id_map = {}
            for span in batch:
                old = (span.pid, span.span_id)
                span.span_id = self._alloc_id_locked()
                id_map[old] = span.span_id
            for span in batch:
                if span.parent_id is not None:
                    key = (span.parent_pid or span.pid, span.parent_id)
                    remapped = id_map.get(key)
                    if remapped is not None:
                        span.parent_id = remapped
                        span.parent_pid = None
                    else:
                        span.parent_id = None
                        span.parent_pid = None
                if span.parent_id is None and parent is not None:
                    span.parent_id = parent.span_id
                    if parent.pid != span.pid:
                        span.parent_pid = parent.pid
            self.spans.extend(batch)
        return len(batch)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def as_dicts(self) -> list[dict]:
        """Completed spans as JSON/pickle-able dicts (the wire format)."""
        with self._lock:
            return [span.as_dict() for span in self.spans]

    def chrome_trace(self) -> dict:
        return chrome_trace(
            self.as_dicts(), driver_pid=self.pid, thread_names=self.thread_names
        )

    def write_chrome_trace(self, path: str | Path) -> Path:
        return write_chrome_trace(
            path,
            self.as_dicts(),
            driver_pid=self.pid,
            thread_names=self.thread_names,
        )


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN_CTX = _NullSpanContext()


class _NullSpans:
    """The disabled recorder: every call is a shared no-op."""

    enabled = False
    role = "null"
    spans: list[Span] = []

    def begin(self, name: str, cat: str = "default", **args) -> None:
        return None

    def end(self, span, **args) -> None:
        pass

    def span(self, name: str, cat: str = "default", **args) -> _NullSpanContext:
        return _NULL_SPAN_CTX

    def absorb(self, span_dicts, parent=None) -> int:
        return 0

    def as_dicts(self) -> list[dict]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled span recorder; the default everywhere.
NULL_SPANS = _NullSpans()


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def chrome_trace(
    span_dicts,
    driver_pid: int | None = None,
    thread_names: dict[int, str] | None = None,
) -> dict:
    """Spans → Chrome trace-event JSON (the Perfetto/``chrome://tracing``
    interchange format).

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur`` relative to the earliest span, plus
    ``process_name`` metadata events labelling one lane per pid (the
    driver first, workers after) so a parallel sweep renders as stacked
    per-process tracks.
    """
    spans = [d for d in span_dicts or () if d.get("end")]
    events: list[dict] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(d["start"] for d in spans)
    pids = sorted({d.get("pid", 0) for d in spans})
    if driver_pid is None:
        # The outermost (longest) span belongs to the driver.
        driver_pid = max(spans, key=lambda d: d["end"] - d["start"]).get("pid", 0)
    for sort_index, pid in enumerate(
        sorted(pids, key=lambda p: (p != driver_pid, p))
    ):
        label = "driver" if pid == driver_pid else f"worker {pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    for tid, name in (thread_names or {}).items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "ts": 0,
                "pid": driver_pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for d in spans:
        event = {
            "ph": "X",
            "name": d["name"],
            "cat": d.get("cat", "default"),
            "ts": round((d["start"] - t0) * 1e6, 3),
            "dur": round((d["end"] - d["start"]) * 1e6, 3),
            "pid": d.get("pid", 0),
            "tid": d.get("tid", 0),
        }
        if d.get("args"):
            event["args"] = d["args"]
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    span_dicts,
    driver_pid: int | None = None,
    thread_names: dict[int, str] | None = None,
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    payload = chrome_trace(
        span_dicts, driver_pid=driver_pid, thread_names=thread_names
    )
    path.write_text(json.dumps(payload) + "\n")
    return path
