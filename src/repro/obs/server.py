"""Live ops surface: HTTP exporter and sweep progress aggregation.

A multi-hour ``run_sweep`` used to be a black box until it printed its
final table.  This module makes long runs scrapable while they run:

* :class:`ProgressTracker` — the thread-safe aggregation point for sweep
  heartbeats (cell id, requests replayed, current hit ratio, worker RSS)
  posted by :mod:`repro.sim.parallel` workers.  It mirrors the headline
  numbers into a :class:`~repro.obs.registry.MetricsRegistry` and detects
  stalled cells (no heartbeat for N seconds).
* :class:`ObsServer` — a stdlib ``http.server`` exporter serving

  - ``/metrics``  — Prometheus text exposition of the registry,
  - ``/healthz``  — liveness JSON (status, uptime, pid),
  - ``/progress`` — sweep progress JSON (cells done/running/failed,
    requests/sec, ETA),
  - ``/runs``     — run-ledger lineage (newest run summaries), when the
    server was given a :class:`~repro.obs.runs.RunLedger`,
  - ``/learner``  — live per-window learner-health snapshot (calibration,
    drift verdicts, retrain causes), when the run carries a
    :class:`~repro.obs.learner.LearnerTelemetry` hub (``--learner``).

  Enabled from the CLI via ``--serve PORT`` on ``simulate``/``compare``.

The server renders snapshots without locking the hot path: counters and
histograms are only ever appended to, so a scrape races at worst into a
metrically-consistent-but-slightly-stale view — acceptable for
monitoring, and the price of keeping the replay loop lock-free.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.registry import MetricsRegistry


def current_rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` where available (Linux); falls back to the
    ``getrusage`` peak (macOS and others) — a peak is still a usable
    memory signal for heartbeats, just a monotone one.  On platforms with
    neither (no procfs *and* no ``resource`` module, e.g. Windows) it
    returns 0: RSS is a monitoring nicety and must never raise into a
    heartbeat path.
    """
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak if sys.platform == "darwin" else peak * 1024)
    except Exception:  # noqa: BLE001 — absent module, broken syscall: report 0
        return 0


#: Cell lifecycle states, in the order they normally progress.
CELL_STATES = ("pending", "running", "done", "failed")


@dataclass
class CellProgress:
    """Live view of one sweep cell, updated by heartbeats."""

    index: int
    policy: str
    capacity: int
    state: str = "pending"
    requests: int = 0
    hits: int = 0
    hit_ratio: float = 0.0
    evictions: int = 0
    rss_bytes: int = 0
    error: str = ""
    #: Monotonic time of the last heartbeat (None until the first one).
    last_heartbeat: float | None = None
    #: Whether the current heartbeat gap has already been reported.
    stalled: bool = False

    def as_dict(self) -> dict:
        return {
            "cell": self.index,
            "policy": self.policy,
            "capacity": self.capacity,
            "state": self.state,
            "requests": self.requests,
            "hits": self.hits,
            "hit_ratio": round(self.hit_ratio, 6),
            "evictions": self.evictions,
            "rss_bytes": self.rss_bytes,
            "stalled": self.stalled,
            **({"error": self.error} if self.error else {}),
        }


@dataclass
class StalledCell:
    """One stall observation: the cell plus how long it has been silent."""

    cell: CellProgress
    seconds_since_heartbeat: float = field(default=0.0)


class ProgressTracker:
    """Thread-safe sweep progress aggregation behind ``/progress``.

    The parallel driver registers the grid up front, workers post
    heartbeats (through the driver's drainer thread), and the driver
    marks cells done/failed as their futures resolve.  Everything is
    safe to call from any thread; ``snapshot`` is what the HTTP server
    serves.

    When a ``registry`` is supplied the headline numbers are mirrored
    into it (``sweep_cells_done``, ``sweep_requests_replayed``,
    ``sweep_requests_per_second``, ``sweep_peak_worker_rss_bytes``,
    ``sweep_stalls_total``) so ``/metrics`` tells the same story as
    ``/progress``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._cells: dict[int, CellProgress] = {}
        self._started_at = clock()
        self.registry = registry

    # ------------------------------------------------------------------
    # Producers (driver + drainer thread)
    # ------------------------------------------------------------------

    def register_cells(self, cells) -> None:
        """Declare the grid: an iterable of ``(index, policy, capacity)``."""
        with self._lock:
            for index, policy, capacity in cells:
                self._cells[int(index)] = CellProgress(
                    index=int(index), policy=str(policy), capacity=int(capacity)
                )
            self._mirror_locked()

    def heartbeat(
        self,
        cell: int,
        requests: int = 0,
        hits: int = 0,
        hit_ratio: float = 0.0,
        evictions: int = 0,
        rss_bytes: int = 0,
    ) -> None:
        """Record one worker heartbeat for ``cell``."""
        with self._lock:
            progress = self._cells.get(cell)
            if progress is None:  # unregistered cell: ignore, don't crash
                return
            if progress.state == "pending":
                progress.state = "running"
            progress.requests = max(progress.requests, int(requests))
            progress.hits = int(hits)
            progress.hit_ratio = float(hit_ratio)
            progress.evictions = int(evictions)
            progress.rss_bytes = int(rss_bytes)
            progress.last_heartbeat = self._clock()
            progress.stalled = False
            self._mirror_locked()

    def cell_done(
        self, cell: int, requests: int = 0, hit_ratio: float = 0.0
    ) -> None:
        with self._lock:
            progress = self._cells.get(cell)
            if progress is None:
                return
            progress.state = "done"
            progress.stalled = False
            if requests:
                progress.requests = max(progress.requests, int(requests))
            if hit_ratio:
                progress.hit_ratio = float(hit_ratio)
            self._mirror_locked()

    def cell_failed(self, cell: int, error: str = "") -> None:
        with self._lock:
            progress = self._cells.get(cell)
            if progress is None:
                return
            progress.state = "failed"
            progress.stalled = False
            progress.error = str(error)
            self._mirror_locked()

    def stalled_cells(self, timeout_seconds: float) -> list[StalledCell]:
        """Running cells silent for longer than ``timeout_seconds``.

        Each stall is reported once; a subsequent heartbeat clears the
        flag so a cell that recovers and stalls again is re-reported.
        """
        if timeout_seconds <= 0:
            return []
        stalled: list[StalledCell] = []
        with self._lock:
            now = self._clock()
            for progress in self._cells.values():
                if progress.state != "running" or progress.stalled:
                    continue
                if progress.last_heartbeat is None:
                    continue
                silent = now - progress.last_heartbeat
                if silent > timeout_seconds:
                    progress.stalled = True
                    stalled.append(
                        StalledCell(cell=progress, seconds_since_heartbeat=silent)
                    )
            if stalled and self.registry is not None:
                self.registry.counter(
                    "sweep_stalls_total",
                    help="sweep cells that went silent past the stall timeout",
                ).inc(len(stalled))
        return stalled

    # ------------------------------------------------------------------
    # Consumers (/progress, /metrics)
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/progress`` payload: per-cell state plus headline rates."""
        with self._lock:
            now = self._clock()
            elapsed = max(now - self._started_at, 1e-9)
            cells = [
                self._cells[index].as_dict() for index in sorted(self._cells)
            ]
            counts = {state: 0 for state in CELL_STATES}
            for cell in self._cells.values():
                counts[cell.state] += 1
            replayed = sum(c.requests for c in self._cells.values())
            done = counts["done"] + counts["failed"]
            remaining = counts["pending"] + counts["running"]
            eta = round(remaining / (done / elapsed), 1) if done else None
            return {
                "cells": cells,
                "cells_total": len(self._cells),
                "cells_done": counts["done"],
                "cells_running": counts["running"],
                "cells_failed": counts["failed"],
                "cells_pending": counts["pending"],
                "requests_replayed": replayed,
                "requests_per_second": round(replayed / elapsed, 1),
                "elapsed_seconds": round(elapsed, 3),
                "eta_seconds": eta,
            }

    def _mirror_locked(self) -> None:
        """Mirror headline numbers into the registry (lock already held)."""
        if self.registry is None:
            return
        counts = {state: 0 for state in CELL_STATES}
        replayed = 0
        peak_rss = 0
        for cell in self._cells.values():
            counts[cell.state] += 1
            replayed += cell.requests
            peak_rss = max(peak_rss, cell.rss_bytes)
        registry = self.registry
        registry.gauge(
            "sweep_cells_total", help="sweep cells registered"
        ).set(len(self._cells))
        for state in ("done", "running", "failed", "pending"):
            registry.gauge(
                f"sweep_cells_{state}", help=f"sweep cells currently {state}"
            ).set(counts[state])
        registry.gauge(
            "sweep_requests_replayed",
            help="requests replayed across all cells (heartbeat view)",
        ).set(replayed)
        elapsed = max(self._clock() - self._started_at, 1e-9)
        registry.gauge(
            "sweep_requests_per_second",
            help="aggregate replay rate since the sweep started",
        ).set(round(replayed / elapsed, 1))
        if peak_rss:
            registry.gauge(
                "sweep_peak_worker_rss_bytes",
                help="largest worker RSS seen in a heartbeat",
            ).max(peak_rss)


class _Handler(BaseHTTPRequestHandler):
    """Request handler reading shared state off the server object."""

    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/healthz"):
            endpoints = ["/metrics", "/healthz", "/progress"]
            if self.server.obs_ledger is not None:
                endpoints.append("/runs")
            if self.server.obs_learner is not None:
                endpoints.append("/learner")
            self._send_json(
                {
                    "status": "ok",
                    "uptime_seconds": round(
                        time.monotonic() - self.server.obs_started, 3
                    ),
                    "pid": os.getpid(),
                    "endpoints": endpoints,
                }
            )
        elif path == "/metrics":
            registry = self.server.obs_registry
            text = registry.to_prometheus() if registry is not None else "\n"
            body = text.encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/progress":
            tracker = self.server.obs_tracker
            self._send_json(
                tracker.snapshot()
                if tracker is not None
                else {"cells": [], "cells_total": 0}
            )
        elif path == "/runs":
            # Read-only run-ledger lineage: newest 50 run summaries.  The
            # ledger is duck-typed (``summaries(limit=)``) so this module
            # stays decoupled from repro.obs.runs.
            ledger = self.server.obs_ledger
            if ledger is None:
                self._send_json({"ledger": None, "runs": []})
            else:
                try:
                    runs = ledger.summaries(limit=50)
                except Exception as exc:  # noqa: BLE001 — scrape must not 500
                    self._send_json(
                        {"ledger": str(ledger.root), "error": str(exc)},
                        status=500,
                    )
                    return
                self._send_json({"ledger": str(ledger.root), "runs": runs})
        elif path == "/learner":
            # Live learner-health snapshot.  The hub is duck-typed
            # (``snapshot()``) so this module stays decoupled from
            # repro.obs.learner.
            learner = self.server.obs_learner
            if learner is None:
                self._send_json(
                    {
                        "learner": None,
                        "hint": "run with --learner to record "
                        "learner-health telemetry",
                    }
                )
            else:
                try:
                    self._send_json(learner.snapshot())
                except Exception as exc:  # noqa: BLE001 — scrape must not 500
                    self._send_json({"error": str(exc)}, status=500)
        else:
            self._send_json({"error": f"unknown path {self.path!r}"}, status=404)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass


class ObsServer:
    """Background HTTP exporter for live scraping of a run.

    ``port=0`` binds an ephemeral port (tests, and "any free port" CLI
    use); the bound port is available as :attr:`port` after
    :meth:`start`.  The serving thread is a daemon, so a crashed run
    never hangs on its exporter.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracker: ProgressTracker | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ledger=None,
        learner=None,
    ) -> None:
        self.registry = registry
        self.tracker = tracker
        #: Optional :class:`~repro.obs.runs.RunLedger` behind ``/runs``
        #: (duck-typed: anything with ``root`` and ``summaries(limit=)``).
        self.ledger = ledger
        #: Optional :class:`~repro.obs.learner.LearnerTelemetry` behind
        #: ``/learner`` (duck-typed: anything with ``snapshot()``).
        self.learner = learner
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ObsServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        server.obs_registry = self.registry
        server.obs_tracker = self.tracker
        server.obs_ledger = self.ledger
        server.obs_learner = self.learner
        server.obs_started = time.monotonic()
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start() if self._server is None else self

    def __exit__(self, *exc) -> None:
        self.stop()
