"""Bélády MIN and Bélády-size: exactness and eviction-order semantics."""

import pytest

from repro.bounds.belady import (
    NEVER,
    belady_size,
    belady_size_decisions,
    belady_unit,
    next_occurrences,
)
from repro.policies.classic import LruCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def reqs(ids, size=1):
    return [Request(time=float(i), obj_id=o, size=size, index=i) for i, o in enumerate(ids)]


class TestNextOccurrences:
    def test_simple(self):
        nxt = next_occurrences(reqs([1, 2, 1, 3, 2]))
        assert nxt == [2, 4, NEVER, NEVER, NEVER]

    def test_empty(self):
        assert next_occurrences([]) == []

    def test_all_distinct(self):
        assert next_occurrences(reqs([1, 2, 3])) == [NEVER] * 3


class TestBeladyUnit:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            belady_unit(reqs([1]), 0)

    def test_textbook_sequence(self):
        # The classic Bélády example: with 3 frames, demand-paging OPT
        # takes 9 faults (11 hits).  Our MIN allows *bypass* (an object
        # never worth caching is not brought in), which saves one more
        # fault — still a valid upper bound on any caching policy.
        sequence = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        result = belady_unit(reqs(sequence), 3)
        assert result.hits == 12
        assert result.hits >= 11  # at least as good as demand-paging OPT
        assert result.requests == 20

    def test_never_worse_than_lru(self):
        trace = irm_trace(3000, 120, equal_size=1, seed=1)
        capacity = 30
        opt = belady_unit(trace.requests, capacity)
        lru = LruCache(capacity)
        lru.process(trace)
        assert opt.hits >= lru.hits

    def test_capacity_one(self):
        # With a single frame only immediate repeats hit.
        result = belady_unit(reqs([1, 1, 2, 2, 2, 1]), 1)
        assert result.hits == 3

    def test_infinite_capacity_hits_all_rerequests(self):
        result = belady_unit(reqs([1, 2, 1, 2, 3, 1]), 1000)
        assert result.hits == 3

    def test_skips_never_requested_again(self):
        # Stream of singletons: OPT caches nothing useful, zero hits.
        result = belady_unit(reqs(list(range(10))), 2)
        assert result.hits == 0


class TestBeladySize:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            belady_size(reqs([1]), 0)

    def test_equal_sizes_reduce_to_belady(self):
        trace = irm_trace(2000, 80, equal_size=1, seed=2)
        unit = belady_unit(trace.requests, 25)
        sized = belady_size(trace.requests, 25)
        assert sized.hits == unit.hits

    def test_prefers_not_evicting_sooner_needed(self):
        # 1 (size 2) is re-requested before 2 and 3; inserting 4 (size 2)
        # must evict the later-needed objects, not object 1.
        requests = [
            Request(0.0, 1, 2, 0),
            Request(1.0, 2, 1, 1),
            Request(2.0, 3, 1, 2),
            Request(3.0, 4, 2, 3),
            Request(4.0, 1, 2, 4),
            Request(5.0, 4, 2, 5),
            Request(6.0, 2, 1, 6),
            Request(7.0, 3, 1, 7),
        ]
        result = belady_size(requests, 4)
        # Hits: 1 at t=4 and 4 at t=5 (2 and 3 sacrificed).
        assert result.hits == 2

    def test_huge_object_never_admitted(self):
        requests = [
            Request(0.0, 1, 100, 0),
            Request(1.0, 1, 100, 1),
        ]
        result = belady_size(requests, 10)
        assert result.hits == 0

    def test_byte_hit_ratio_bounds(self, production_trace, production_capacity):
        result = belady_size(production_trace.requests, production_capacity)
        assert 0.0 < result.hit_ratio < 1.0
        assert 0.0 < result.byte_hit_ratio <= result.hit_ratio + 0.5

    def test_beats_every_simple_policy(self, production_trace, production_capacity):
        from repro.policies import make_policy

        bound = belady_size(production_trace.requests, production_capacity)
        for name in ("lru", "lfu-da", "gdsf"):
            policy = make_policy(name, production_capacity)
            policy.process(production_trace)
            assert bound.hits >= policy.hits


class TestBeladySizeDecisions:
    def test_labels_align_with_future_hits(self):
        requests = reqs([1, 2, 1, 2, 3])
        labels = belady_size_decisions(requests, 10)
        # Requests 0 and 1 lead to hits at their next occurrences.
        assert labels[0] == 1
        assert labels[1] == 1
        # Last occurrences can never pay off.
        assert labels[2] == 0 and labels[3] == 0 and labels[4] == 0

    def test_length_matches(self, tiny_trace):
        labels = belady_size_decisions(tiny_trace.requests, 1000)
        assert len(labels) == len(tiny_trace)
        assert set(labels) <= {0, 1}


class TestTraceTypeCompat:
    def test_accepts_trace_object(self, tiny_trace):
        result = belady_size(tiny_trace.requests, 500)
        assert result.requests == len(tiny_trace)
