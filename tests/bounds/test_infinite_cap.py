"""InfiniteCap: the compulsory-miss-only ceiling."""

from repro.bounds.infinite_cap import infinite_cap
from repro.traces.request import Request


def reqs(ids, size=1):
    return [Request(float(i), o, size, i) for i, o in enumerate(ids)]


class TestInfiniteCap:
    def test_empty(self):
        result = infinite_cap([])
        assert result.hits == 0 and result.requests == 0

    def test_all_distinct(self):
        assert infinite_cap(reqs([1, 2, 3])).hits == 0

    def test_every_rerequest_hits(self):
        result = infinite_cap(reqs([1, 2, 1, 2, 1]))
        assert result.hits == 3
        assert result.hit_ratio == 0.6

    def test_byte_accounting(self):
        result = infinite_cap(reqs([5, 5], size=100))
        assert result.hit_bytes == 100
        assert result.total_bytes == 200
        assert result.byte_hit_ratio == 0.5

    def test_hits_equal_requests_minus_unique(self, production_trace):
        result = infinite_cap(production_trace.requests)
        unique = len(production_trace.unique_contents())
        assert result.hits == len(production_trace) - unique

    def test_dominates_any_finite_policy(self, production_trace, production_capacity):
        from repro.policies import make_policy

        ceiling = infinite_cap(production_trace.requests)
        policy = make_policy("gdsf", production_capacity)
        policy.process(production_trace)
        assert ceiling.hits >= policy.hits
