"""Property-based bound relationships on random traces.

These encode the provable orderings:

* InfiniteCap dominates every bound and every policy.
* Bélády (unit size) dominates any unit-size online policy.
* PFOO-U dominates Bélády-size: every Bélády-size hit keeps its reuse
  interval fully resident, so the total footprint of its hit set fits the
  average-occupancy budget PFOO-U optimizes over.
* PFOO-L <= PFOO-U (feasible packing vs relaxation of the same problem).
* HRO <= InfiniteCap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import (
    belady_size,
    belady_unit,
    infinite_cap,
    pfoo_lower,
    pfoo_upper,
)
from repro.core import hro_bound
from repro.policies.classic import FifoCache, LruCache
from repro.traces.request import Request, Trace

trace_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),  # obj id
        st.integers(min_value=1, max_value=30),  # size
    ),
    min_size=2,
    max_size=100,
)

capacities = st.integers(min_value=5, max_value=150)


def build_trace(rows, unit_size=False):
    sizes: dict[int, int] = {}
    requests = []
    for i, (obj_id, size) in enumerate(rows):
        size = 1 if unit_size else sizes.setdefault(obj_id, size)
        requests.append(Request(float(i), obj_id, size, i))
    return Trace(requests, name="prop")


@settings(max_examples=80, deadline=None)
@given(rows=trace_rows, capacity=capacities)
def test_infinite_cap_dominates_all_bounds(rows, capacity):
    trace = build_trace(rows)
    ceiling = infinite_cap(trace.requests)
    assert pfoo_upper(trace.requests, capacity).hits <= ceiling.hits
    assert pfoo_lower(trace.requests, capacity).hits <= ceiling.hits
    assert belady_size(trace.requests, capacity).hits <= ceiling.hits
    bound = hro_bound(trace, capacity)
    assert bound.hits <= ceiling.hits


@settings(max_examples=80, deadline=None)
@given(rows=trace_rows, frames=st.integers(min_value=1, max_value=12))
def test_belady_unit_dominates_online_unit_policies(rows, frames):
    trace = build_trace(rows, unit_size=True)
    opt = belady_unit(trace.requests, frames)
    for policy_cls in (LruCache, FifoCache):
        policy = policy_cls(frames)
        policy.process(trace)
        assert opt.hits >= policy.hits


@settings(max_examples=80, deadline=None)
@given(rows=trace_rows, capacity=capacities)
def test_pfoo_upper_dominates_belady_size(rows, capacity):
    trace = build_trace(rows)
    assert (
        pfoo_upper(trace.requests, capacity).hits
        >= belady_size(trace.requests, capacity).hits
    )


@settings(max_examples=80, deadline=None)
@given(rows=trace_rows, capacity=capacities)
def test_pfoo_sandwich(rows, capacity):
    trace = build_trace(rows)
    assert (
        pfoo_lower(trace.requests, capacity, bucket_requests=1).hits
        <= pfoo_upper(trace.requests, capacity).hits
    )


@settings(max_examples=60, deadline=None)
@given(rows=trace_rows, capacity=capacities)
def test_bounds_are_deterministic(rows, capacity):
    trace = build_trace(rows)
    first = belady_size(trace.requests, capacity)
    second = belady_size(trace.requests, capacity)
    assert first.hits == second.hits
    assert first.hit_bytes == second.hit_bytes


@settings(max_examples=60, deadline=None)
@given(rows=trace_rows)
def test_byte_accounting_consistent(rows):
    trace = build_trace(rows)
    total = trace.total_bytes()
    for result in (
        infinite_cap(trace.requests),
        belady_size(trace.requests, 50),
        pfoo_upper(trace.requests, 50),
        pfoo_lower(trace.requests, 50),
    ):
        assert result.total_bytes == total
        assert 0 <= result.hit_bytes <= total
        assert 0 <= result.hits <= result.requests == len(trace)


@settings(max_examples=40, deadline=None)
@given(
    rows=trace_rows,
    small=st.integers(min_value=5, max_value=40),
    extra=st.integers(min_value=1, max_value=100),
)
def test_bounds_monotone_in_capacity(rows, small, extra):
    trace = build_trace(rows)
    large = small + extra
    assert (
        belady_size(trace.requests, large).hits
        >= belady_size(trace.requests, small).hits
    )
    assert (
        pfoo_upper(trace.requests, large).hits
        >= pfoo_upper(trace.requests, small).hits
    )
