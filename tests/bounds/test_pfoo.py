"""PFOO upper/lower bounds: sandwich property and relaxation semantics."""

import pytest

from repro.bounds.belady import belady_size
from repro.bounds.infinite_cap import infinite_cap
from repro.bounds.pfoo import pfoo_lower, pfoo_upper
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def reqs(ids, size=1):
    return [Request(float(i), o, size, i) for i, o in enumerate(ids)]


class TestPfooUpper:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            pfoo_upper(reqs([1]), 0)

    def test_empty_trace(self):
        result = pfoo_upper([], 10)
        assert result.hits == 0 and result.requests == 0

    def test_no_reuse_no_hits(self):
        assert pfoo_upper(reqs([1, 2, 3, 4]), 100).hits == 0

    def test_everything_fits_within_budget(self):
        # Tight loop over 2 objects, ample capacity: all re-requests hit.
        result = pfoo_upper(reqs([1, 2, 1, 2, 1, 2]), 100)
        assert result.hits == 4

    def test_budget_limits_hits(self):
        # One object re-requested after a very long gap (large footprint)
        # vs several short-gap objects; a small budget prefers the cheap
        # intervals.
        ids = [9] + [1, 1, 2, 2, 3, 3] + [9]
        result = pfoo_upper(reqs(ids, size=4), 4)
        assert result.hits >= 3  # the three short intervals
        assert result.hits < 4 + 1  # cannot take everything

    def test_at_least_belady_size(self, production_trace, production_capacity):
        upper = pfoo_upper(production_trace.requests, production_capacity)
        offline = belady_size(production_trace.requests, production_capacity)
        assert upper.hits >= offline.hits

    def test_at_most_infinite_cap(self, production_trace, production_capacity):
        upper = pfoo_upper(production_trace.requests, production_capacity)
        ceiling = infinite_cap(production_trace.requests)
        assert upper.hits <= ceiling.hits


class TestPfooLower:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            pfoo_lower(reqs([1]), 0)

    def test_empty_trace(self):
        assert pfoo_lower([], 10).hits == 0

    def test_feasible_packing_only(self):
        # Two interleaved objects of size 6 cannot both be resident in a
        # capacity-10 cache across overlapping intervals.
        ids = [1, 2, 1, 2]
        result = pfoo_lower(reqs(ids, size=6), 10, bucket_requests=1)
        assert result.hits == 1

    def test_sandwich_property(self, production_trace, production_capacity):
        lower = pfoo_lower(production_trace.requests, production_capacity)
        upper = pfoo_upper(production_trace.requests, production_capacity)
        assert lower.hits <= upper.hits

    def test_coarser_buckets_more_conservative(self, var_size_trace):
        capacity = 1 << 21
        fine = pfoo_lower(var_size_trace.requests, capacity, bucket_requests=8)
        coarse = pfoo_lower(var_size_trace.requests, capacity, bucket_requests=256)
        assert coarse.hits <= fine.hits + max(2, int(0.02 * len(var_size_trace)))


class TestOrderingAcrossBounds:
    def test_full_bound_hierarchy(self):
        """PFOO-L <= Bélády-size (achievable offline) and
        Bélády-size <= PFOO-U <= InfiniteCap on any trace."""
        trace = irm_trace(4000, 150, mean_size=1 << 16, size_sigma=1.2, seed=9)
        capacity = int(0.15 * trace.unique_bytes())
        lower = pfoo_lower(trace.requests, capacity)
        offline = belady_size(trace.requests, capacity)
        upper = pfoo_upper(trace.requests, capacity)
        ceiling = infinite_cap(trace.requests)
        assert lower.hits <= offline.hits + max(2, int(0.02 * len(trace)))
        assert offline.hits <= upper.hits
        assert upper.hits <= ceiling.hits
