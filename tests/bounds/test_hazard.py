"""Hazard-rate bound machinery and the exact HR bound on synthetic IRM."""

import numpy as np
import pytest

from repro.bounds.hazard import exact_hazard_bound, hazard_top_set
from repro.bounds.infinite_cap import infinite_cap
from repro.policies.classic import LfuCache, LruCache
from repro.traces.synthetic import irm_trace
from repro.util.sampling import zipf_weights


class TestHazardTopSet:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            hazard_top_set([1], np.array([1.0]), np.array([1.0]), 0)

    def test_takes_highest_hazard_first(self):
        ids = [10, 20, 30]
        hazards = np.array([1.0, 3.0, 2.0])
        sizes = np.array([5.0, 5.0, 5.0])
        top = hazard_top_set(ids, hazards, sizes, 10)
        assert top == {20, 30}

    def test_fractional_knapsack_includes_marginal(self):
        # Capacity 7 fits object of size 5 fully and object of size 5
        # partially; the fractional relaxation includes the marginal one.
        ids = [1, 2]
        top = hazard_top_set(ids, np.array([2.0, 1.0]), np.array([5.0, 5.0]), 7)
        assert top == {1, 2}

    def test_zero_hazard_excluded(self):
        ids = [1, 2]
        top = hazard_top_set(ids, np.array([1.0, 0.0]), np.array([1.0, 1.0]), 100)
        assert top == {1}

    def test_empty_input(self):
        assert hazard_top_set([], np.empty(0), np.empty(0), 10) == set()


class TestExactHazardBound:
    def test_empty_trace(self):
        result = exact_hazard_bound([], {}, 10)
        assert result.hits == 0

    def test_upper_bounds_online_policies_on_irm(self):
        """Appendix A.1: the HR bound dominates any non-anticipative
        policy under a stationary Poisson (IRM) workload."""
        num_contents = 150
        alpha = 0.9
        trace = irm_trace(
            20_000, num_contents, alpha=alpha, equal_size=1 << 10, seed=5
        )
        capacity = 30 << 10  # room for 30 of 150 contents
        weights = zipf_weights(num_contents, alpha)
        total_rate = len(trace) / trace.duration
        rates = {i: float(weights[i]) * total_rate for i in range(num_contents)}
        bound = exact_hazard_bound(trace.requests, rates, capacity)
        for policy in (LruCache(capacity), LfuCache(capacity)):
            policy.process(trace)
            assert bound.hits >= policy.hits

    def test_equals_lfu_structure_for_equal_sizes(self):
        # For IRM with equal sizes the HR bound = "top-M most popular hit,
        # after their first request" — an idealized LFU.
        trace = irm_trace(5000, 50, alpha=1.0, equal_size=1, seed=6)
        weights = zipf_weights(50, 1.0)
        rates = {i: float(w) for i, w in enumerate(weights)}
        bound = exact_hazard_bound(trace.requests, rates, 10)
        seen = set()
        expected = 0
        for req in trace:
            if req.obj_id < 10 and req.obj_id in seen:
                expected += 1
            seen.add(req.obj_id)
        assert bound.hits == expected

    def test_at_most_infinite_cap(self):
        trace = irm_trace(3000, 60, seed=7)
        rates = {i: 1.0 for i in range(60)}
        bound = exact_hazard_bound(trace.requests, rates, 1 << 30)
        assert bound.hits <= infinite_cap(trace.requests).hits

    def test_size_normalization_prefers_small(self):
        """With equal request rates, the size-normalized hazard favours
        small contents for the top set."""
        from repro.traces.request import Request

        requests = []
        t = 0.0
        for round_index in range(50):
            for obj_id, size in ((1, 10), (2, 490), (3, 1000)):
                requests.append(Request(t, obj_id, size, len(requests)))
                t += 1.0
        rates = {1: 1.0, 2: 1.0, 3: 1.0}
        bound = exact_hazard_bound(requests, rates, 500)
        # The hazard prefix is {1, 2}: contents 1 and 2 exactly fill the
        # 500-byte budget, so content 3 (lowest hazard per byte) is out.
        # 49 re-requests each for contents 1 and 2 hit.
        assert bound.hits == 98
