"""API quality gates: documentation and import hygiene.

Cheap structural checks that keep the public surface release-grade:
every module, public class and public function carries a docstring, the
package ``__all__`` lists resolve, and the version marker is sane.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize(
    "package",
    ["repro", "repro.core", "repro.policies", "repro.bounds",
     "repro.traces", "repro.sim", "repro.proto", "repro.util"],
)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} must define __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version_marker():
    assert repro.__version__.count(".") == 2


def test_no_module_import_side_effects(capsys):
    for module_name in MODULES:
        importlib.import_module(module_name)
    captured = capsys.readouterr()
    assert captured.out == ""
