"""LHR↔HRO divergence analyzer: trace joining, windowing, the taxonomy
invariant end-to-end, and input validation."""

import json

import pytest

from repro.obs import DecisionTracer
from repro.obs.analyze import (
    analyze_trace,
    decision_verdict,
    divergence_report,
    trace_hro,
)
from repro.sim import build_policy, simulate
from repro.traces.synthetic import irm_trace


@pytest.fixture(scope="module")
def small_trace():
    return irm_trace(4000, 250, alpha=0.9, mean_size=1 << 10, seed=13)


@pytest.fixture(scope="module")
def capacity(small_trace):
    return int(0.08 * small_trace.unique_bytes())


@pytest.fixture(scope="module")
def hro_traced(small_trace, capacity):
    return trace_hro(small_trace, capacity, min_window_requests=512)


class TestTraceHro:
    def test_trace_matches_bound_counters(self, small_trace, hro_traced):
        tracer, bound = hro_traced
        assert tracer.requests == len(small_trace)
        assert tracer.hits == bound.hits
        assert tracer.is_complete
        assert tracer.taxonomy().total == tracer.misses

    def test_records_carry_verdicts_and_ranks(self, hro_traced):
        tracer, _ = hro_traced
        assert all(r.admitted is not None for r in tracer.records)
        ranks = [r.hazard_rank for r in tracer.records if r.hazard_rank is not None]
        assert ranks, "HRO never reported a hazard rank"
        assert all(rank >= 0 for rank in ranks)
        # Once the first window closes a marginal hazard exists.
        assert any(r.threshold is not None for r in tracer.records)


class TestDivergenceReport:
    @pytest.fixture(scope="class")
    def report(self, small_trace, capacity, hro_traced):
        policy_tracer = DecisionTracer()
        simulate(build_policy("lru", capacity), small_trace, tracer=policy_tracer)
        return divergence_report(
            policy_tracer, hro_traced[0], window_requests=1000, policy="lru"
        )

    def test_verdict_counts_partition_requests(self, report, small_trace):
        totals = report.totals
        assert totals.requests == len(small_trace)
        assert (
            totals.agreements + totals.false_admits + totals.false_rejects
            == totals.requests
        )
        assert 0.0 <= report.agreement_rate <= 1.0

    def test_windows_partition_the_trace(self, report, small_trace):
        assert sum(w.requests for w in report.windows) == len(small_trace)
        assert [w.index for w in report.windows] == list(range(len(report.windows)))
        for window in report.windows:
            assert 0.0 <= window.agreement_rate <= 1.0

    def test_gap_attribution_bounded_by_gap(self, report):
        totals = report.totals
        # Each attributed gap request is an HRO hit the policy missed.
        assert sum(totals.gap_by_class.values()) <= totals.hro_hits
        assert all(v >= 0 for v in totals.gap_by_class.values())

    def test_csv_roundtrip(self, report, tmp_path):
        import csv

        path = tmp_path / "divergence.csv"
        report.write_csv(path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == len(report.windows)
        assert int(rows[0]["requests"]) == report.windows[0].requests
        assert "gap_evicted_early" in rows[0]

    def test_incomplete_trace_rejected(self, hro_traced):
        sampled = DecisionTracer(sample_every=2)
        with pytest.raises(ValueError, match="complete"):
            divergence_report(sampled, hro_traced[0])

    def test_length_mismatch_rejected(self, small_trace, capacity, hro_traced):
        short = DecisionTracer()
        simulate(
            build_policy("lru", capacity),
            irm_trace(100, 20, seed=0),
            tracer=short,
        )
        with pytest.raises(ValueError, match="request counts"):
            divergence_report(short, hro_traced[0])

    def test_different_trace_rejected(self, small_trace, capacity, hro_traced):
        other = DecisionTracer()
        simulate(
            build_policy("lru", capacity),
            irm_trace(len(small_trace), 250, alpha=0.9,
                      mean_size=1 << 10, seed=99),
            tracer=other,
        )
        with pytest.raises(ValueError, match="not the same trace"):
            divergence_report(other, hro_traced[0])

    def test_bad_window_rejected(self, hro_traced):
        with pytest.raises(ValueError, match="window_requests"):
            divergence_report(hro_traced[0], hro_traced[0], window_requests=0)


class TestAnalyzeTrace:
    """The acceptance path: taxonomy sums exactly to total misses and the
    divergence report carries a per-window agreement rate."""

    @pytest.fixture(scope="class")
    def report(self, small_trace, capacity):
        return analyze_trace(
            small_trace, capacity, policy="lhr", window_requests=1000
        )

    def test_taxonomy_sums_to_misses(self, report):
        expected_misses = round(
            report.requests * (1.0 - report.policy_hit_ratio)
        )
        assert report.policy_taxonomy.total == expected_misses
        assert (
            sum(report.policy_taxonomy.counts().values())
            == report.policy_taxonomy.total
        )
        assert report.hro_taxonomy.total == round(
            report.requests * (1.0 - report.hro_hit_ratio)
        )

    def test_agreement_rate_in_unit_interval(self, report):
        assert 0.0 <= report.divergence.agreement_rate <= 1.0
        for window in report.divergence.windows:
            assert 0.0 <= window.agreement_rate <= 1.0

    def test_report_serializes(self, report):
        payload = json.loads(report.to_json())
        assert payload["miss_taxonomy"]["total_misses"] == (
            report.policy_taxonomy.total
        )
        text = report.render_text()
        assert "miss taxonomy" in text
        assert "agreement" in text

    def test_lru_policy_works_too(self, small_trace, capacity):
        report = analyze_trace(
            small_trace, capacity, policy="lru", window_requests=2000
        )
        assert report.policy == "lru"
        # LRU admits everything that fits: no below-threshold rejections.
        assert report.policy_taxonomy.rejected_below_threshold == 0


class TestDecisionVerdict:
    def test_hit_or_admitted(self):
        from repro.obs.trace import DecisionRecord

        hit = DecisionRecord(index=0, time=0.0, obj_id=1, size=1, hit=True)
        admitted = DecisionRecord(
            index=1, time=0.0, obj_id=1, size=1, hit=False, admitted=True
        )
        rejected = DecisionRecord(
            index=2, time=0.0, obj_id=1, size=1, hit=False, admitted=False
        )
        assert decision_verdict(hit) is True
        assert decision_verdict(admitted) is True
        assert decision_verdict(rejected) is False
