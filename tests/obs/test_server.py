"""Tests for the live ops surface: ProgressTracker and the HTTP exporter."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs import MetricsRegistry, Observation
from repro.obs.server import ObsServer, ProgressTracker, current_rss_bytes
from repro.sim import build_policy, simulate


class FakeClock:
    """Deterministic monotonic clock for stall-detection tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestCurrentRss:
    def test_positive_and_plausible(self):
        rss = current_rss_bytes()
        assert rss > 1 << 20  # a CPython process is at least a megabyte
        assert isinstance(rss, int)


class TestProgressTracker:
    def test_register_and_initial_snapshot(self):
        tracker = ProgressTracker(clock=FakeClock())
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 200)])
        snap = tracker.snapshot()
        assert snap["cells_total"] == 2
        assert snap["cells_pending"] == 2
        assert snap["cells_done"] == 0
        assert snap["requests_replayed"] == 0
        assert snap["eta_seconds"] is None  # nothing done yet
        assert [c["state"] for c in snap["cells"]] == ["pending", "pending"]

    def test_heartbeat_transitions_and_accumulates(self):
        tracker = ProgressTracker(clock=FakeClock())
        tracker.register_cells([(0, "lru", 100)])
        tracker.heartbeat(0, requests=500, hits=100, hit_ratio=0.2, rss_bytes=42)
        snap = tracker.snapshot()
        cell = snap["cells"][0]
        assert cell["state"] == "running"
        assert cell["requests"] == 500
        assert cell["hit_ratio"] == 0.2
        assert cell["rss_bytes"] == 42
        # Out-of-order heartbeat never rewinds the request count.
        tracker.heartbeat(0, requests=400)
        assert tracker.snapshot()["cells"][0]["requests"] == 500

    def test_unknown_cell_heartbeat_is_ignored(self):
        tracker = ProgressTracker()
        tracker.register_cells([(0, "lru", 100)])
        tracker.heartbeat(99, requests=500)  # must not raise
        assert tracker.snapshot()["cells_total"] == 1

    def test_done_failed_and_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 200)])
        clock.advance(10.0)
        tracker.cell_done(0, requests=1000, hit_ratio=0.5)
        tracker.cell_failed(1, error="boom")
        snap = tracker.snapshot()
        assert snap["cells_done"] == 1
        assert snap["cells_failed"] == 1
        assert snap["cells"][0]["hit_ratio"] == 0.5
        assert snap["cells"][1]["error"] == "boom"
        assert snap["eta_seconds"] == 0.0  # nothing left to run

    def test_stall_detected_once_then_rearmed_by_heartbeat(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracker = ProgressTracker(registry=registry, clock=clock)
        tracker.register_cells([(0, "lru", 100)])
        tracker.heartbeat(0, requests=100)
        clock.advance(31.0)
        stalled = tracker.stalled_cells(30.0)
        assert [s.cell.index for s in stalled] == [0]
        assert stalled[0].seconds_since_heartbeat == pytest.approx(31.0)
        # Reported once per silent gap — not again until it recovers.
        assert tracker.stalled_cells(30.0) == []
        assert registry.get("sweep_stalls_total").value == 1
        # A fresh heartbeat clears the flag; the next gap re-reports.
        tracker.heartbeat(0, requests=200)
        clock.advance(31.0)
        assert len(tracker.stalled_cells(30.0)) == 1
        assert registry.get("sweep_stalls_total").value == 2

    def test_pending_and_finished_cells_never_stall(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 200)])
        tracker.heartbeat(1, requests=10)
        tracker.cell_done(1)
        clock.advance(1000.0)
        assert tracker.stalled_cells(30.0) == []  # pending + done

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        tracker = ProgressTracker(registry=registry, clock=FakeClock())
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 200)])
        tracker.heartbeat(0, requests=500, rss_bytes=1 << 20)
        tracker.cell_done(1, requests=300)
        assert registry.get("sweep_cells_total").value == 2
        assert registry.get("sweep_cells_running").value == 1
        assert registry.get("sweep_cells_done").value == 1
        assert registry.get("sweep_requests_replayed").value == 800
        assert registry.get("sweep_peak_worker_rss_bytes").value == 1 << 20


class TestObsServer:
    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", help="a demo counter").inc(3)
        tracker = ProgressTracker(registry=registry)
        tracker.register_cells([(0, "lru", 100)])
        with ObsServer(registry=registry, tracker=tracker) as server:
            status, headers, body = _get(f"{server.url}/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert "/metrics" in health["endpoints"]

            status, headers, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
            assert "# TYPE demo_total counter" in body
            assert "demo_total 3" in body
            assert "sweep_cells_total 1" in body

            status, _, body = _get(f"{server.url}/progress")
            assert status == 200
            progress = json.loads(body)
            assert progress["cells_total"] == 1
            assert progress["cells"][0]["policy"] == "lru"

    def test_unknown_path_is_404(self):
        with ObsServer(registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_serves_without_tracker(self):
        with ObsServer(registry=MetricsRegistry()) as server:
            status, _, body = _get(f"{server.url}/progress")
            assert status == 200
            assert json.loads(body)["cells_total"] == 0

    def test_start_twice_raises(self):
        server = ObsServer(registry=MetricsRegistry())
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = ObsServer(registry=MetricsRegistry())
        server.start()
        server.stop()
        server.stop()  # must not raise


class TestLiveScrapeIntegration:
    def test_scrape_during_live_simulation(self, equal_size_trace):
        """Scrape /metrics and /progress while a replay is mid-flight.

        The heartbeat callback performs the scrapes synchronously from
        inside ``simulate``'s loop, so the requests are guaranteed to hit
        the server while the run is live — no sleeps, no races.
        """
        obs = Observation()
        tracker = ProgressTracker(registry=obs.registry)
        policy = build_policy("lru", 64)
        tracker.register_cells([(0, "lru", policy.capacity)])
        scrapes: list[dict] = []

        with ObsServer(registry=obs.registry, tracker=tracker) as server:

            def heartbeat(requests_done: int) -> None:
                tracker.heartbeat(
                    0,
                    requests=requests_done,
                    hits=policy.hits,
                    hit_ratio=policy.object_hit_ratio,
                    rss_bytes=current_rss_bytes(),
                )
                if not scrapes:
                    _, _, metrics = _get(f"{server.url}/metrics")
                    _, _, progress = _get(f"{server.url}/progress")
                    scrapes.append(
                        {"metrics": metrics, "progress": json.loads(progress)}
                    )

            result = simulate(
                policy,
                equal_size_trace,
                obs=obs,
                heartbeat=heartbeat,
                heartbeat_interval=500,
            )
            tracker.cell_done(0, requests=result.requests)

        assert scrapes, "heartbeat never fired"
        live = scrapes[0]
        # The mid-run progress shows a running, partially-replayed cell.
        cell = live["progress"]["cells"][0]
        assert cell["state"] == "running"
        assert 0 < cell["requests"] < len(equal_size_trace)
        assert cell["rss_bytes"] > 0
        # The mid-run metrics page carries the mirrored sweep gauges.
        assert "sweep_requests_replayed" in live["metrics"]
        # And the final state is consistent with the simulation result.
        final = tracker.snapshot()
        assert final["cells_done"] == 1
        assert final["cells"][0]["requests"] == result.requests


class TestCurrentRssFallbacks:
    """Satellite: the RSS probe degrades to 0, never raises."""

    def test_getrusage_fallback_without_procfs(self, monkeypatch):
        import builtins

        real_open = builtins.open

        def no_procfs(path, *args, **kwargs):
            if str(path).startswith("/proc/"):
                raise OSError("no procfs")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_procfs)
        rss = current_rss_bytes()
        assert isinstance(rss, int)
        assert rss > 0  # getrusage peak still reports

    def test_returns_zero_when_both_paths_missing(self, monkeypatch):
        import builtins
        import sys as sys_module

        real_open = builtins.open

        def no_procfs(path, *args, **kwargs):
            if str(path).startswith("/proc/"):
                raise OSError("no procfs")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_procfs)
        # None in sys.modules makes ``import resource`` raise ImportError.
        monkeypatch.setitem(sys_module.modules, "resource", None)
        assert current_rss_bytes() == 0

    def test_garbage_statm_falls_through(self, monkeypatch):
        import builtins
        import io as io_module

        real_open = builtins.open

        def garbage(path, *args, **kwargs):
            if str(path).startswith("/proc/"):
                return io_module.StringIO("notanumber")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", garbage)
        assert current_rss_bytes() >= 0  # IndexError path must not raise


class TestProgressFailurePaths:
    """Satellite: late failures, stall re-arming, snapshot consistency."""

    def test_cell_failed_after_heartbeats(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracker = ProgressTracker(registry=registry, clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 100)])
        tracker.heartbeat(0, requests=500, hit_ratio=0.3)
        tracker.heartbeat(0, requests=900, hit_ratio=0.35)
        tracker.cell_failed(0, error="worker died")
        snap = tracker.snapshot()
        assert snap["cells"][0]["state"] == "failed"
        assert snap["cells"][0]["error"] == "worker died"
        # The partial progress survives the failure for post-mortems.
        assert snap["cells"][0]["requests"] == 900
        assert registry.get("sweep_cells_failed").value == 1
        # A failed cell is finished: it can never stall afterwards.
        clock.advance(1000.0)
        assert tracker.stalled_cells(30.0) == []

    def test_stalled_cell_that_fails_stops_reporting(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100)])
        tracker.heartbeat(0, requests=10)
        clock.advance(31.0)
        assert len(tracker.stalled_cells(30.0)) == 1
        tracker.cell_failed(0, error="timeout")
        clock.advance(31.0)
        assert tracker.stalled_cells(30.0) == []

    def test_heartbeat_records_evictions(self):
        tracker = ProgressTracker(clock=FakeClock())
        tracker.register_cells([(0, "lru", 100)])
        tracker.heartbeat(0, requests=50, evictions=7)
        assert tracker.snapshot()["cells"][0]["evictions"] == 7

    def test_concurrent_heartbeats_keep_snapshots_consistent(self):
        """Hammer heartbeats from threads while snapshotting: every
        snapshot must be internally consistent (state vs counts) and the
        final tallies exact."""
        import threading

        tracker = ProgressTracker(clock=FakeClock())
        cells = [(i, "lru", 1000) for i in range(8)]
        tracker.register_cells(cells)
        errors = []

        def pound(index):
            for step in range(1, 201):
                tracker.heartbeat(index, requests=step * 5, hits=step)
            tracker.cell_done(index, requests=1000)

        def watch():
            for _ in range(200):
                snap = tracker.snapshot()
                states = [c["state"] for c in snap["cells"]]
                done = states.count("done")
                running = states.count("running")
                pending = states.count("pending")
                if snap["cells_done"] != done:
                    errors.append("cells_done drifted from cell states")
                if done + running + pending != 8:
                    errors.append("cell states lost")

        threads = [
            threading.Thread(target=pound, args=(i,)) for i in range(8)
        ] + [threading.Thread(target=watch)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        final = tracker.snapshot()
        assert final["cells_done"] == 8
        assert final["requests_replayed"] == 8000


class TestProgressEtaEdgeCases:
    """Satellite: the /progress ETA math at its boundaries."""

    def test_zero_completed_cells_yields_null_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 100)])
        tracker.heartbeat(0, requests=500)  # running but not finished
        clock.advance(60.0)
        snap = tracker.snapshot()
        assert snap["cells_done"] == 0
        assert snap["eta_seconds"] is None  # no rate to extrapolate yet

    def test_zero_elapsed_never_divides_by_zero(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 100)])
        tracker.cell_done(0, requests=100)  # done with zero clock advance
        snap = tracker.snapshot()  # must not raise ZeroDivisionError
        assert snap["eta_seconds"] == 0.0  # instant rate -> instant finish
        assert snap["elapsed_seconds"] >= 0.0
        assert snap["requests_per_second"] >= 0.0

    def test_all_cells_failed_eta_is_zero(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(0, "lru", 100), (1, "lhr", 100)])
        clock.advance(5.0)
        tracker.cell_failed(0, error="boom")
        tracker.cell_failed(1, error="bust")
        snap = tracker.snapshot()
        assert snap["cells_failed"] == 2
        assert snap["cells_done"] == 0
        # Failed cells count as finished work: nothing remains to run.
        assert snap["eta_seconds"] == 0.0

    def test_failed_cells_inform_the_rate(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.register_cells([(i, "lru", 100) for i in range(4)])
        clock.advance(10.0)
        tracker.cell_failed(0, error="boom")
        snap = tracker.snapshot()
        # 1 finished (failed) in 10s -> 3 remaining at 10s each.
        assert snap["eta_seconds"] == pytest.approx(30.0)


class TestRunsEndpoint:
    """Satellite: the read-only /runs view over the ledger."""

    def _ledger(self, tmp_path):
        from repro.obs import RunLedger, record_from_results
        from repro.traces import irm_trace

        trace = irm_trace(300, 30, equal_size=16, seed=5)
        result = simulate(build_policy("lru", 8 * 16), trace, window_requests=100)
        ledger = RunLedger(tmp_path / "ledger")
        ledger.record(
            record_from_results("simulate", {"seed": 5}, [result], name="irm")
        )
        return ledger

    def test_runs_endpoint_lists_recorded_runs(self, tmp_path):
        ledger = self._ledger(tmp_path)
        registry = MetricsRegistry()
        with ObsServer(registry=registry, ledger=ledger) as server:
            status, _, body = _get(f"{server.url}/runs")
            assert status == 200
            payload = json.loads(body)
            assert payload["ledger"] == str(ledger.root)
            assert len(payload["runs"]) == 1
            assert payload["runs"][0]["name"] == "irm"
            assert payload["runs"][0]["windows"] == 3

            _, _, health = _get(f"{server.url}/healthz")
            assert "/runs" in json.loads(health)["endpoints"]

    def test_runs_endpoint_without_ledger(self):
        registry = MetricsRegistry()
        with ObsServer(registry=registry) as server:
            status, _, body = _get(f"{server.url}/runs")
            assert status == 200
            payload = json.loads(body)
            assert payload == {"ledger": None, "runs": []}
            _, _, health = _get(f"{server.url}/healthz")
            assert "/runs" not in json.loads(health)["endpoints"]
