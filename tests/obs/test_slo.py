"""Tests for the declarative SLO layer (repro.obs.slo)."""

from __future__ import annotations

import json

import pytest

from repro.obs.runs import RunRecord
from repro.obs.slo import SloRule, SloSpec, evaluate_slo


def make_record(**overrides) -> RunRecord:
    defaults = dict(
        command="compare",
        name="t.csv",
        run_id="20260102T030405.000000Z-abcd1234",
        metrics={"requests": 4000, "hits": 1600, "wall_seconds": 1.5},
        cells=[
            {
                "policy": "lru",
                "capacity": 1024,
                "requests": 2000,
                "hits": 700,
                "object_hit_ratio": 0.35,
                "byte_hit_ratio": 0.30,
                "evictions": 150,
                "admissions": 900,
                "runtime_seconds": 0.7,
            },
            {
                "policy": "lhr",
                "capacity": 1024,
                "requests": 2000,
                "hits": 900,
                "object_hit_ratio": 0.45,
                "byte_hit_ratio": 0.40,
                "evictions": 120,
                "admissions": 850,
                "runtime_seconds": 0.8,
                "retrains": 3,
                "drift_windows": 5,
                "drift_detections": 2,
            },
        ],
        events={
            "drift_windows": 5,
            "drift_detections": 2,
            "retrains": 3,
            "stalls": 0,
            "failures": 0,
            "events_observed": True,
        },
    )
    defaults.update(overrides)
    return RunRecord(**defaults)


def spec_of(*rules) -> SloSpec:
    return SloSpec.from_dict(
        {"schema": "repro-slo/1", "rules": list(rules), "name": "test"}
    )


class TestRuleValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SloRule(metric="latency_p99", max=1.0)

    def test_needs_a_bound(self):
        with pytest.raises(ValueError, match="min and/or max"):
            SloRule(metric="object_hit_ratio")

    def test_run_scope_metric_rejects_selector(self):
        with pytest.raises(ValueError, match="run-scoped"):
            SloRule(metric="stalls", max=0, policy="lru")
        with pytest.raises(ValueError, match="run-scoped"):
            SloRule(metric="wall_seconds", max=10, scenario="churn")

    def test_learner_metric_scope_is_selector_driven(self):
        assert SloRule(metric="retrains", max=5).is_run_scope
        assert not SloRule(metric="retrains", max=5, policy="lhr").is_run_scope

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SLO rule field"):
            SloRule.from_dict({"metric": "stalls", "max": 0, "severity": "high"})
        with pytest.raises(ValueError, match="missing 'metric'"):
            SloRule.from_dict({"max": 0})


class TestSpec:
    def test_schema_gate(self):
        with pytest.raises(ValueError, match="unknown SLO schema"):
            SloSpec.from_dict({"schema": "repro-slo/9", "rules": [{}]})

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'rules'"):
            SloSpec.from_dict({"schema": "repro-slo/1", "rules": []})

    def test_from_file_names_after_filename(self, tmp_path):
        path = tmp_path / "prod.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-slo/1",
                    "rules": [{"metric": "stalls", "max": 0}],
                }
            )
        )
        spec = SloSpec.from_file(path)
        assert spec.name == "prod.json"
        assert spec.as_dict()["rules"] == [{"metric": "stalls", "max": 0}]


class TestEvaluate:
    def test_all_rules_pass(self):
        report = evaluate_slo(
            spec_of(
                {"metric": "object_hit_ratio", "min": 0.3},
                {"metric": "stalls", "max": 0},
                {"metric": "wall_seconds", "max": 10},
                {"metric": "retrains", "max": 5},
            ),
            make_record(),
        )
        assert report.ok
        assert "verdict: OK" in report.render_text()

    def test_floor_fails_on_worst_cell(self):
        report = evaluate_slo(
            spec_of({"metric": "object_hit_ratio", "min": 0.4}), make_record()
        )
        assert not report.ok
        (violation,) = report.violations
        assert violation.observed == 0.35  # lru, the worst of the two
        assert "worst of 2 cells: lru" in violation.detail
        assert "verdict: VIOLATED" in report.render_text()

    def test_selector_narrows_to_matching_cells(self):
        report = evaluate_slo(
            spec_of(
                {"metric": "object_hit_ratio", "min": 0.4, "policy": "lhr"}
            ),
            make_record(),
        )
        assert report.ok

    def test_no_matching_cells_fails(self):
        """A floor must never pass silently because the cell is missing."""
        report = evaluate_slo(
            spec_of(
                {"metric": "object_hit_ratio", "min": 0.1, "policy": "gdsf"}
            ),
            make_record(),
        )
        assert not report.ok
        assert "no cells matched" in report.violations[0].detail

    def test_ceiling_fails_on_highest_cell(self):
        report = evaluate_slo(
            spec_of({"metric": "evictions", "max": 130}), make_record()
        )
        assert not report.ok
        assert report.violations[0].observed == 150

    def test_learner_trio_cell_scope_with_selector(self):
        report = evaluate_slo(
            spec_of({"metric": "retrains", "max": 2, "policy": "lhr"}),
            make_record(),
        )
        assert not report.ok
        assert report.violations[0].observed == 3

    def test_run_scope_reads_event_digest(self):
        record = make_record()
        record.events["stalls"] = 2
        report = evaluate_slo(spec_of({"metric": "stalls", "max": 0}), record)
        assert not report.ok
        assert report.violations[0].observed == 2

    def test_unobserved_run_fails_event_rules(self):
        record = make_record()
        record.events = {"events_observed": False, "stalls": 0}
        report = evaluate_slo(spec_of({"metric": "retrains", "max": 5}), record)
        assert not report.ok
        assert "not observed" in report.violations[0].detail
        # stalls come from the sweep layer, observed or not
        assert evaluate_slo(spec_of({"metric": "stalls", "max": 0}), record).ok

    def test_requests_total_reads_metrics_snapshot(self):
        report = evaluate_slo(
            spec_of({"metric": "requests_total", "min": 4000}), make_record()
        )
        assert report.ok

    def test_missing_cell_metric_fails(self):
        record = make_record()
        del record.cells[0]["evictions"]
        report = evaluate_slo(
            spec_of({"metric": "evictions", "max": 1000}), record
        )
        assert not report.ok
        assert "lacks" in report.violations[0].detail

    def test_report_round_trips_through_json(self):
        report = evaluate_slo(
            spec_of({"metric": "object_hit_ratio", "min": 0.4}), make_record()
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False
        assert payload["slo"] == "test"
        assert any(not rule["ok"] for rule in payload["rules"])
