"""Metrics registry: counters, gauges, histograms, merging and export."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)

    def test_merge_sums(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(7)
        a.merge(b)
        assert a.value == 10


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("delta")
        g.set(0.5)
        g.set(0.3)
        assert g.value == 0.3

    def test_max_keeps_peak(self):
        g = Gauge("peak_bytes")
        g.max(10)
        g.max(5)
        assert g.value == 10

    def test_merge_takes_max(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(2.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogram:
    def test_bucket_counts_follow_le_convention(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(value)
        # bucket_counts[i] counts observations <= buckets[i] (non-cumulative
        # per-slot here; the Prometheus export cumulates).
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)

    def test_moments_and_percentiles(self):
        h = Histogram("lat", buckets=(10.0,))
        for value in range(1, 101):
            h.observe(float(value))
        assert h.stats.minimum == 1.0
        assert h.stats.maximum == 100.0
        assert h.stats.mean == pytest.approx(50.5)
        assert h.percentile(50) == pytest.approx(50.0, abs=2.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("x", buckets=(2.0, 1.0))

    def test_merge_requires_identical_buckets(self):
        a = Histogram("x", buckets=(1.0, 2.0))
        b = Histogram("x", buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket layouts differ"):
            a.merge(b)

    def test_merge_combines_counts_and_moments(self):
        a = Histogram("x", buckets=(1.0, 10.0))
        b = Histogram("x", buckets=(1.0, 10.0))
        for value in (0.5, 5.0):
            a.observe(value)
        for value in (20.0, 0.1):
            b.observe(value)
        a.merge(b)
        assert a.count == 4
        assert a.bucket_counts == [2, 1, 1]
        assert a.stats.minimum == 0.1
        assert a.stats.maximum == 20.0
        assert a.stats.mean == pytest.approx((0.5 + 5.0 + 20.0 + 0.1) / 4)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3
        assert reg.names() == ["a", "b", "c"]
        assert "a" in reg and "missing" not in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_merge_creates_missing_metrics(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.counter("hits").inc(3)
        child.gauge("peak").set(7.0)
        child.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        parent.merge(child)
        assert parent.counter("hits").value == 3
        assert parent.gauge("peak").value == 7.0
        assert parent.histogram("lat", buckets=(1.0, 2.0)).count == 1

    def test_merge_is_additive(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("hits").inc(2)
        child.counter("hits").inc(3)
        parent.merge(child)
        assert parent.counter("hits").value == 5

    def test_merge_kind_conflict_raises(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.counter("x")
        child.gauge("x")
        with pytest.raises(TypeError, match="cannot merge"):
            parent.merge(child)

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="total hits").inc(9)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(reg.to_json())
        assert snapshot["hits"] == {"type": "counter", "value": 9}
        assert snapshot["lat"]["count"] == 1
        assert snapshot["lat"]["buckets"]["+Inf"] == 0

    def test_prometheus_export_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", help="latency", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        reg.counter("hits").inc(2)
        text = reg.to_prometheus()
        assert "# TYPE lat histogram" in text
        assert '# HELP lat latency' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="10.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "hits 2" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_help_text(self):
        reg = MetricsRegistry()
        reg.counter(
            "hits", help='multi\nline with "quotes" and \\backslash'
        ).inc(1)
        text = reg.to_prometheus()
        assert (
            '# HELP hits multi\\nline with \\"quotes\\" and \\\\backslash'
            in text
        )
        # Every line still starts as a comment or a sample — no raw
        # newline leaked out of the HELP text.
        for line in text.splitlines():
            assert line.startswith(("# ", "hits"))

    def test_prometheus_rejects_invalid_metric_name(self):
        reg = MetricsRegistry()
        reg.counter("lhr.hits")  # dotted names are fine for JSON export
        json.loads(reg.to_json())
        with pytest.raises(ValueError, match="Prometheus"):
            reg.to_prometheus()

    def test_prometheus_accepts_full_charset(self):
        reg = MetricsRegistry()
        reg.counter("ns:subsystem_metric_Total_2").inc(1)
        assert "ns:subsystem_metric_Total_2 1" in reg.to_prometheus()

    def test_write_dispatches_on_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(1)
        json_path = tmp_path / "snap.json"
        prom_path = tmp_path / "snap.prom"
        reg.write(json_path)
        reg.write(prom_path)
        assert json.loads(json_path.read_text())["hits"]["value"] == 1
        assert "# TYPE hits counter" in prom_path.read_text()

    def test_default_time_buckets_sane(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
        assert DEFAULT_TIME_BUCKETS[0] <= 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] >= 10.0
        assert all(math.isfinite(b) for b in DEFAULT_TIME_BUCKETS)
