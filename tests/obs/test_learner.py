"""Learner observatory: streaming calibration math, shadow drift
statistics, the telemetry sink, and serial/parallel equivalence.

The calibration tests are the load-bearing part: the per-window moments
must merge associatively (any sharding of the windows yields the serial
aggregate, which is what lets ``--jobs N`` sweeps report the same
calibration as serial runs) and must be NaN-safe on windows with no
scored requests.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.detection import DriftDetector
from repro.core.lhr import LhrCache
from repro.obs import Observation
from repro.obs.learner import (
    CAL_BINS,
    NULL_LEARNER,
    RETRAIN_CAUSES,
    CalibrationStats,
    LearnerSeries,
    LearnerTelemetry,
    analyze_learner,
    columns_to_series,
    kendall_tau,
    noise_threshold,
    rank_overlap,
    realized_reuse,
    series_equal,
    series_to_columns,
    top_ranked_ids,
)
from repro.obs.runs import RunLedger, record_from_results
from repro.sim import run_comparison, simulate
from repro.traces.synthetic import irm_trace


@pytest.fixture(scope="module")
def learner_trace():
    return irm_trace(
        1200, 80, alpha=0.9, mean_size=1 << 10, size_sigma=1.0, seed=7,
        name="learner",
    )


def run_with_learner(trace, capacity, jobs=0, policies=("lhr", "lru")):
    obs = Observation.sidecars_only(learner=LearnerTelemetry())
    results = run_comparison(
        trace,
        list(policies),
        [capacity],
        window_requests=200,
        parallel=jobs,
        obs=obs,
    )
    return results, obs


# ----------------------------------------------------------------------
# Streaming calibration moments
# ----------------------------------------------------------------------


class TestCalibrationStats:
    def test_empty_input_is_identity_and_nan_safe(self):
        stats = CalibrationStats.from_arrays([], [])
        assert stats.count == 0
        assert math.isnan(stats.brier)
        assert math.isnan(stats.expected_calibration_error())
        # Merging the identity changes nothing.
        other = CalibrationStats.from_arrays([0.5, 0.9], [0.0, 1.0])
        merged = other.merge(stats)
        assert merged.count == other.count
        assert merged.brier == pytest.approx(other.brier)

    def test_brier_matches_direct_mean_squared_error(self):
        p = np.array([0.1, 0.9, 0.5, 0.3])
        y = np.array([0.0, 1.0, 1.0, 0.0])
        stats = CalibrationStats.from_arrays(p, y)
        assert stats.brier == pytest.approx(float(np.mean((p - y) ** 2)))

    def test_bin_assignment_covers_edges(self):
        # p == 1.0 must land in the last bin, not an out-of-range one.
        stats = CalibrationStats.from_arrays([0.0, 1.0], [0.0, 1.0])
        assert stats.bin_count[0] == 1
        assert stats.bin_count[CAL_BINS - 1] == 1

    def test_merge_is_associative_and_commutative(self):
        rng = np.random.default_rng(0)
        shards = [
            CalibrationStats.from_arrays(
                rng.random(n), (rng.random(n) < 0.5).astype(float)
            )
            for n in (5, 17, 3)
        ]
        a, b, c = shards
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        for other in (right, swapped):
            assert left.count == other.count
            assert left.sq_error == pytest.approx(other.sq_error)
            np.testing.assert_array_equal(left.bin_count, other.bin_count)
            np.testing.assert_allclose(left.bin_p_sum, other.bin_p_sum)
            np.testing.assert_allclose(left.bin_y_sum, other.bin_y_sum)

    @pytest.mark.parametrize("seed", range(4))
    def test_sharded_merge_equals_serial_aggregate(self, seed):
        """Property: any partition of the sample stream merges to the
        same aggregate as scoring it in one batch."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        p = rng.random(n)
        y = (rng.random(n) < p).astype(float)
        serial = CalibrationStats.from_arrays(p, y)
        cuts = np.sort(rng.integers(0, n + 1, size=int(rng.integers(0, 5))))
        merged = CalibrationStats()
        start = 0
        for cut in [*cuts.tolist(), n]:
            merged = merged.merge(
                CalibrationStats.from_arrays(p[start:cut], y[start:cut])
            )
            start = cut
        assert merged.count == serial.count
        assert merged.brier == pytest.approx(serial.brier)
        assert merged.expected_calibration_error() == pytest.approx(
            serial.expected_calibration_error()
        )
        np.testing.assert_array_equal(merged.bin_count, serial.bin_count)

    def test_reliability_rows_nan_on_empty_bins(self):
        stats = CalibrationStats.from_arrays([0.05], [1.0])
        rows = stats.reliability_rows()
        assert len(rows) == CAL_BINS
        assert rows[0]["count"] == 1
        assert math.isnan(rows[5]["mean_p"])  # empty bin reports NaN


class TestRealizedReuse:
    def test_labels_match_later_reappearance(self):
        labels = realized_reuse([1, 2, 1, 3, 2])
        np.testing.assert_array_equal(labels, [1.0, 1.0, 0.0, 0.0, 0.0])

    def test_empty_window(self):
        assert realized_reuse([]).size == 0


# ----------------------------------------------------------------------
# Shadow drift statistics
# ----------------------------------------------------------------------


class TestShadowStatistics:
    def test_top_ranked_ids_breaks_ties_deterministically(self):
        counts = {5: 10, 2: 10, 9: 4}
        assert top_ranked_ids(counts, k=2) == [2, 5]

    def test_rank_overlap(self):
        assert rank_overlap([1, 2, 3], [3, 4, 2]) == pytest.approx(2 / 3)
        assert math.isnan(rank_overlap([], [1]))

    def test_kendall_tau_identical_and_reversed(self):
        ids = list(range(8))
        assert kendall_tau(ids, ids) == pytest.approx(1.0)
        assert kendall_tau(ids, ids[::-1]) == pytest.approx(-1.0)

    def test_kendall_tau_nan_below_two_common(self):
        assert math.isnan(kendall_tau([1, 2], [3, 4]))
        assert math.isnan(kendall_tau([1, 2], [2, 3]))

    def test_noise_threshold_floors_at_epsilon(self):
        assert noise_threshold(0.05, 0.001, 0.001) == pytest.approx(0.05)

    def test_noise_threshold_scales_with_stderr(self):
        got = noise_threshold(0.002, 0.01, 0.01)
        assert got == pytest.approx(3.0 * math.sqrt(2 * 0.01**2))

    def test_noise_threshold_conservative_when_unknown(self):
        assert math.isinf(noise_threshold(0.01, 0.01, None))
        assert math.isinf(noise_threshold(0.01, float("inf"), 0.01))

    def test_detector_records_shadow_stats_counterfactually(self):
        """Shadow verdicts ride the learner sink without changing the
        detector's control flow."""

        def counts_for(alpha, seed):
            rng = np.random.default_rng(seed)
            ids = rng.zipf(1 + alpha, size=8000) % 500
            values, tallies = np.unique(ids, return_counts=True)
            return {int(v): int(c) for v, c in zip(values, tallies)}

        plain = DriftDetector(epsilon=0.05)
        observed = DriftDetector(epsilon=0.05)
        observed.obs = Observation.sidecars_only(learner=LearnerTelemetry())
        flags_plain, flags_observed = [], []
        for seed, alpha in enumerate([0.8, 0.8, 1.3]):
            window = counts_for(alpha, seed)
            flags_plain.append(plain.observe_window(dict(window)))
            flags_observed.append(observed.observe_window(dict(window)))
        assert flags_plain == flags_observed
        pending = observed.obs.learner._pending
        for key in (
            "alpha", "alpha_stderr", "shadow_drift", "noise_threshold",
            "topk_overlap", "kendall_tau",
        ):
            assert key in pending


# ----------------------------------------------------------------------
# The telemetry sink and series plumbing
# ----------------------------------------------------------------------


class TestLearnerTelemetry:
    def _one_window(self, hub, window=0, cause="first_window"):
        cal = CalibrationStats.from_arrays([0.2, 0.9], [0.0, 1.0])
        hub.record_drift(alpha=0.7, alpha_stderr=0.02, drifted=1.0)
        hub.record_threshold(
            threshold_adopted=1.0, incumbent_ratio=0.4, best_ratio=0.5
        )
        hub.record_refit(train_rows=64.0, trees=5.0, train_seconds=0.01)
        hub.record_window(
            window=window, delta=0.3, samples=2, admit_rate=0.5, mean_p=0.55,
            retrained=True, cause=cause, calibration=cal,
            score_hist=np.arange(CAL_BINS, dtype=float),
        )

    def test_row_assembly_merges_fragments_with_defaults(self):
        hub = LearnerTelemetry()
        self._one_window(hub)
        series = hub.series("lhr", 1 << 20)
        cols = series.columns
        assert series.windows == 1
        assert cols["alpha"][0] == pytest.approx(0.7)
        assert cols["threshold_adopted"][0] == 1.0
        assert cols["train_rows"][0] == 64.0
        # Unreported scalar columns default to NaN, flags to 0.
        assert math.isnan(cols["importance_entropy"][0])
        assert cols["degenerate"][0] == 0.0
        assert cols["cause"][0] == RETRAIN_CAUSES.index("first_window")

    def test_pending_fragments_do_not_leak_across_windows(self):
        hub = LearnerTelemetry()
        self._one_window(hub, window=0)
        cal = CalibrationStats()
        hub.record_window(
            window=1, delta=0.3, samples=0, admit_rate=0.0, mean_p=0.0,
            retrained=False, cause="none", calibration=cal,
            score_hist=np.zeros(CAL_BINS),
        )
        cols = hub.series().columns
        assert math.isnan(cols["alpha"][1])  # window 0's fragment is gone
        assert math.isnan(cols["brier"][1])  # no admissions: NaN, not 0

    def test_series_roundtrip_through_npz_columns(self, tmp_path):
        hub = LearnerTelemetry()
        self._one_window(hub)

        class FakeResult:
            learner = hub.series("lhr", 4096)

        columns = series_to_columns([FakeResult()])
        path = tmp_path / "learner.npz"
        np.savez(path, **columns)
        with np.load(path) as npz:
            loaded = {key: npz[key] for key in npz.files}
        rebuilt = columns_to_series(
            loaded, [{"policy": "lhr", "capacity": 4096}]
        )
        assert len(rebuilt) == 1
        index, series = rebuilt[0]
        assert index == 0
        assert series.policy == "lhr"
        assert series_equal(series, FakeResult.learner)

    def test_series_equal_ignores_timing_columns_only(self):
        hub = LearnerTelemetry()
        self._one_window(hub)
        a = hub.series()
        b = hub.series()
        b.columns["train_seconds"] = b.columns["train_seconds"] + 1.0
        assert series_equal(a, b)
        b.columns["alpha"] = b.columns["alpha"] + 1.0
        assert not series_equal(a, b)

    def test_null_learner_is_inert(self):
        NULL_LEARNER.record_drift(alpha=1.0)
        NULL_LEARNER.record_window(
            window=0, delta=0.1, samples=0, admit_rate=0.0, mean_p=0.0,
            retrained=False, cause="none", calibration=CalibrationStats(),
            score_hist=np.zeros(CAL_BINS),
        )
        assert not NULL_LEARNER.enabled
        assert NULL_LEARNER.series().windows == 0
        assert NULL_LEARNER.snapshot() == {
            "cells": [], "live": {"windows": 0}
        }

    def test_snapshot_shape(self):
        hub = LearnerTelemetry()
        self._one_window(hub)
        hub.absorb(0, hub.series("lhr", 4096))
        snap = hub.snapshot()
        assert snap["live"]["windows"] == 1
        assert snap["live"]["last_alpha"] == pytest.approx(0.7)
        (cell,) = snap["cells"]
        assert cell["policy"] == "lhr"
        assert cell["causes"] == {"first_window": 1}


# ----------------------------------------------------------------------
# End-to-end: replay, sweeps, ledger
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_lhr_records_expected_columns(self, learner_trace):
        capacity = max(int(0.2 * learner_trace.unique_bytes()), 1)
        policy = LhrCache(capacity)
        obs = Observation.sidecars_only(learner=LearnerTelemetry())
        result = simulate(policy, learner_trace, window_requests=200, obs=obs)
        series = result.learner
        assert series is not None
        assert series.windows == policy.windows_processed
        cols = series.columns
        assert cols["cause"][0] == RETRAIN_CAUSES.index("first_window")
        assert bool(cols["retrained"][0])
        assert np.isfinite(cols["alpha"]).all()
        assert np.isfinite(cols["alpha_stderr"]).all()
        # Histogram mass equals the window's scored samples.
        np.testing.assert_array_equal(
            cols["score_hist"].sum(axis=1), cols["samples"]
        )

    def test_serial_and_parallel_series_identical(self, learner_trace):
        capacity = max(int(0.2 * learner_trace.unique_bytes()), 1)
        serial, obs_serial = run_with_learner(learner_trace, capacity, jobs=0)
        parallel, obs_parallel = run_with_learner(
            learner_trace, capacity, jobs=2
        )
        assert serial[0].learner.windows > 0
        assert series_equal(serial[0].learner, parallel[0].learner)
        # The driver hubs absorbed the same grid.
        for (i, a), (j, b) in zip(
            obs_serial.learner.cells(), obs_parallel.learner.cells()
        ):
            assert i == j
            assert series_equal(a, b)

    def test_telemetry_does_not_change_accounting(self, learner_trace):
        capacity = max(int(0.2 * learner_trace.unique_bytes()), 1)
        plain = run_comparison(
            learner_trace, ["lhr", "lru"], [capacity], window_requests=200
        )
        observed, _ = run_with_learner(learner_trace, capacity, jobs=0)
        assert [r.counters() for r in plain] == [
            r.counters() for r in observed
        ]
        assert [r.window_series() for r in plain] == [
            r.window_series() for r in observed
        ]

    def test_ledger_roundtrip_and_manifest_count(self, learner_trace, tmp_path):
        capacity = max(int(0.2 * learner_trace.unique_bytes()), 1)
        results, _ = run_with_learner(learner_trace, capacity, jobs=0)
        record = record_from_results("compare", {"k": 1}, results)
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record(record)
        assert (ledger.root / run_id / RunLedger.LEARNER).is_file()

        loaded = ledger.load(run_id, learner=True)
        assert loaded.learner_window_count() == results[0].learner.windows
        cells = columns_to_series(loaded.learner, loaded.cells)
        assert len(cells) == 1  # the LRU cell recorded nothing
        index, series = cells[0]
        assert index == 0
        assert series.policy == "lhr"
        assert series_equal(series, results[0].learner)

        # Manifest-only load still reports the count (missing-npz path).
        manifest_only = ledger.load(run_id, learner=False)
        assert not manifest_only.learner
        assert (
            manifest_only.learner_window_count()
            == results[0].learner.windows
        )

    def test_report_shape_and_thrash_flag(self, learner_trace):
        capacity = max(int(0.2 * learner_trace.unique_bytes()), 1)
        results, obs = run_with_learner(learner_trace, capacity, jobs=0)
        report = analyze_learner("test-run", obs.learner.cells())
        payload = report.as_dict()
        assert payload["run"] == "test-run"
        (cell,) = payload["cells"]  # zero-window LRU cell dropped
        assert cell["policy"] == "lhr"
        assert set(cell) >= {
            "calibration", "alpha", "drift", "retrains", "delta",
        }
        assert cell["calibration"]["samples"] > 0
        assert len(cell["calibration"]["bins"]) == CAL_BINS
        assert cell["retrains"]["total"] >= 1
        text = report.render_text()
        assert "learner observatory" in text
        assert "calibration:" in text and "retrains:" in text

    def test_thrash_diagnosis_fires_on_noise_dominated_series(self):
        windows = 6
        columns = {
            "window": np.arange(windows, dtype=float),
            "drifted": np.ones(windows),
            "degenerate": np.zeros(windows),
            "shadow_drift": np.zeros(windows),
            "noise_threshold": np.full(windows, 0.05),
        }
        series = LearnerSeries(policy="lhr", capacity=1, columns=columns)
        assert series.noise_dominated_detections() == windows
        from repro.obs.learner import LearnerCellReport

        diag = LearnerCellReport(cell=0, series=series).thrash_diagnosis()
        assert diag is not None and "noise-dominated" in diag
