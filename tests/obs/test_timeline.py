"""Tests for span timeline analysis: phases, critical path, stragglers."""

from __future__ import annotations

import pytest

from repro.obs import analyze_spans
from repro.obs.timeline import _fmt_seconds, _median


def _span(
    span_id,
    name,
    start,
    end,
    cat="default",
    pid=100,
    parent=None,
    parent_pid=None,
):
    payload = {
        "id": span_id,
        "name": name,
        "cat": cat,
        "start": start,
        "end": end,
        "pid": pid,
        "tid": 0,
        "parent": parent,
    }
    if parent_pid is not None:
        payload["parent_pid"] = parent_pid
    return payload


def _sweep_spans():
    """A synthetic 2-worker sweep: driver root, gather, 3 cells, replay.

    Timeline (seconds):
      driver pid 100:  run [0, 10], gather [1, 10]
      worker pid 200:  cell a [1, 9] -> replay [1.5, 8.5]; cell c [9, 9.5]
      worker pid 300:  cell b [1, 4]
    """
    return [
        _span(0, "sweep.run", 0.0, 10.0, cat="sweep", pid=100),
        _span(1, "sweep.gather", 1.0, 10.0, cat="sweep", pid=100, parent=0),
        _span(
            2, "lhr@64", 1.0, 9.0, cat="cell", pid=200,
            parent=1, parent_pid=100,
        ),
        _span(3, "sim.replay", 1.5, 8.5, cat="sim", pid=200, parent=2),
        _span(
            4, "lru@64", 1.0, 4.0, cat="cell", pid=300,
            parent=1, parent_pid=100,
        ),
        _span(
            5, "lru@128", 9.0, 9.5, cat="cell", pid=200,
            parent=1, parent_pid=100,
        ),
    ]


class TestAnalyzeSpans:
    def test_empty_input(self):
        report = analyze_spans([])
        assert report.span_count == 0
        assert report.wall_seconds == 0.0
        assert report.phases == []
        assert report.critical_path == []
        assert report.stragglers is None
        assert "0 spans" in report.render_text()

    def test_unfinished_spans_ignored(self):
        report = analyze_spans([_span(0, "open", 1.0, 0.0)])
        assert report.span_count == 0

    def test_wall_and_span_count(self):
        report = analyze_spans(_sweep_spans())
        assert report.span_count == 6
        assert report.wall_seconds == pytest.approx(10.0)

    def test_phase_self_time_subtracts_children(self):
        report = analyze_spans(_sweep_spans())
        by_phase = {(p.cat, p.name): p for p in report.phases}
        # gather [1,10] has 9s total but its children (the cells) cover
        # 8 + 3 + 0.5 = 11.5s -> self time clamps to 0.
        gather = by_phase[("sweep", "sweep.gather")]
        assert gather.total_seconds == pytest.approx(9.0)
        assert gather.self_seconds == pytest.approx(0.0)
        # cell a is 8s total, replay child 7s -> 1s self.
        cell_a = by_phase[("cell", "lhr@64")]
        assert cell_a.self_seconds == pytest.approx(1.0)
        # Phases rank by self time, descending.
        selfs = [p.self_seconds for p in report.phases]
        assert selfs == sorted(selfs, reverse=True)
        assert sum(p.self_share for p in report.phases) == pytest.approx(1.0)

    def test_critical_path_descends_into_straggler(self):
        report = analyze_spans(_sweep_spans())
        names = [hop.name for hop in report.critical_path]
        assert names == ["sweep.run", "sweep.gather", "lhr@64", "sim.replay"]
        pids = [hop.pid for hop in report.critical_path]
        assert pids == [100, 100, 200, 200]  # crosses into the worker
        assert report.critical_path[0].parent_share == 1.0
        # cell a (8s) covers 8/9 of gather.
        assert report.critical_path[2].parent_share == pytest.approx(8 / 9)

    def test_worker_lanes_and_utilization(self):
        report = analyze_spans(_sweep_spans())
        lanes = {lane.pid: lane for lane in report.workers}
        assert set(lanes) == {200, 300}
        assert lanes[200].cells == 2
        assert lanes[200].busy_seconds == pytest.approx(8.5)
        assert lanes[200].utilization == pytest.approx(0.85)
        assert lanes[300].cells == 1
        assert all(lane.role == "worker" for lane in lanes.values())

    def test_straggler_stats(self):
        report = analyze_spans(_sweep_spans())
        s = report.stragglers
        assert s.cells == 3
        assert s.max_seconds == pytest.approx(8.0)
        assert s.median_seconds == pytest.approx(3.0)
        assert s.straggler_ratio == pytest.approx(8 / 3)
        assert s.worst[0][0] == "lhr@64"

    def test_no_cell_spans_means_no_lanes(self):
        report = analyze_spans([_span(0, "sim.replay", 0.0, 2.0, cat="sim")])
        assert report.workers == []
        assert report.stragglers is None

    def test_orphan_parent_treated_as_root(self):
        # A span whose parent id is unknown must not crash the analysis.
        report = analyze_spans([_span(7, "lost", 0.0, 1.0, parent=99)])
        assert report.critical_path[0].name == "lost"

    def test_as_dict_round_trips_to_json(self):
        import json

        payload = analyze_spans(_sweep_spans()).as_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["span_count"] == 6
        assert encoded["stragglers"]["cells"] == 3
        assert len(encoded["critical_path"]) == 4

    def test_render_text_sections(self):
        text = analyze_spans(_sweep_spans()).render_text()
        assert "phase self-time breakdown" in text
        assert "critical path" in text
        assert "worker utilization" in text
        assert "stragglers: 3 cells" in text
        assert "(89% of parent)" in text


class TestHelpers:
    def test_fmt_seconds_units(self):
        assert _fmt_seconds(2.5) == "2.50s"
        assert _fmt_seconds(0.0123) == "12.3ms"
        assert _fmt_seconds(0.000004) == "4us"

    def test_median(self):
        assert _median([3.0]) == 3.0
        assert _median([1.0, 2.0, 10.0]) == 2.0
        assert _median([1.0, 3.0]) == 2.0
