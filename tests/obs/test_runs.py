"""Tests for the persistent run ledger (repro.obs.runs)."""

from __future__ import annotations

import csv
import json
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.obs.runs import (
    RUN_SCHEMA,
    SERIES_FIELDS,
    RunLedger,
    RunRecord,
    config_digest,
    current_git_rev,
    diff_records,
    digest_events,
    record_from_results,
    series_from_results,
)
from repro.sim import build_policy, simulate
from repro.traces import irm_trace


def windowed_results(seed: int = 7, policies=("lru", "s4lru")):
    trace = irm_trace(1500, 80, alpha=0.8, equal_size=64, seed=seed)
    capacity = 16 * 64
    results = []
    for name in policies:
        policy = build_policy(name, capacity)
        results.append(simulate(policy, trace, window_requests=300))
    return results


def make_ledger(tmp_path, times=None):
    """Ledger with an injected clock stepping through ``times`` (or a
    fixed instant, exercising the collision suffix)."""
    if times is None:
        clock = lambda: datetime(2026, 1, 2, 3, 4, 5, tzinfo=timezone.utc)
    else:
        stamps = iter(times)
        last = times[-1]
        clock = lambda: next(stamps, last)
    return RunLedger(tmp_path / "ledger", clock=clock)


class TestProvenance:
    def test_config_digest_is_order_insensitive(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert len(config_digest({})) == 16

    def test_git_rev_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_REV", "cafebabe")
        assert current_git_rev() == "cafebabe"

    def test_digest_events_counts_lifecycle(self):
        events = [
            {"event": "lhr.drift", "drifted": False},
            {"event": "lhr.drift", "drifted": True},
            {"event": "lhr.retrain"},
            {"event": "sweep.cell_stalled"},
            {"event": "sweep.cell_failed"},
            {"event": "sim.window"},  # unrelated events are ignored
        ]
        digest = digest_events(events)
        assert digest == {
            "drift_windows": 2,
            "drift_detections": 1,
            "retrains": 1,
            "stalls": 1,
            "failures": 1,
        }
        assert digest_events(None)["retrains"] == 0


class TestRecordRoundtrip:
    def test_series_bit_matches_window_metrics(self, tmp_path):
        """The acceptance bar: stored npz columns equal the in-memory
        WindowMetrics stream exactly."""
        results = windowed_results()
        record = record_from_results(
            "compare", {"seed": 7}, results, name="roundtrip"
        )
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(record)
        loaded = ledger.load(run_id)
        assert loaded.schema == RUN_SCHEMA
        assert loaded.run_id == run_id
        assert loaded.name == "roundtrip"
        assert loaded.config == {"seed": 7}
        for i, result in enumerate(results):
            columns = loaded.cell_series(i)
            assert set(columns) == set(SERIES_FIELDS)
            for field_name in SERIES_FIELDS:
                expected = np.array(
                    [getattr(w, field_name) for w in result.windows],
                    dtype=np.int64,
                )
                assert np.array_equal(columns[field_name], expected)

    def test_manifest_metrics_and_cells(self, tmp_path):
        results = windowed_results()
        record = record_from_results("compare", {"x": 1}, results)
        ledger = make_ledger(tmp_path)
        loaded = ledger.load(ledger.record(record))
        assert loaded.metrics["requests"] == sum(r.requests for r in results)
        assert loaded.metrics["hits"] == sum(r.hits for r in results)
        cell = loaded.cells[0]
        assert cell["policy"] == results[0].policy
        assert cell["evictions"] == results[0].evictions
        assert cell["windows"] == len(results[0].windows)
        assert loaded.events["events_observed"] is False
        assert loaded.config_digest == config_digest({"x": 1})

    def test_unwindowed_run_has_no_series(self, tmp_path):
        trace = irm_trace(400, 40, equal_size=32, seed=3)
        result = simulate(build_policy("lru", 8 * 32), trace)
        record = record_from_results("simulate", {}, [result])
        assert series_from_results([result]) == {}
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(record)
        assert not (ledger.root / run_id / "series.npz").exists()
        assert ledger.load(run_id).window_count() == 0

    def test_window_count_survives_manifest_only_load(self, tmp_path):
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            record_from_results("compare", {}, windowed_results())
        )
        assert ledger.load(run_id, series=False).window_count() == 5

    def test_cell_tags_merge(self, tmp_path):
        results = windowed_results()
        record = record_from_results(
            "workload",
            {},
            results,
            cell_tags=[{"scenario": "churn", "retrains": 2}, {"scenario": "churn"}],
        )
        assert record.cells[0]["scenario"] == "churn"
        assert record.cells[0]["retrains"] == 2
        assert record.cell_key(record.cells[0]).startswith("churn/")


class TestLedger:
    def test_same_clock_ids_stay_unique(self, tmp_path):
        ledger = make_ledger(tmp_path)  # frozen clock
        results = windowed_results()
        ids = [
            ledger.record(record_from_results("compare", {"n": 1}, results))
            for _ in range(3)
        ]
        assert len(set(ids)) == 3
        assert sorted(ids) == ids  # -N suffixes keep recording order

    def test_resolve_refs(self, tmp_path):
        ledger = make_ledger(tmp_path)
        results = windowed_results()
        first = ledger.record(record_from_results("compare", {"n": 1}, results))
        second = ledger.record(record_from_results("compare", {"n": 1}, results))
        assert ledger.resolve("latest") == second
        assert ledger.resolve("latest~1") == first
        assert ledger.resolve(first) == first  # exact id beats prefix clash
        with pytest.raises(ValueError, match="reaches past"):
            ledger.resolve("latest~9")
        with pytest.raises(ValueError, match="no run matching"):
            ledger.resolve("zzz")
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.resolve(first[:8])

    def test_empty_ledger_resolve_raises(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            make_ledger(tmp_path).resolve("latest")

    def test_manifest_less_directory_is_invisible(self, tmp_path):
        """A crashed writer leaves a run directory without a manifest;
        readers must skip it (the manifest is the commit marker)."""
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            record_from_results("compare", {}, windowed_results())
        )
        torn = ledger.root / "19990101T000000.000000Z-deadbeef"
        torn.mkdir()
        (torn / "series.npz").write_bytes(b"torn")
        assert ledger.run_ids() == [run_id]
        assert len(ledger.summaries()) == 1

    def test_gc_prunes_oldest_deterministically(self, tmp_path):
        times = [
            datetime(2026, 1, 2, 3, 4, s, tzinfo=timezone.utc)
            for s in range(20)
        ]
        ledger = make_ledger(tmp_path, times=times)
        results = windowed_results()
        ids = [
            ledger.record(record_from_results("compare", {"n": i}, results))
            for i in range(4)
        ]
        assert ledger.gc(2, dry_run=True) == ids[:2]
        assert len(ledger.run_ids()) == 4  # dry run touched nothing
        assert ledger.gc(2) == ids[:2]
        assert ledger.run_ids() == ids[2:]
        assert ledger.gc(2) == []  # idempotent
        with pytest.raises(ValueError):
            ledger.gc(-1)

    def test_bench_history_filters_and_excludes(self, tmp_path):
        ledger = make_ledger(tmp_path)
        for i in range(4):
            ledger.record(
                RunRecord(
                    command="bench",
                    name="throughput",
                    metrics={"throughput_rps": 1000.0 + i},
                )
            )
        ledger.record(RunRecord(command="bench", name="other", metrics={}))
        ledger.record(
            record_from_results("compare", {}, windowed_results())
        )
        history = ledger.bench_history("throughput", limit=3)
        assert [p["throughput_rps"] for p in history] == [1001.0, 1002.0, 1003.0]
        newest = ledger.records(command="bench", name="throughput")[-1]
        assert all(
            p["throughput_rps"] != 1003.0
            for p in ledger.bench_history(
                "throughput", limit=3, exclude=newest.run_id
            )
        )

    def test_export_csv(self, tmp_path):
        ledger = make_ledger(tmp_path)
        results = windowed_results()
        run_id = ledger.record(record_from_results("compare", {}, results))
        out = tmp_path / "series.csv"
        rows = ledger.export_csv(run_id, out)
        assert rows == sum(len(r.windows) for r in results)
        with out.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == rows
        first = parsed[0]
        assert first["policy"] == results[0].policy
        assert int(first["requests"]) == results[0].windows[0].requests
        assert int(first["evictions"]) == results[0].windows[0].evictions


class TestDiff:
    def test_identical_seeds_diff_to_zero(self, tmp_path):
        ledger = make_ledger(tmp_path)
        a = ledger.load(
            ledger.record(
                record_from_results("compare", {"s": 7}, windowed_results(7))
            )
        )
        b = ledger.load(
            ledger.record(
                record_from_results("compare", {"s": 7}, windowed_results(7))
            )
        )
        diff = diff_records(a, b)
        assert diff.identical
        assert "verdict: IDENTICAL" in diff.render_text()
        assert all(d.windows_differing == 0 for d in diff.deltas)

    def test_different_seeds_diff_per_window(self, tmp_path):
        ledger = make_ledger(tmp_path)
        a = ledger.load(
            ledger.record(
                record_from_results("compare", {"s": 7}, windowed_results(7))
            )
        )
        b = ledger.load(
            ledger.record(
                record_from_results("compare", {"s": 8}, windowed_results(8))
            )
        )
        diff = diff_records(a, b)
        assert not diff.identical
        assert any(d.windows_differing > 0 for d in diff.deltas)
        assert any(d.max_window_hit_ratio_delta > 0 for d in diff.deltas)
        assert any("config digests differ" in note for note in diff.notes)
        assert "verdict: DIFFERENT" in diff.render_text()

    def test_unmatched_cells_reported(self, tmp_path):
        ledger = make_ledger(tmp_path)
        a = ledger.load(
            ledger.record(
                record_from_results(
                    "compare", {}, windowed_results(policies=("lru",))
                )
            )
        )
        b = ledger.load(
            ledger.record(
                record_from_results(
                    "compare", {}, windowed_results(policies=("s4lru",))
                )
            )
        )
        diff = diff_records(a, b)
        assert not diff.identical
        assert diff.only_a and diff.only_b
        assert json.loads(json.dumps(diff.as_dict()))["identical"] is False


def sample_spans():
    return [
        {"id": 1, "name": "cli.compare", "cat": "cli", "start": 0.0,
         "end": 2.0, "pid": 100, "tid": 1, "parent": None},
        {"id": 2, "name": "sweep.run", "cat": "sweep", "start": 0.1,
         "end": 1.9, "pid": 100, "tid": 1, "parent": 1},
        {"id": 3, "name": "lru@1024", "cat": "cell", "start": 0.2,
         "end": 1.5, "pid": 200, "tid": 1, "parent": 2,
         "parent_pid": 100, "args": {"hit_ratio": 0.5}},
    ]


class TestSpansPersistence:
    def test_spans_sidecar_roundtrip(self, tmp_path):
        ledger = make_ledger(tmp_path)
        record = record_from_results(
            "compare", {"n": 1}, windowed_results(), spans=sample_spans()
        )
        run_id = ledger.record(record)
        assert (ledger.root / run_id / RunLedger.SPANS).exists()
        loaded = ledger.load(run_id)
        assert loaded.spans == sample_spans()
        assert loaded.span_count() == 3
        assert loaded.summary()["spans"] == 3

    def test_sidecar_lands_before_manifest(self, tmp_path):
        # A committed run (manifest present) must never point at a
        # missing spans file: spans.json is written first.
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            record_from_results(
                "compare", {}, windowed_results(), spans=sample_spans()
            )
        )
        run_dir = ledger.root / run_id
        assert (run_dir / RunLedger.MANIFEST).exists()
        assert (run_dir / RunLedger.SPANS).exists()
        payload = json.loads((run_dir / RunLedger.SPANS).read_text())
        assert payload == sample_spans()

    def test_span_count_survives_manifest_only_load(self, tmp_path):
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            record_from_results(
                "compare", {}, windowed_results(), spans=sample_spans()
            )
        )
        skinny = ledger.load(run_id, series=False, spans=False)
        assert skinny.spans == []
        assert skinny.span_count() == 3  # falls back to the manifest count
        assert skinny.summary()["spans"] == 3

    def test_untraced_run_has_no_sidecar(self, tmp_path):
        ledger = make_ledger(tmp_path)
        run_id = ledger.record(
            record_from_results("compare", {}, windowed_results())
        )
        assert not (ledger.root / run_id / RunLedger.SPANS).exists()
        loaded = ledger.load(run_id)
        assert loaded.spans == []
        assert loaded.span_count() == 0
