"""Tests for the benchmark regression sentinel (repro.obs.baseline)."""

from __future__ import annotations

import json

import pytest

from repro.obs.baseline import (
    BaselineTolerance,
    compare_files,
    compare_payloads,
    load_telemetry,
)


def make_payload(**overrides) -> dict:
    payload = {
        "schema": "repro-bench/1",
        "name": "throughput",
        "scale": 0.01,
        "seed": 1,
        "jobs": 0,
        "wall_seconds": 2.0,
        "requests": 20000,
        "throughput_rps": 10000.0,
        "peak_rss_bytes": 100 * (1 << 20),
        "hit_ratios": {"lru@1000": 0.40, "lhr@1000": 0.50},
        "obs_overhead_percent": None,
        "extra": {},
    }
    payload.update(overrides)
    return payload


class TestTolerance:
    def test_defaults(self):
        tol = BaselineTolerance()
        assert tol.throughput_drop_pct == 10.0
        assert tol.rss_growth_pct == 20.0
        assert tol.hit_ratio_drop == 0.01

    @pytest.mark.parametrize("field", [
        "throughput_drop_pct", "rss_growth_pct", "hit_ratio_drop",
    ])
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            BaselineTolerance(**{field: bad})


class TestComparePayloads:
    def test_identical_runs_pass(self):
        verdict = compare_payloads(make_payload(), make_payload())
        assert not verdict.regressed
        assert verdict.notes == []
        assert "verdict: PASS" in verdict.render_text()

    def test_twenty_percent_throughput_drop_regresses(self):
        """The acceptance scenario: a synthetic 20% slowdown is caught."""
        slower = make_payload(throughput_rps=8000.0)
        verdict = compare_payloads(make_payload(), slower)
        assert verdict.regressed
        (delta,) = verdict.regressions
        assert delta.metric == "throughput_rps"
        assert delta.change_pct == pytest.approx(-20.0)
        assert "REGRESS" in verdict.render_text()

    def test_throughput_drop_within_tolerance_passes(self):
        verdict = compare_payloads(
            make_payload(), make_payload(throughput_rps=9500.0)
        )
        assert not verdict.regressed

    def test_rss_growth_regresses(self):
        bloated = make_payload(peak_rss_bytes=130 * (1 << 20))
        verdict = compare_payloads(make_payload(), bloated)
        assert [d.metric for d in verdict.regressions] == ["peak_rss_bytes"]

    def test_rss_shrink_is_fine(self):
        verdict = compare_payloads(
            make_payload(), make_payload(peak_rss_bytes=10 * (1 << 20))
        )
        assert not verdict.regressed

    def test_hit_ratio_drop_regresses(self):
        worse = make_payload(hit_ratios={"lru@1000": 0.40, "lhr@1000": 0.45})
        verdict = compare_payloads(make_payload(), worse)
        assert [d.metric for d in verdict.regressions] == ["hit_ratio[lhr@1000]"]

    def test_hit_ratio_improvement_is_fine(self):
        better = make_payload(hit_ratios={"lru@1000": 0.44, "lhr@1000": 0.55})
        verdict = compare_payloads(make_payload(), better)
        assert not verdict.regressed

    def test_asymmetric_cells_noted_not_compared(self):
        current = make_payload(hit_ratios={"lru@1000": 0.40, "gdsf@1000": 0.6})
        verdict = compare_payloads(make_payload(), current)
        assert not verdict.regressed
        assert any("only in baseline" in note for note in verdict.notes)
        assert any("only in current" in note for note in verdict.notes)

    def test_identity_mismatches_noted(self):
        other = make_payload(name="figure8", seed=2, scale=0.1)
        verdict = compare_payloads(make_payload(), other)
        notes = " ".join(verdict.notes)
        assert "different benchmarks" in notes
        assert "seed differs" in notes
        assert "scale differs" in notes

    def test_custom_tolerance(self):
        tol = BaselineTolerance(throughput_drop_pct=25.0)
        slower = make_payload(throughput_rps=8000.0)
        assert not compare_payloads(make_payload(), slower, tol).regressed

    def test_malformed_payload_raises(self):
        bad = make_payload()
        del bad["throughput_rps"]
        with pytest.raises(ValueError):
            compare_payloads(make_payload(), bad)

    def test_as_dict_round_trips_through_json(self):
        verdict = compare_payloads(
            make_payload(), make_payload(throughput_rps=8000.0)
        )
        payload = json.loads(json.dumps(verdict.as_dict()))
        assert payload["verdict"] == "regress"
        assert any(d["regressed"] for d in payload["deltas"])


class TestFiles:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return path

    def test_load_telemetry_validates(self, tmp_path):
        good = self._write(tmp_path / "good.json", make_payload())
        assert load_telemetry(good)["name"] == "throughput"
        with pytest.raises(ValueError, match="does not exist"):
            load_telemetry(tmp_path / "missing.json")
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_telemetry(bad_json)
        invalid = self._write(
            tmp_path / "invalid.json", make_payload(schema="other/1")
        )
        with pytest.raises(ValueError, match="invalid.json"):
            load_telemetry(invalid)

    def test_compare_files_consecutive_pairs(self, tmp_path):
        a = self._write(tmp_path / "a.json", make_payload())
        b = self._write(tmp_path / "b.json", make_payload(throughput_rps=9800.0))
        c = self._write(tmp_path / "c.json", make_payload(throughput_rps=7000.0))
        verdicts = compare_files([a, b, c])
        assert len(verdicts) == 2
        assert not verdicts[0].regressed
        assert verdicts[1].regressed  # 9800 -> 7000 is a ~29% drop

    def test_compare_files_needs_two(self, tmp_path):
        a = self._write(tmp_path / "a.json", make_payload())
        with pytest.raises(ValueError, match="at least two"):
            compare_files([a])
