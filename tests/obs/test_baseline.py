"""Tests for the benchmark regression sentinel (repro.obs.baseline)."""

from __future__ import annotations

import json

import pytest

from repro.obs.baseline import (
    SCHEMA,
    SCHEMA_V1,
    BaselineTolerance,
    compare_files,
    compare_payloads,
    compare_with_history,
    history_payload,
    load_telemetry,
    upgrade_payload,
    validate_telemetry,
)


def make_payload(**overrides) -> dict:
    payload = {
        "schema": "repro-bench/1",
        "name": "throughput",
        "scale": 0.01,
        "seed": 1,
        "jobs": 0,
        "wall_seconds": 2.0,
        "requests": 20000,
        "throughput_rps": 10000.0,
        "peak_rss_bytes": 100 * (1 << 20),
        "hit_ratios": {"lru@1000": 0.40, "lhr@1000": 0.50},
        "obs_overhead_percent": None,
        "extra": {},
    }
    payload.update(overrides)
    return payload


class TestTolerance:
    def test_defaults(self):
        tol = BaselineTolerance()
        assert tol.throughput_drop_pct == 10.0
        assert tol.rss_growth_pct == 20.0
        assert tol.hit_ratio_drop == 0.01

    @pytest.mark.parametrize("field", [
        "throughput_drop_pct", "rss_growth_pct", "hit_ratio_drop",
    ])
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            BaselineTolerance(**{field: bad})


class TestComparePayloads:
    def test_identical_runs_pass(self):
        verdict = compare_payloads(make_payload(), make_payload())
        assert not verdict.regressed
        assert verdict.notes == []
        assert "verdict: PASS" in verdict.render_text()

    def test_twenty_percent_throughput_drop_regresses(self):
        """The acceptance scenario: a synthetic 20% slowdown is caught."""
        slower = make_payload(throughput_rps=8000.0)
        verdict = compare_payloads(make_payload(), slower)
        assert verdict.regressed
        (delta,) = verdict.regressions
        assert delta.metric == "throughput_rps"
        assert delta.change_pct == pytest.approx(-20.0)
        assert "REGRESS" in verdict.render_text()

    def test_throughput_drop_within_tolerance_passes(self):
        verdict = compare_payloads(
            make_payload(), make_payload(throughput_rps=9500.0)
        )
        assert not verdict.regressed

    def test_rss_growth_regresses(self):
        bloated = make_payload(peak_rss_bytes=130 * (1 << 20))
        verdict = compare_payloads(make_payload(), bloated)
        assert [d.metric for d in verdict.regressions] == ["peak_rss_bytes"]

    def test_rss_shrink_is_fine(self):
        verdict = compare_payloads(
            make_payload(), make_payload(peak_rss_bytes=10 * (1 << 20))
        )
        assert not verdict.regressed

    def test_hit_ratio_drop_regresses(self):
        worse = make_payload(hit_ratios={"lru@1000": 0.40, "lhr@1000": 0.45})
        verdict = compare_payloads(make_payload(), worse)
        assert [d.metric for d in verdict.regressions] == ["hit_ratio[lhr@1000]"]

    def test_hit_ratio_improvement_is_fine(self):
        better = make_payload(hit_ratios={"lru@1000": 0.44, "lhr@1000": 0.55})
        verdict = compare_payloads(make_payload(), better)
        assert not verdict.regressed

    def test_asymmetric_cells_noted_not_compared(self):
        current = make_payload(hit_ratios={"lru@1000": 0.40, "gdsf@1000": 0.6})
        verdict = compare_payloads(make_payload(), current)
        assert not verdict.regressed
        assert any("only in baseline" in note for note in verdict.notes)
        assert any("only in current" in note for note in verdict.notes)

    def test_identity_mismatches_noted(self):
        other = make_payload(name="figure8", seed=2, scale=0.1)
        verdict = compare_payloads(make_payload(), other)
        notes = " ".join(verdict.notes)
        assert "different benchmarks" in notes
        assert "seed differs" in notes
        assert "scale differs" in notes

    def test_custom_tolerance(self):
        tol = BaselineTolerance(throughput_drop_pct=25.0)
        slower = make_payload(throughput_rps=8000.0)
        assert not compare_payloads(make_payload(), slower, tol).regressed

    def test_malformed_payload_raises(self):
        bad = make_payload()
        del bad["throughput_rps"]
        with pytest.raises(ValueError):
            compare_payloads(make_payload(), bad)

    def test_as_dict_round_trips_through_json(self):
        verdict = compare_payloads(
            make_payload(), make_payload(throughput_rps=8000.0)
        )
        payload = json.loads(json.dumps(verdict.as_dict()))
        assert payload["verdict"] == "regress"
        assert any(d["regressed"] for d in payload["deltas"])


class TestFiles:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return path

    def test_load_telemetry_validates(self, tmp_path):
        good = self._write(tmp_path / "good.json", make_payload())
        assert load_telemetry(good)["name"] == "throughput"
        with pytest.raises(ValueError, match="does not exist"):
            load_telemetry(tmp_path / "missing.json")
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_telemetry(bad_json)
        invalid = self._write(
            tmp_path / "invalid.json", make_payload(schema="other/1")
        )
        with pytest.raises(ValueError, match="invalid.json"):
            load_telemetry(invalid)

    def test_compare_files_consecutive_pairs(self, tmp_path):
        a = self._write(tmp_path / "a.json", make_payload())
        b = self._write(tmp_path / "b.json", make_payload(throughput_rps=9800.0))
        c = self._write(tmp_path / "c.json", make_payload(throughput_rps=7000.0))
        verdicts = compare_files([a, b, c])
        assert len(verdicts) == 2
        assert not verdicts[0].regressed
        assert verdicts[1].regressed  # 9800 -> 7000 is a ~29% drop

    def test_compare_files_needs_two(self, tmp_path):
        a = self._write(tmp_path / "a.json", make_payload())
        with pytest.raises(ValueError, match="at least two"):
            compare_files([a])


def make_v2(**overrides) -> dict:
    payload = make_payload(
        schema=SCHEMA,
        run_id="20260102T030405.000000Z-abcd1234",
        git_rev="deadbeef" * 5,
        config_digest="abcd1234abcd1234",
    )
    payload.update(overrides)
    return payload


class TestSchemaV2:
    def test_v2_payload_validates(self):
        validate_telemetry(make_v2())

    def test_legacy_v1_still_validates(self):
        assert SCHEMA_V1 == "repro-bench/1"
        validate_telemetry(make_payload())

    def test_v2_requires_provenance(self):
        bad = make_v2()
        del bad["run_id"]
        with pytest.raises(ValueError, match="missing fields.*run_id"):
            validate_telemetry(bad)
        with pytest.raises(ValueError, match="expected one of"):
            validate_telemetry(make_v2(git_rev=123))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry schema"):
            validate_telemetry(make_payload(schema="repro-bench/9"))

    def test_upgrade_lifts_v1_with_blank_provenance(self):
        upgraded = upgrade_payload(make_payload())
        assert upgraded["schema"] == SCHEMA
        assert upgraded["run_id"] == ""
        assert upgraded["git_rev"] == ""
        assert upgraded["config_digest"] == ""
        validate_telemetry(upgraded)

    def test_upgrade_keeps_v2_intact(self):
        original = make_v2()
        upgraded = upgrade_payload(original)
        assert upgraded == original
        assert upgraded is not original

    def test_config_digest_mismatch_noted(self):
        verdict = compare_payloads(
            make_v2(), make_v2(config_digest="ffff0000ffff0000")
        )
        assert any("config digest" in note for note in verdict.notes)


class TestHistory:
    def test_history_payload_takes_medians(self):
        history = [
            make_v2(throughput_rps=900.0, requests=9000,
                    peak_rss_bytes=90, wall_seconds=9.0,
                    hit_ratios={"lru@1000": 0.38}),
            make_v2(throughput_rps=1000.0, requests=10000,
                    peak_rss_bytes=100, wall_seconds=10.0,
                    hit_ratios={"lru@1000": 0.40}),
            make_v2(throughput_rps=5000.0, requests=50000,
                    peak_rss_bytes=500, wall_seconds=50.0,
                    hit_ratios={"lru@1000": 0.90}),  # the outlier
        ]
        baseline = history_payload(history)
        assert baseline["throughput_rps"] == 1000.0
        assert baseline["requests"] == 10000
        assert baseline["peak_rss_bytes"] == 100
        assert baseline["hit_ratios"] == {"lru@1000": 0.40}
        assert baseline["run_id"] == ""  # a median has no source run
        assert baseline["extra"]["history_size"] == 3
        validate_telemetry(baseline)

    def test_history_payload_needs_input(self):
        with pytest.raises(ValueError, match="at least one"):
            history_payload([])

    def test_regression_vs_rolling_history(self):
        """The acceptance bar: an injected regression is flagged against
        the median of three prior runs."""
        history = [
            make_v2(throughput_rps=t) for t in (980.0, 1000.0, 1020.0)
        ]
        bad = make_v2(throughput_rps=500.0)
        verdict = compare_with_history(history, bad)
        assert verdict.regressed
        assert "median of 3 prior runs" in verdict.baseline_name
        (delta,) = [
            d for d in verdict.regressions if d.metric == "throughput_rps"
        ]
        assert delta.baseline == 1000.0

    def test_healthy_run_passes_history(self):
        history = [
            make_v2(throughput_rps=t) for t in (980.0, 1000.0, 1020.0)
        ]
        verdict = compare_with_history(history, make_v2(throughput_rps=1010.0))
        assert not verdict.regressed

    def test_one_outlier_cannot_move_the_baseline(self):
        history = [
            make_v2(throughput_rps=1000.0),
            make_v2(throughput_rps=1.0),  # one catastrophic run
            make_v2(throughput_rps=1000.0),
        ]
        verdict = compare_with_history(history, make_v2(throughput_rps=990.0))
        assert not verdict.regressed

    def test_mixed_v1_v2_history(self):
        """Pre-ledger v1 payloads participate in the rolling window."""
        history = [make_payload(throughput_rps=1000.0), make_v2()]
        verdict = compare_with_history(history, make_v2(throughput_rps=100.0))
        assert verdict.regressed
