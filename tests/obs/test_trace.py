"""Decision tracer: recording modes, the miss-taxonomy invariant, victim
attribution, and the zero-cost untraced dispatch."""

import pickle

import pytest

from repro.obs import DecisionTracer, MissTaxonomy, TraceConfig
from repro.obs.trace import (
    MISS_ADMISSION_REJECTED,
    MISS_COLD,
    MISS_EVICTED_EARLY,
    MISS_ONE_HIT_WONDER,
)
from repro.policies import make_policy
from repro.policies.base import CachePolicy
from repro.sim import build_policy, simulate
from repro.sim.hierarchy import TieredCache
from repro.traces.request import Request
from repro.traces.synthetic import irm_trace


def _requests(spec):
    """Build requests from ``(obj_id, size)`` pairs."""
    return [
        Request(time=float(i), obj_id=obj_id, size=size, index=i)
        for i, (obj_id, size) in enumerate(spec)
    ]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="buffer"):
            TraceConfig(buffer=0)
        with pytest.raises(ValueError, match="sample_every"):
            TraceConfig(sample_every=0)
        with pytest.raises(ValueError, match="buffer"):
            DecisionTracer(buffer=-1)
        with pytest.raises(ValueError, match="sample_every"):
            DecisionTracer(sample_every=0)

    def test_build_and_pickle(self):
        config = TraceConfig(buffer=16, sample_every=3)
        tracer = pickle.loads(pickle.dumps(config)).build()
        assert tracer.buffer == 16
        assert tracer.sample_every == 3


class TestClassification:
    def test_hand_built_taxonomy(self):
        # Cache of 2 x 100-byte slots under LRU: object 3's admission
        # evicts 1, so 1's return at index 4 is evicted_early attributed
        # to 3.  Contents 2, 3 and 9 are requested exactly once — one-hit
        # wonders — leaving 1's first request as the only true cold miss.
        policy = make_policy("lru", 200)
        tracer = DecisionTracer()
        policy.attach_tracer(tracer)
        policy.process(_requests([
            (1, 100), (2, 100), (3, 100), (9, 100), (1, 100), (1, 100),
        ]))
        tax = tracer.taxonomy()
        assert tax.total == policy.misses == 5
        assert tax.cold == 1  # content 1 (re-referenced later)
        assert tax.one_hit_wonder == 3  # 2, 3, 9
        assert tax.evicted_early == 1  # 1's return at index 4
        assert tracer.evictor_counts[3] == 1  # 3's admission displaced 1
        assert tracer.records[4].miss_class == MISS_EVICTED_EARLY

    def test_rejection_class_and_threshold_count(self):
        # An object bigger than the cache is never admitted; its re-miss
        # is admission_rejected.
        policy = make_policy("lru", 100)
        tracer = DecisionTracer()
        policy.attach_tracer(tracer)
        policy.process(_requests([(7, 500), (7, 500)]))
        tax = tracer.taxonomy()
        assert tax.counts() == {
            MISS_COLD: 1,
            MISS_ONE_HIT_WONDER: 0,
            MISS_ADMISSION_REJECTED: 1,
            MISS_EVICTED_EARLY: 0,
        }
        # No probability/threshold inputs on LRU, so none below delta.
        assert tax.rejected_below_threshold == 0

    def test_class_of_resolves_one_hit_wonders(self):
        policy = make_policy("lru", 1000)
        tracer = DecisionTracer()
        policy.attach_tracer(tracer)
        policy.process(_requests([(1, 10), (2, 10), (1, 10)]))
        first, lonely = tracer.records[0], tracer.records[1]
        assert first.miss_class == lonely.miss_class == MISS_COLD
        assert tracer.class_of(first) == MISS_COLD
        assert tracer.class_of(lonely) == MISS_ONE_HIT_WONDER

    @pytest.mark.parametrize("name", ["lru", "lhr", "s4lru", "gdsf"])
    def test_taxonomy_sums_to_misses(self, name):
        trace = irm_trace(3000, 150, seed=5)
        policy = build_policy(name, int(0.05 * trace.unique_bytes()))
        tracer = DecisionTracer()
        simulate(policy, trace, tracer=tracer)
        tax = tracer.taxonomy()
        assert tax.total == policy.misses == tracer.misses
        assert sum(tax.counts().values()) == tax.total
        assert tracer.hits == policy.hits
        assert tracer.is_complete

    def test_lhr_records_probability_and_threshold(self):
        trace = irm_trace(3000, 150, seed=5)
        policy = build_policy("lhr", int(0.05 * trace.unique_bytes()))
        tracer = DecisionTracer()
        simulate(policy, trace, tracer=tracer)
        probs = [r.probability for r in tracer.records if r.probability is not None]
        assert probs, "LHR never reported an admission probability"
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert any(r.threshold is not None for r in tracer.records)
        assert tracer.taxonomy().rejected_below_threshold >= 0


class TestRecordingModes:
    def test_ring_buffer_keeps_last_n(self):
        tracer = DecisionTracer(buffer=4)
        policy = make_policy("lru", 10_000)
        policy.attach_tracer(tracer)
        policy.process(_requests([(i, 10) for i in range(10)]))
        assert [r.obj_id for r in tracer.records] == [6, 7, 8, 9]
        assert not tracer.is_complete
        # Taxonomy counters still cover every request.
        assert tracer.taxonomy().total == 10

    def test_sampling_keeps_every_kth(self):
        tracer = DecisionTracer(sample_every=3)
        policy = make_policy("lru", 10_000)
        policy.attach_tracer(tracer)
        policy.process(_requests([(i, 10) for i in range(10)]))
        assert [r.index for r in tracer.records] == [0, 3, 6, 9]
        assert not tracer.is_complete
        assert tracer.taxonomy().total == 10

    def test_summary_and_record_dict_are_jsonable(self):
        import json

        tracer = DecisionTracer()
        policy = make_policy("lru", 100)
        policy.attach_tracer(tracer)
        policy.process(_requests([(1, 60), (2, 60), (1, 60)]))
        json.dumps(tracer.summary())
        json.dumps([r.as_dict() for r in tracer.records])


class TestDispatch:
    def test_attach_detach_leaves_no_shadow(self):
        policy = make_policy("lru", 100)
        assert "request" not in policy.__dict__
        policy.attach_tracer(DecisionTracer())
        assert "request" in policy.__dict__
        policy.attach_tracer(None)
        assert "request" not in policy.__dict__
        assert "_remove" not in policy.__dict__

    def test_traced_run_matches_untraced(self):
        trace = irm_trace(2000, 100, seed=3)
        capacity = int(0.1 * trace.unique_bytes())
        plain = simulate(build_policy("lhr", capacity, seed=0), trace)
        traced = simulate(
            build_policy("lhr", capacity, seed=0), trace,
            tracer=DecisionTracer(),
        )
        assert plain.counters() == traced.counters()
        assert traced.decision_trace is not None
        assert plain.decision_trace is None

    def test_request_override_rejected(self):
        tiered = TieredCache(make_policy("lru", 100), make_policy("lru", 200))
        with pytest.raises(ValueError, match="overridden"):
            tiered.attach_tracer(DecisionTracer())

    def test_no_remove_shadow_after_traced_run(self):
        policy = make_policy("lru", 200)
        policy.attach_tracer(DecisionTracer())
        policy.process(_requests([(1, 150), (2, 150), (1, 150)]))
        assert "_remove" not in policy.__dict__
        assert policy.evictions > 0


class TestTaxonomyDataclass:
    def test_empty_taxonomy(self):
        tax = MissTaxonomy()
        assert tax.total == 0
        assert tax.as_dict()["total_misses"] == 0

    def test_base_policy_decision_inputs_default(self):
        policy = make_policy("lru", 100)
        assert isinstance(policy, CachePolicy)
        req = _requests([(1, 10)])[0]
        assert policy.decision_inputs(req) == (None, None, None)
