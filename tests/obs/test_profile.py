"""Tests for the sampling profiler and per-phase attribution."""

from __future__ import annotations

import time

import pytest

from repro.obs import MetricsRegistry
from repro.obs.profile import (
    PhaseRow,
    SamplingProfiler,
    phase_breakdown,
    profile_simulation,
)


def _spin(seconds: float) -> int:
    """Busy loop with a recognizable frame name for the sampler to catch."""
    deadline = time.perf_counter() + seconds
    count = 0
    while time.perf_counter() < deadline:
        count += 1
    return count


class TestSamplingProfiler:
    def test_samples_busy_code(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        with profiler:
            _spin(0.15)
        assert profiler.sample_count > 10
        leaves = dict(profiler.hottest(20))
        assert any("_spin" in frame for frame in leaves)

    def test_collapsed_format(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        with profiler:
            _spin(0.1)
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert ";" in stack or stack  # root-only stacks are legal
        # Heaviest stack first.
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_write_collapsed(self, tmp_path):
        profiler = SamplingProfiler(interval_seconds=0.001)
        with profiler:
            _spin(0.05)
        out = profiler.write_collapsed(tmp_path / "stacks.folded")
        assert out.read_text() == profiler.collapsed()

    def test_start_twice_raises(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_seconds=0.0)

    def test_stop_without_start_is_noop(self):
        SamplingProfiler().stop()  # must not raise


class TestThreadAwareStacks:
    """Satellite: collapsed stacks carry the thread name as the root
    frame, and ``all_threads=True`` samples named helper threads."""

    def test_target_thread_stacks_prefixed_with_thread_name(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        with profiler:
            _spin(0.1)
        text = profiler.collapsed()
        assert text
        for line in text.splitlines():
            stack, _ = line.rsplit(" ", 1)
            assert stack.startswith("MainThread")

    def test_all_threads_samples_named_busy_thread(self):
        import threading

        stop = threading.Event()

        def busy():
            while not stop.is_set():
                pass

        worker = threading.Thread(target=busy, name="busy-worker")
        worker.start()
        try:
            profiler = SamplingProfiler(
                interval_seconds=0.001, all_threads=True
            )
            with profiler:
                _spin(0.15)
        finally:
            stop.set()
            worker.join()
        text = profiler.collapsed()
        roots = {line.split(";", 1)[0].split(" ")[0] for line in text.splitlines()}
        assert "MainThread" in roots
        assert "busy-worker" in roots
        busy_lines = [
            line for line in text.splitlines()
            if line.startswith("busy-worker")
        ]
        assert any("busy" in line for line in busy_lines)

    def test_default_mode_ignores_other_threads(self):
        import threading

        stop = threading.Event()

        def busy():
            while not stop.is_set():
                pass

        worker = threading.Thread(target=busy, name="background-spinner")
        worker.start()
        try:
            profiler = SamplingProfiler(interval_seconds=0.001)
            with profiler:
                _spin(0.1)
        finally:
            stop.set()
            worker.join()
        assert "background-spinner" not in profiler.collapsed()


class TestPhaseBreakdown:
    def test_rows_from_seconds_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim_replay_seconds")
        hist.observe(2.0)
        train = registry.histogram("lhr_train_seconds")
        train.observe(0.25)
        train.observe(0.25)
        registry.counter("sim_requests_total").inc(5)  # not a phase
        registry.histogram("policy_evictions_per_admission").observe(3)

        rows = phase_breakdown(registry, wall_seconds=4.0)
        assert [row.metric for row in rows] == [
            "sim_replay_seconds",
            "lhr_train_seconds",
        ]  # sorted by total, counters and non-phase histograms skipped
        replay, training = rows
        assert replay.phase == "replay loop (total)"
        assert replay.wall_share == pytest.approx(0.5)
        assert training.phase == "GBM training"
        assert training.calls == 2
        assert training.mean_seconds == pytest.approx(0.25)

    def test_unknown_seconds_histogram_uses_raw_name(self):
        registry = MetricsRegistry()
        registry.histogram("custom_stage_seconds").observe(1.0)
        rows = phase_breakdown(registry, wall_seconds=2.0)
        assert rows[0].phase == "custom_stage_seconds"

    def test_empty_registry_and_zero_wall(self):
        assert phase_breakdown(MetricsRegistry(), wall_seconds=0.0) == []
        registry = MetricsRegistry()
        registry.histogram("x_seconds").observe(1.0)
        assert phase_breakdown(registry, wall_seconds=0.0)[0].wall_share == 0.0

    def test_phase_row_as_dict(self):
        row = PhaseRow(
            phase="p", metric="m", calls=1, total_seconds=0.5,
            mean_seconds=0.5, wall_share=0.25,
        )
        assert row.as_dict()["wall_share"] == 0.25


class TestProfileSimulation:
    def test_report_on_small_replay(self, equal_size_trace, tmp_path):
        report = profile_simulation(
            equal_size_trace, "lru", 64, interval_seconds=0.001
        )
        assert report.policy == "lru"
        assert report.trace == equal_size_trace.name
        assert report.requests == len(equal_size_trace)
        assert 0.0 <= report.hit_ratio <= 1.0
        assert report.wall_seconds > 0
        assert report.rss_bytes > 0
        # The replay always populates sim_replay_seconds.
        assert any(r.metric == "sim_replay_seconds" for r in report.phases)
        text = report.render_text()
        assert "replay loop (total)" in text
        assert "profile: lru" in text
        payload = report.as_dict()
        assert payload["samples"] == report.sample_count
        assert payload["phases"]
        out = report.write_collapsed(tmp_path / "replay.folded")
        assert out.exists()

    def test_lhr_phases_attributed(self, production_trace, production_capacity):
        report = profile_simulation(
            production_trace,
            "lhr",
            production_capacity,
            interval_seconds=0.002,
            policy_kwargs={"seed": 0},
        )
        names = {row.metric for row in report.phases}
        assert "sim_replay_seconds" in names
        assert "lhr_train_seconds" in names  # LHR trained at least once

    def test_write_collapsed_without_profiler_raises(self):
        from repro.obs.profile import ProfileReport

        report = ProfileReport(
            policy="lru", trace="t", capacity=1, wall_seconds=1.0,
            rss_bytes=1, requests=1, hit_ratio=0.0,
        )
        with pytest.raises(ValueError):
            report.write_collapsed("/tmp/never.folded")
