"""Event recorders, the observation handle, and end-to-end emission
through ``simulate`` (the LHR lifecycle events the paper's diagnostics
hang off)."""

import io
import json

import pytest

from repro.core.lhr import LhrCache
from repro.obs import (
    EVENT_TYPES,
    NULL_OBS,
    NULL_TIMER,
    FanoutRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    Observation,
    TextRecorder,
    register_event_type,
)
from repro.policies import make_policy
from repro.sim import simulate
from repro.traces.synthetic import irm_trace


class TestRecorders:
    def test_null_recorder_is_disabled_noop(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        recorder.emit("sim.window", index=0)  # no-op, no error
        recorder.close()

    def test_memory_recorder_sequences_events(self):
        recorder = MemoryRecorder()
        recorder.emit("sim.window", index=0, hits=3)
        recorder.emit("lhr.retrain", window=1)
        assert [e["seq"] for e in recorder.events] == [0, 1]
        assert recorder.by_type("lhr.retrain") == [
            {"event": "lhr.retrain", "seq": 1, "window": 1}
        ]

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            MemoryRecorder().emit("bogus.event")

    def test_register_event_type(self):
        name = register_event_type("test.custom")
        try:
            recorder = MemoryRecorder()
            recorder.emit(name, x=1)
            assert recorder.events[0]["event"] == "test.custom"
        finally:
            EVENT_TYPES.discard(name)

    def test_register_event_type_requires_namespace(self):
        with pytest.raises(ValueError, match="subsystem.event"):
            register_event_type("plainname")

    def test_jsonl_recorder_writes_valid_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.emit("sim.window", index=0, hit_ratio=0.25)
            recorder.emit("sim.window", index=1, hit_ratio=0.5)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 1]
        assert records[1] == {
            "event": "sim.window", "seq": 1, "index": 1, "hit_ratio": 0.5
        }

    def test_jsonl_recorder_serializes_numpy_scalars(self, tmp_path):
        import numpy as np

        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.emit(
                "sim.window",
                index=np.int64(3),
                hit_ratio=np.float32(0.25),
            )
        record = json.loads(path.read_text())
        assert record["index"] == 3
        assert record["hit_ratio"] == pytest.approx(0.25)

    def test_jsonl_recorder_falls_back_to_repr(self, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as recorder:
            recorder.emit("sim.window", index=0, payload=Opaque())
        assert json.loads(path.read_text())["payload"] == "<opaque thing>"

    def test_jsonl_recorder_raises_after_close(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "e.jsonl")
        recorder.close()
        recorder.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            recorder.emit("sim.window")

    def test_text_recorder_formats_one_line_per_event(self):
        stream = io.StringIO()
        TextRecorder(stream).emit("sim.window", index=3, hit_ratio=0.123456789)
        assert stream.getvalue() == "[sim.window] index=3 hit_ratio=0.123457\n"

    def test_fanout_broadcasts(self, tmp_path):
        memory = MemoryRecorder()
        jsonl = JsonlRecorder(tmp_path / "e.jsonl")
        fanout = FanoutRecorder(memory, jsonl, None)
        fanout.emit("sim.window", index=0)
        fanout.close()
        assert len(memory.events) == 1
        assert json.loads((tmp_path / "e.jsonl").read_text())["index"] == 0


class TestObservation:
    def test_null_obs_is_shared_and_inert(self):
        assert NULL_OBS.enabled is False
        NULL_OBS.emit("sim.window", index=0)
        with NULL_OBS.timer("anything") as timer:
            assert timer is NULL_TIMER
        NULL_OBS.close()

    def test_timer_aggregates_into_registry_histogram(self):
        obs = Observation()
        with obs.timer("work_seconds", help="work"):
            pass
        with obs.timer("work_seconds"):
            pass
        hist = obs.registry.histogram("work_seconds")
        assert hist.count == 2
        assert hist.stats.minimum >= 0.0

    def test_default_recorder_is_null(self):
        obs = Observation()
        assert obs.enabled is True
        obs.emit("sim.window", index=0)  # swallowed by the NullRecorder


@pytest.fixture(scope="module")
def event_trace():
    return irm_trace(2000, 120, alpha=0.8, mean_size=1 << 10, seed=11)


class TestSimulateEmission:
    """End-to-end: replaying a trace under an enabled observation emits
    the catalog events and fills the profiling histograms."""

    def test_lru_emits_windows_and_replay_metrics(self, event_trace):
        obs = Observation(recorder=MemoryRecorder())
        capacity = int(0.1 * event_trace.unique_bytes())
        result = simulate(
            make_policy("lru", capacity), event_trace,
            window_requests=500, obs=obs,
        )
        windows = obs.recorder.by_type("sim.window")
        assert len(windows) == len(result.windows) == 4
        assert [w["index"] for w in windows] == [0, 1, 2, 3]
        for window, event in zip(result.windows, windows):
            assert event["requests"] == window.requests
            assert event["hits"] == window.hits
            assert event["hit_ratio"] == pytest.approx(
                window.hit_ratio, abs=1e-6
            )
        reg = obs.registry
        assert reg.counter("sim_requests_total").value == len(event_trace)
        assert reg.counter("sim_hits_total").value == result.hits
        assert reg.histogram("sim_replay_seconds").count == 1

    def test_lhr_emits_lifecycle_events(self, event_trace):
        obs = Observation(recorder=MemoryRecorder())
        capacity = int(0.1 * event_trace.unique_bytes())
        simulate(LhrCache(capacity, seed=0), event_trace, obs=obs)
        types = {e["event"] for e in obs.recorder.events}
        assert "lhr.retrain" in types
        assert "lhr.drift" in types
        retrain = obs.recorder.by_type("lhr.retrain")[0]
        assert retrain["rows"] > 0 and retrain["trees"] > 0
        reg = obs.registry
        assert reg.counter("lhr_trainings_total").value == len(
            obs.recorder.by_type("lhr.retrain")
        )
        assert reg.histogram("lhr_train_seconds").count > 0
        assert reg.histogram("lhr_predict_seconds").count > 0
        assert reg.histogram("hro_rank_seconds").count > 0

    def test_observed_run_matches_unobserved(self, event_trace):
        """Observation must never perturb the simulation itself."""
        capacity = int(0.1 * event_trace.unique_bytes())
        plain = simulate(
            LhrCache(capacity, seed=0), event_trace, window_requests=500
        )
        observed = simulate(
            LhrCache(capacity, seed=0), event_trace, window_requests=500,
            obs=Observation(recorder=MemoryRecorder()),
        )
        assert plain.counters() == observed.counters()
        assert plain.object_hit_ratio == observed.object_hit_ratio
        assert plain.window_series() == observed.window_series()


class TestRecorderContextManagers:
    def test_jsonl_recorder_closes_on_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlRecorder(path) as recorder:
                recorder.emit("sim.window", index=0)
                raise RuntimeError("boom")
        # The event written before the crash survived the close.
        assert json.loads(path.read_text())["index"] == 0
        with pytest.raises(RuntimeError, match="closed"):
            recorder.emit("sim.window", index=1)

    def test_jsonl_flush_makes_events_visible(self, tmp_path):
        path = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(path)
        recorder.emit("sim.window", index=0)
        recorder.flush()
        assert path.read_text().strip()
        recorder.close()

    def test_text_recorder_context_flushes_but_keeps_stream_open(self):
        stream = io.StringIO()
        with TextRecorder(stream) as recorder:
            recorder.emit("sim.window", index=0)
        assert not stream.closed  # borrowed stream (stderr) is never closed
        assert "[sim.window]" in stream.getvalue()

    def test_null_recorder_context_manager(self):
        with NullRecorder() as recorder:
            recorder.emit("sim.window", index=0)
            recorder.flush()

    def test_observation_context_closes_recorder(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Observation(recorder=JsonlRecorder(path)) as obs:
            obs.emit("sim.window", index=0)
        with pytest.raises(RuntimeError, match="closed"):
            obs.emit("sim.window", index=1)


class _ExplodingRecorder(NullRecorder):
    """Raises from every operation; records how often it was called."""

    enabled = True

    def __init__(self, tag="boom"):
        self.tag = tag
        self.calls = 0

    def emit(self, event, **fields):
        self.calls += 1
        raise RuntimeError(self.tag)

    def flush(self):
        self.calls += 1
        raise RuntimeError(self.tag)

    def close(self):
        self.calls += 1
        raise RuntimeError(self.tag)


class TestFanoutErrorPropagation:
    def test_emit_delivers_to_all_then_reraises_first(self):
        first = _ExplodingRecorder("first")
        survivor = MemoryRecorder()
        fanout = FanoutRecorder(first, survivor)
        with pytest.raises(RuntimeError, match="first"):
            fanout.emit("sim.window", index=0)
        # The healthy sink still received the event.
        assert [e["event"] for e in survivor.events] == ["sim.window"]

    def test_first_error_wins_across_multiple_failures(self):
        a = _ExplodingRecorder("alpha")
        b = _ExplodingRecorder("beta")
        with pytest.raises(RuntimeError, match="alpha"):
            FanoutRecorder(a, b).emit("sim.window", index=0)
        assert a.calls == 1 and b.calls == 1

    def test_close_reaches_every_recorder_despite_errors(self, tmp_path):
        exploding = _ExplodingRecorder()
        jsonl = JsonlRecorder(tmp_path / "log.jsonl")
        fanout = FanoutRecorder(exploding, jsonl)
        with pytest.raises(RuntimeError):
            fanout.close()
        # The JSONL file was closed even though its sibling exploded.
        with pytest.raises(RuntimeError, match="closed"):
            jsonl.emit("sim.window", index=0)

    def test_flush_propagates_and_broadcasts(self):
        exploding = _ExplodingRecorder()
        survivor = MemoryRecorder()
        with pytest.raises(RuntimeError):
            FanoutRecorder(exploding, survivor).flush()
        assert exploding.calls == 1


class TestScopedTimerReentrancy:
    def test_nested_use_records_both_spans(self):
        from repro.obs import MetricsRegistry, ScopedTimer

        registry = MetricsRegistry()
        timer = ScopedTimer(registry.histogram("phase_seconds"))
        with timer:
            with timer:  # re-entrant: LHR's train inside replay
                pass
        hist = registry.histogram("phase_seconds")
        assert hist.count == 2
        # The outer span is at least as long as the inner one.
        assert hist.stats.maximum >= hist.stats.minimum >= 0.0

    def test_exit_without_enter_raises(self):
        from repro.obs import MetricsRegistry, ScopedTimer

        timer = ScopedTimer(MetricsRegistry().histogram("phase_seconds"))
        with pytest.raises(RuntimeError, match="exited more times"):
            timer.__exit__(None, None, None)

    def test_last_seconds_tracks_innermost_completion(self):
        from repro.obs import MetricsRegistry, ScopedTimer

        timer = ScopedTimer(MetricsRegistry().histogram("phase_seconds"))
        with timer:
            pass
        assert timer.last_seconds >= 0.0


class TestScopedTimerThreadSafety:
    """Satellite: per-thread start stacks — interleaved threads must not
    pop each other's start times."""

    def test_interleaved_threads_measure_their_own_spans(self):
        import threading
        import time as time_module

        from repro.obs import MetricsRegistry, ScopedTimer

        registry = MetricsRegistry()
        timer = ScopedTimer(registry.histogram("phase_seconds"))
        a_entered = threading.Event()
        b_done = threading.Event()

        def long_span():
            with timer:
                time_module.sleep(0.05)
                a_entered.set()
                assert b_done.wait(5.0)

        def short_span():
            assert a_entered.wait(5.0)
            with timer:  # enters and exits while the other span is open
                pass
            b_done.set()

        threads = [
            threading.Thread(target=long_span),
            threading.Thread(target=short_span),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hist = registry.histogram("phase_seconds")
        assert hist.count == 2
        # With a shared stack the short span would pop the long span's
        # start and measure >= 50ms; per-thread stacks keep it tiny.
        assert hist.stats.minimum < 0.05
        assert hist.stats.maximum >= 0.05

    def test_concurrent_nested_use_keeps_exact_counts(self):
        import threading

        from repro.obs import MetricsRegistry, ScopedTimer

        registry = MetricsRegistry()
        timer = ScopedTimer(registry.histogram("phase_seconds"))
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    with timer:
                        with timer:
                            pass
            except Exception as exc:  # noqa: BLE001 — any raise is a failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert registry.histogram("phase_seconds").count == 8 * 200 * 2

    def test_exit_on_fresh_thread_raises(self):
        import threading

        from repro.obs import MetricsRegistry, ScopedTimer

        timer = ScopedTimer(MetricsRegistry().histogram("phase_seconds"))
        caught = []

        def exit_without_enter():
            try:
                timer.__exit__(None, None, None)
            except RuntimeError as exc:
                caught.append(exc)

        with timer:
            # The other thread never entered: its per-thread stack is
            # empty even though this thread's span is open.
            thread = threading.Thread(target=exit_without_enter)
            thread.start()
            thread.join()
        assert len(caught) == 1


class TestJsonlDurability:
    """Satellite: flush/close durability and torn-write recovery."""

    def test_close_flushes_buffered_events(self, tmp_path):
        from repro.obs import read_events_jsonl

        path = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(path)
        recorder.emit("sim.window", policy="lru")
        recorder.close()
        events = read_events_jsonl(path)
        assert events == [{"event": "sim.window", "seq": 0, "policy": "lru"}]

    def test_flush_makes_events_visible_before_close(self, tmp_path):
        from repro.obs import read_events_jsonl

        path = tmp_path / "events.jsonl"
        recorder = JsonlRecorder(path)
        recorder.emit("sim.window", policy="lru")
        recorder.flush()
        # Readable by a concurrent process while the recorder stays open.
        assert len(read_events_jsonl(path)) == 1
        recorder.close()

    def test_fsync_flag_fsyncs_on_flush(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.obs.events.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[-1],
        )
        recorder = JsonlRecorder(tmp_path / "events.jsonl", fsync=True)
        recorder.emit("sim.window", policy="lru")
        recorder.close()
        assert synced  # close -> flush -> fsync

    def test_emit_after_close_raises(self, tmp_path):
        recorder = JsonlRecorder(tmp_path / "events.jsonl")
        recorder.close()
        with pytest.raises(RuntimeError, match="closed"):
            recorder.emit("sim.window")

    def test_kill_mid_write_leaves_replayable_log(self, tmp_path):
        """Regression: a process killed mid-write must not corrupt the
        flushed prefix, and the tolerant reader must recover it."""
        import subprocess
        import sys

        path = tmp_path / "events.jsonl"
        script = f"""
import os, sys
sys.path.insert(0, {str((tmp_path / '..').resolve())!r})
from repro.obs import JsonlRecorder

recorder = JsonlRecorder({str(path)!r})
for i in range(50):
    recorder.emit("sim.window", index=i)
recorder.flush()
# Simulate a torn write: raw partial line after the flushed prefix,
# then die without close() as SIGKILL would.
recorder._file.write('{{"event": "sim.window", "index": 50, "trunc')
recorder._file.flush()
os._exit(9)
"""
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert proc.returncode == 9, proc.stderr
        from repro.obs import read_events_jsonl

        with pytest.raises(ValueError, match="not valid JSON"):
            read_events_jsonl(path)  # strict: corruption is loud
        events = read_events_jsonl(path, strict=False)
        assert [e["index"] for e in events] == list(range(50))

    def test_strict_false_only_forgives_the_last_line(self, tmp_path):
        from repro.obs import read_events_jsonl

        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n{broken\n{"event": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events_jsonl(path, strict=False)
