"""Tests for the span recorder and the Chrome trace-event export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import NULL_SPANS, Observation, SpanRecorder
from repro.obs.spans import Span, chrome_trace


class FakeClock:
    """Deterministic monotonic clock: every read advances by ``step``."""

    def __init__(self, start: float = 100.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanRecorder:
    def test_begin_end_records_duration(self):
        rec = SpanRecorder(clock=FakeClock(step=1.0))
        span = rec.begin("work", cat="sim")
        rec.end(span)
        assert len(rec) == 1
        done = rec.spans[0]
        assert done.name == "work"
        assert done.cat == "sim"
        assert done.duration == pytest.approx(1.0)
        assert done.parent_id is None

    def test_nesting_sets_parent(self):
        rec = SpanRecorder(clock=FakeClock())
        outer = rec.begin("outer")
        inner = rec.begin("inner")
        rec.end(inner)
        rec.end(outer)
        by_name = {span.name: span for span in rec.spans}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None
        # Completion order: inner ends first.
        assert [span.name for span in rec.spans] == ["inner", "outer"]

    def test_context_manager_and_end_args_merge(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("job", cat="cell", cell=3):
            pass
        span = rec.begin("replay", requests=10)
        rec.end(span, hits=4)
        job, replay = rec.spans
        assert job.args == {"cell": 3}
        assert replay.args == {"requests": 10, "hits": 4}

    def test_out_of_order_end_keeps_stack_sane(self):
        rec = SpanRecorder(clock=FakeClock())
        a = rec.begin("a")
        b = rec.begin("b")
        rec.end(a)  # ended before its child — must not corrupt the stack
        c = rec.begin("c")
        rec.end(c)
        rec.end(b)
        by_name = {span.name: span for span in rec.spans}
        assert by_name["c"].parent_id == b.span_id

    def test_threads_get_separate_stacks(self):
        rec = SpanRecorder(clock=FakeClock())
        main = rec.begin("main-root")
        seen = {}

        def worker():
            span = rec.begin("thread-root")
            rec.end(span)
            seen["parent"] = span.parent_id

        thread = threading.Thread(target=worker, name="spanner")
        thread.start()
        thread.join()
        rec.end(main)
        # The other thread's root is NOT parented onto this thread's span.
        assert seen["parent"] is None
        assert "spanner" in rec.thread_names.values()

    def test_dict_round_trip(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner", cat="lhr", rows=5):
                pass
        dicts = rec.as_dicts()
        back = [Span.from_dict(d) for d in dicts]
        assert [s.name for s in back] == ["inner", "outer"]
        assert back[0].args == {"rows": 5}
        assert back[0].parent_id == back[1].span_id
        assert all(s.pid == rec.pid for s in back)

    def test_unfinished_spans_not_exported(self):
        rec = SpanRecorder(clock=FakeClock())
        rec.begin("never-ends")
        assert rec.as_dicts() == []
        assert len(rec) == 0


class TestAbsorb:
    def test_absorb_reassigns_ids_and_reparents(self):
        driver = SpanRecorder(clock=FakeClock())
        gather = driver.begin("gather")
        worker = SpanRecorder(clock=FakeClock())
        with worker.span("cell"):
            with worker.span("replay"):
                pass
        # Simulate a same-pid batch colliding with driver ids.
        batch = worker.as_dicts()
        driver.absorb(batch, parent=gather)
        driver.end(gather)
        by_name = {span.name: span for span in driver.spans}
        assert by_name["replay"].parent_id == by_name["cell"].span_id
        assert by_name["cell"].parent_id == gather.span_id
        ids = [span.span_id for span in driver.spans]
        assert len(ids) == len(set(ids))  # no collisions after re-id

    def test_absorb_cross_pid_parent_marker(self):
        driver = SpanRecorder(clock=FakeClock())
        root = driver.begin("sweep.run")
        worker = SpanRecorder(clock=FakeClock())
        with worker.span("cell"):
            pass
        batch = worker.as_dicts()
        for entry in batch:
            entry["pid"] = driver.pid + 1  # forked worker pid
        driver.absorb(batch, parent=root)
        driver.end(root)
        cell = next(s for s in driver.spans if s.name == "cell")
        assert cell.parent_id == root.span_id
        assert cell.parent_pid == driver.pid
        assert cell.pid == driver.pid + 1

    def test_absorb_without_parent_keeps_roots(self):
        driver = SpanRecorder(clock=FakeClock())
        worker = SpanRecorder(clock=FakeClock())
        with worker.span("cell"):
            pass
        driver.absorb(worker.as_dicts())
        assert driver.spans[0].parent_id is None


class TestNullSpans:
    def test_noop_and_shared_context(self):
        span = NULL_SPANS.begin("anything", cat="x", k=1)
        NULL_SPANS.end(span, extra=2)
        with NULL_SPANS.span("ctx"):
            pass
        assert not NULL_SPANS.enabled
        assert len(NULL_SPANS) == 0
        assert NULL_SPANS.as_dicts() == []

    def test_observation_defaults_to_null_spans(self):
        assert Observation().spans is NULL_SPANS

    def test_spans_only_observation_stays_disabled(self):
        rec = SpanRecorder()
        obs = Observation.spans_only(rec)
        assert obs.spans is rec
        assert not obs.enabled  # packed fast path must stay engaged


class TestChromeTrace:
    def _recorder(self):
        rec = SpanRecorder(clock=FakeClock(step=0.5))
        with rec.span("root", cat="cli"):
            with rec.span("child", cat="sim", chunk=1):
                pass
        return rec

    def test_every_event_has_required_keys(self):
        payload = self._recorder().chrome_trace()
        assert payload["traceEvents"]
        for event in payload["traceEvents"]:
            for key in ("ph", "ts", "pid", "name"):
                assert key in event, event

    def test_complete_events_are_relative_microseconds(self):
        payload = self._recorder().chrome_trace()
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        child = next(e for e in spans if e["name"] == "child")
        root = next(e for e in spans if e["name"] == "root")
        assert root["ts"] == 0.0  # earliest span anchors the timeline
        assert child["ts"] > 0
        assert child["dur"] > 0
        assert child["args"] == {"chunk": 1}
        assert child["cat"] == "sim"

    def test_process_metadata_lanes(self):
        driver = SpanRecorder(clock=FakeClock())
        root = driver.begin("sweep.run")
        worker = SpanRecorder(clock=FakeClock(start=100.5))
        with worker.span("cell"):
            pass
        batch = worker.as_dicts()
        for entry in batch:
            entry["pid"] = driver.pid + 7
        driver.absorb(batch, parent=root)
        driver.end(root)
        payload = chrome_trace(driver.as_dicts(), driver_pid=driver.pid)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert names[driver.pid] == "driver"
        assert names[driver.pid + 7] == f"worker {driver.pid + 7}"

    def test_write_chrome_trace(self, tmp_path):
        rec = self._recorder()
        out = tmp_path / "trace.json"
        rec.write_chrome_trace(out)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_empty_trace_is_valid(self):
        payload = chrome_trace([])
        assert payload["traceEvents"] == []
