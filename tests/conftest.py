"""Shared fixtures: small, deterministic traces reused across the suite."""

from __future__ import annotations

import pytest

from repro.traces import generate_production_trace, irm_trace
from repro.traces.request import Request, Trace


@pytest.fixture(autouse=True)
def _ledger_in_tmp(monkeypatch, tmp_path):
    """Point the default-on run ledger at a throwaway directory so tests
    that drive the CLI in-process never write ``.repro/runs`` in CWD."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "run-ledger"))


@pytest.fixture(scope="session")
def equal_size_trace() -> Trace:
    """Unit-size IRM trace — the classic paging model."""
    return irm_trace(2000, 100, alpha=0.8, equal_size=1, seed=11, name="unit")


@pytest.fixture(scope="session")
def var_size_trace() -> Trace:
    """Variable-size IRM trace with a heavy size tail."""
    return irm_trace(
        3000, 200, alpha=0.8, mean_size=1 << 20, size_sigma=1.5, seed=12, name="var"
    )


@pytest.fixture(scope="session")
def production_trace() -> Trace:
    """A small CDN-A stand-in (≈5k requests)."""
    return generate_production_trace("cdn-a", scale=0.005, seed=42)


@pytest.fixture(scope="session")
def production_capacity(production_trace) -> int:
    """A cache size giving realistic pressure on ``production_trace``."""
    return max(int(0.05 * production_trace.unique_bytes()), 1)


@pytest.fixture()
def tiny_trace() -> Trace:
    """Hand-written 8-request trace with known hit/miss structure."""
    rows = [
        (1.0, 1, 100),
        (2.0, 2, 100),
        (3.0, 1, 100),  # re-request of 1
        (4.0, 3, 100),
        (5.0, 2, 100),  # re-request of 2
        (6.0, 4, 100),
        (7.0, 1, 100),  # re-request of 1
        (8.0, 5, 100),
    ]
    return Trace.from_tuples(rows, name="tiny")


def make_request(obj_id: int, time: float = 0.0, size: int = 1, index: int = -1):
    return Request(time=time, obj_id=obj_id, size=size, index=index)
