"""Request and Trace records: validation, indexing, accounting."""

import pytest

from repro.traces.request import Request, Trace


class TestRequest:
    def test_fields(self):
        req = Request(time=1.5, obj_id=7, size=100, index=3)
        assert (req.time, req.obj_id, req.size, req.index) == (1.5, 7, 100, 3)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Request(time=0.0, obj_id=1, size=0)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Request(time=-1.0, obj_id=1, size=1)

    def test_immutability(self):
        req = Request(time=0.0, obj_id=1, size=1)
        with pytest.raises(AttributeError):
            req.size = 2


class TestTrace:
    def test_from_tuples_assigns_indices(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 2, 20)])
        assert [req.index for req in trace] == [0, 1]

    def test_constructor_reindexes(self):
        reqs = [Request(0.0, 1, 10), Request(1.0, 2, 20)]
        trace = Trace(reqs)
        assert [req.index for req in trace] == [0, 1]

    def test_len_and_getitem(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 2, 20), (2.0, 1, 10)])
        assert len(trace) == 3
        assert trace[1].obj_id == 2

    def test_slice_returns_trace(self):
        trace = Trace.from_tuples([(float(i), i, 10) for i in range(5)], name="t")
        head = trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2
        assert head.name == "t"

    def test_duration(self):
        trace = Trace.from_tuples([(1.0, 1, 10), (5.0, 2, 10)])
        assert trace.duration == 4.0

    def test_duration_degenerate(self):
        assert Trace.from_tuples([(1.0, 1, 10)]).duration == 0.0
        assert Trace([]).duration == 0.0

    def test_unique_contents_and_bytes(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 2, 20), (2.0, 1, 10)])
        assert trace.unique_contents() == {1: 10, 2: 20}
        assert trace.unique_bytes() == 30
        assert trace.total_bytes() == 40

    def test_validate_accepts_well_formed(self, tiny_trace):
        tiny_trace.validate()

    def test_validate_rejects_time_regression(self):
        trace = Trace.from_tuples([(2.0, 1, 10), (1.0, 2, 10)])
        with pytest.raises(ValueError, match="regress"):
            trace.validate()

    def test_validate_rejects_size_change(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 1, 20)])
        with pytest.raises(ValueError, match="size"):
            trace.validate()
