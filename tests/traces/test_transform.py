"""Trace transformations: scaling, splitting, filtering, interleaving."""

import pytest

from repro.traces.request import Trace
from repro.traces.synthetic import irm_trace
from repro.traces.transform import (
    filter_by_size,
    interleave,
    split,
    subsample,
    time_scale,
    truncate_requests,
)


@pytest.fixture(scope="module")
def base_trace():
    return irm_trace(1000, 60, mean_size=1 << 12, seed=31, name="base")


class TestTimeScale:
    def test_rejects_bad_factor(self, base_trace):
        with pytest.raises(ValueError):
            time_scale(base_trace, 0.0)

    def test_scales_duration(self, base_trace):
        scaled = time_scale(base_trace, 2.0)
        assert scaled.duration == pytest.approx(2 * base_trace.duration)
        assert len(scaled) == len(base_trace)

    def test_preserves_ids_and_sizes(self, base_trace):
        scaled = time_scale(base_trace, 0.5)
        assert [r.obj_id for r in scaled] == [r.obj_id for r in base_trace]
        assert [r.size for r in scaled] == [r.size for r in base_trace]

    def test_source_untouched(self, base_trace):
        before = base_trace[0].time
        time_scale(base_trace, 3.0)
        assert base_trace[0].time == before


class TestSplit:
    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2])
    def test_rejects_bad_fraction(self, base_trace, fraction):
        with pytest.raises(ValueError):
            split(base_trace, fraction)

    def test_partition(self, base_trace):
        head, tail = split(base_trace, 0.3)
        assert len(head) == 300
        assert len(tail) == 700
        assert head[-1].time <= tail[0].time

    def test_reindexed(self, base_trace):
        head, tail = split(base_trace, 0.5)
        assert tail[0].index == 0
        assert head[0].index == 0


class TestFilterBySize:
    def test_bounds_respected(self, base_trace):
        filtered = filter_by_size(base_trace, min_bytes=2048, max_bytes=8192)
        assert all(2048 <= r.size <= 8192 for r in filtered)

    def test_rejects_inverted_bounds(self, base_trace):
        with pytest.raises(ValueError):
            filter_by_size(base_trace, min_bytes=100, max_bytes=10)

    def test_no_bounds_keeps_all(self, base_trace):
        assert len(filter_by_size(base_trace)) == len(base_trace)


class TestSubsample:
    def test_rejects_bad_fraction(self, base_trace):
        with pytest.raises(ValueError):
            subsample(base_trace, 0.0)

    def test_content_consistent(self, base_trace):
        sampled = subsample(base_trace, 0.4, seed=1)
        kept = set(sampled.unique_contents())
        # Every request to a kept content survives.
        expected = sum(1 for r in base_trace if r.obj_id in kept)
        assert len(sampled) == expected

    def test_fraction_of_contents(self, base_trace):
        sampled = subsample(base_trace, 0.5, seed=2)
        total = len(base_trace.unique_contents())
        assert len(sampled.unique_contents()) <= total // 2 + 1

    def test_deterministic(self, base_trace):
        a = subsample(base_trace, 0.3, seed=5)
        b = subsample(base_trace, 0.3, seed=5)
        assert [r.obj_id for r in a] == [r.obj_id for r in b]

    def test_full_fraction_identity(self, base_trace):
        assert len(subsample(base_trace, 1.0)) == len(base_trace)


class TestInterleave:
    def test_time_ordered(self, base_trace):
        other = irm_trace(500, 30, mean_size=1 << 10, seed=32, name="other")
        merged = interleave(base_trace, other)
        merged.validate()
        assert len(merged) == 1500

    def test_id_spaces_disjoint(self, base_trace):
        other = irm_trace(500, 30, mean_size=1 << 10, seed=33)
        merged = interleave(base_trace, other)
        first_ids = {r.obj_id for r in base_trace}
        offset = merged.metadata["id_offset"]
        assert offset == max(first_ids) + 1
        merged_ids = {r.obj_id for r in merged}
        assert len(merged_ids) == len(first_ids) + len(other.unique_contents())

    def test_empty_first(self):
        empty = Trace([], name="empty")
        other = irm_trace(10, 5, seed=34)
        merged = interleave(empty, other)
        assert len(merged) == 10
        assert merged.metadata["id_offset"] == 0


class TestTruncate:
    def test_truncates(self, base_trace):
        assert len(truncate_requests(base_trace, 10)) == 10

    def test_rejects_non_positive(self, base_trace):
        with pytest.raises(ValueError):
            truncate_requests(base_trace, 0)


class TestDiurnal:
    def test_rejects_bad_parameters(self, base_trace):
        from repro.traces.transform import diurnal

        with pytest.raises(ValueError):
            diurnal(base_trace, amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal(base_trace, period_seconds=0)

    def test_preserves_order_ids_duration(self, base_trace):
        from repro.traces.transform import diurnal

        warped = diurnal(base_trace, period_seconds=base_trace.duration / 3,
                         amplitude=0.8)
        warped.validate()
        assert [r.obj_id for r in warped] == [r.obj_id for r in base_trace]
        assert warped.duration == pytest.approx(base_trace.duration, rel=1e-3)

    def test_zero_amplitude_identity(self, base_trace):
        from repro.traces.transform import diurnal

        same = diurnal(base_trace, amplitude=0.0)
        assert [r.time for r in same] == [r.time for r in base_trace]

    def test_rate_varies_over_period(self):
        from repro.traces.transform import diurnal
        from repro.traces.request import Trace

        # Uniform arrivals over one period; after warping the first
        # quarter (rising sine: peak rate) must hold more requests than
        # the third quarter (trough).
        flat = Trace.from_tuples([(float(i), i, 1) for i in range(4000)])
        period = flat.duration
        warped = diurnal(flat, period_seconds=period, amplitude=0.9)
        quarter = period / 4
        start = warped[0].time
        counts = [0, 0, 0, 0]
        for req in warped:
            idx = min(int((req.time - start) / quarter), 3)
            counts[idx] += 1
        assert counts[0] > counts[2] * 1.3
