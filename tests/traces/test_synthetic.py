"""Synthetic generators: IRM and the Markov-modulated Syn One / Syn Two."""

from collections import Counter

import numpy as np
import pytest

from repro.traces.synthetic import (
    MarkovModulatedGenerator,
    irm_trace,
    syn_one_trace,
    syn_two_trace,
)
from repro.util.sampling import ZipfSampler, lognormal_sizes


class TestIrmTrace:
    def test_basic_shape(self):
        trace = irm_trace(1000, 50, seed=0)
        assert len(trace) == 1000
        assert len(trace.unique_contents()) <= 50
        trace.validate()

    def test_equal_size_mode(self):
        trace = irm_trace(500, 20, equal_size=64, seed=0)
        assert all(req.size == 64 for req in trace)

    def test_rejects_bad_equal_size(self):
        with pytest.raises(ValueError):
            irm_trace(100, 10, equal_size=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            irm_trace(0, 10)

    def test_zipf_popularity_head_dominates(self):
        trace = irm_trace(20_000, 100, alpha=1.0, seed=1)
        counts = Counter(req.obj_id for req in trace)
        top = counts.most_common(10)
        assert sum(count for _, count in top) > 0.35 * len(trace)

    def test_poisson_arrival_rate(self):
        trace = irm_trace(10_000, 50, request_rate=200.0, seed=2)
        rate = len(trace) / trace.duration
        assert rate == pytest.approx(200.0, rel=0.1)

    def test_deterministic_for_seed(self):
        a = irm_trace(200, 20, seed=5)
        b = irm_trace(200, 20, seed=5)
        assert [r.obj_id for r in a] == [r.obj_id for r in b]
        c = irm_trace(200, 20, seed=6)
        assert [r.obj_id for r in a] != [r.obj_id for r in c]

    def test_metadata_recorded(self):
        trace = irm_trace(100, 10, alpha=0.7, seed=3)
        assert trace.metadata["alpha"] == 0.7
        assert trace.metadata["seed"] == 3


class TestMarkovModulated:
    def _samplers(self, rng):
        return [
            ZipfSampler(50, 0.9, rng=rng),
            ZipfSampler(50, 0.9, reverse=True, rng=rng),
        ]

    def test_requires_exactly_one_of_transitions_or_cycle(self):
        rng = np.random.default_rng(0)
        samplers = self._samplers(rng)
        with pytest.raises(ValueError):
            MarkovModulatedGenerator(samplers, 10)
        with pytest.raises(ValueError):
            MarkovModulatedGenerator(
                samplers, 10, transitions=np.eye(2), cycle=[0, 1]
            )

    def test_rejects_bad_transition_matrix(self):
        rng = np.random.default_rng(0)
        samplers = self._samplers(rng)
        with pytest.raises(ValueError):
            MarkovModulatedGenerator(
                samplers, 10, transitions=np.array([[0.5, 0.2], [1.0, 0.0]])
            )
        with pytest.raises(ValueError):
            MarkovModulatedGenerator(samplers, 10, transitions=np.eye(3))

    def test_rejects_bad_cycle_state(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            MarkovModulatedGenerator(self._samplers(rng), 10, cycle=[0, 5])

    def test_state_sequence_blocks(self):
        rng = np.random.default_rng(1)
        generator = MarkovModulatedGenerator(
            self._samplers(rng), 100, cycle=[0, 1], rng=rng
        )
        states = generator.state_sequence(350)
        assert states[:100] == [0] * 100
        assert states[100:200] == [1] * 100
        assert states[200:300] == [0] * 100
        assert len(states) == 350

    def test_generate_length_and_sizes(self):
        rng = np.random.default_rng(2)
        sizes = lognormal_sizes(50, 1e6, 1.0, 1e8, rng=rng)
        generator = MarkovModulatedGenerator(
            self._samplers(rng), 50, cycle=[0, 1], rng=rng
        )
        trace = generator.generate(300, sizes)
        assert len(trace) == 300
        trace.validate()
        for req in trace:
            assert req.size == sizes[req.obj_id]

    def test_deterministic_without_explicit_rng(self):
        # Seeded fallback generator: two default-constructed chains must
        # emit identical traces (whole-package determinism guarantee).
        def build():
            sizes = lognormal_sizes(50, 1e6, 1.0, 1e8)
            generator = MarkovModulatedGenerator(
                [ZipfSampler(50, 0.9), ZipfSampler(50, 0.9, reverse=True)],
                50,
                cycle=[0, 1],
            )
            return generator.generate(300, sizes)

        assert build().requests == build().requests


class TestSynTraces:
    def test_syn_one_popularity_flip(self):
        trace = syn_one_trace(
            num_requests=20_000,
            num_contents=100,
            requests_per_state=10_000,
            alpha=1.2,
            seed=0,
        )
        first = Counter(req.obj_id for req in trace[:10_000])
        second = Counter(req.obj_id for req in trace[10_000:])
        # The most popular content of phase 1 should be unpopular in
        # phase 2 (the ranking is reversed).
        top_first = first.most_common(1)[0][0]
        assert second.get(top_first, 0) < 0.2 * first[top_first]

    def test_syn_two_alpha_progression(self):
        trace = syn_two_trace(
            num_requests=12_000,
            num_contents=200,
            requests_per_state=3_000,
            seed=1,
        )
        states = trace.metadata["states"]
        assert states[0] == 0
        assert states[3_000] == 1
        assert states[6_000] == 2
        assert states[9_000] == 1

    def test_syn_defaults_match_paper_scale(self):
        # Section 7.6: 1M requests, N=1000 contents, r=200k per state.
        trace = syn_one_trace(num_requests=1_000, requests_per_state=500, num_contents=50)
        assert trace.name == "syn-one"


class TestSeedDiscipline:
    """``seed=None`` must raise, never silently draw OS entropy.

    Every generator keeps a seeded default (0) for back-compat, but an
    *explicit* None used to fall through to ``np.random.default_rng(None)``
    and produce a different trace on every call — poison for a regression
    corpus.
    """

    def test_irm_trace_rejects_none_seed(self):
        with pytest.raises(ValueError, match="seed"):
            irm_trace(100, 10, seed=None)

    def test_syn_traces_reject_none_seed(self):
        with pytest.raises(ValueError, match="seed"):
            syn_one_trace(100, 10, 50, seed=None)
        with pytest.raises(ValueError, match="seed"):
            syn_two_trace(100, 10, 50, seed=None)

    def test_markov_generator_rejects_none_seed(self):
        rng = np.random.default_rng(0)
        samplers = [ZipfSampler(10, 0.9, rng=rng)]
        with pytest.raises(ValueError, match="seed"):
            MarkovModulatedGenerator(samplers, 10, cycle=[0], seed=None)

    def test_sampler_and_sizes_reject_none_seed(self):
        with pytest.raises(ValueError, match="seed"):
            ZipfSampler(10, 0.9, seed=None)
        with pytest.raises(ValueError, match="seed"):
            lognormal_sizes(10, 1e6, 1.0, 1e8, seed=None)

    def test_explicit_rng_still_accepted(self):
        # An rng handle is the caller's responsibility; only the seed
        # fallback path enforces explicitness.
        rng = np.random.default_rng(0)
        assert len(ZipfSampler(10, 0.9, rng=rng).sample(5)) == 5

    def test_production_and_subsample_reject_none_seed(self):
        from repro.traces.production import generate_production_trace
        from repro.traces.transform import subsample

        with pytest.raises(ValueError, match="seed"):
            generate_production_trace("wiki", scale=0.001, seed=None)
        with pytest.raises(ValueError, match="seed"):
            subsample(irm_trace(50, 10, seed=0), 0.5, seed=None)
