"""Trace characterization: Table 1 columns and Figure 1 distributions."""

import numpy as np
import pytest

from repro.traces.request import Trace
from repro.traces.stats import (
    active_bytes_profile,
    interarrival_distribution,
    popularity_distribution,
    summarize_trace,
)
from repro.traces.synthetic import irm_trace


class TestSummary:
    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            summarize_trace(Trace([]))

    def test_counts(self, tiny_trace):
        summary = summarize_trace(tiny_trace)
        assert summary.total_requests == 8
        assert summary.unique_contents == 5
        assert summary.duration_hours == pytest.approx(7.0 / 3600)

    def test_byte_accounting(self, tiny_trace):
        summary = summarize_trace(tiny_trace)
        assert summary.total_bytes_tb == pytest.approx(800 / (1 << 40))
        assert summary.unique_bytes_gb == pytest.approx(500 / (1 << 30))

    def test_one_hit_fraction(self, tiny_trace):
        # Contents 3, 4, 5 are requested once; 1 and 2 repeat.
        summary = summarize_trace(tiny_trace)
        assert summary.one_hit_fraction == pytest.approx(3 / 5)

    def test_size_extremes(self):
        trace = Trace.from_tuples([(0.0, 1, 100), (1.0, 2, 900)])
        summary = summarize_trace(trace)
        assert summary.mean_size_mb == pytest.approx(500 / (1 << 20))
        assert summary.max_size_mb == pytest.approx(900 / (1 << 20))

    def test_table_row_keys_match_table1(self, tiny_trace):
        row = summarize_trace(tiny_trace).as_table_row()
        assert "Active bytes (GB)" in row
        assert "Unique bytes requested (GB)" in row
        assert row["Dataset"] == "tiny"


class TestActiveBytes:
    def test_single_request_content_momentarily_active(self):
        trace = Trace.from_tuples([(0.0, 1, 100)])
        times, levels = active_bytes_profile(trace)
        assert levels.max() == 100
        assert levels[-1] == 0  # deactivates after its last (only) request

    def test_overlapping_contents_sum(self):
        trace = Trace.from_tuples(
            [(0.0, 1, 100), (1.0, 2, 50), (2.0, 1, 100), (3.0, 2, 50)]
        )
        times, levels = active_bytes_profile(trace)
        # Both active in (1.0, 2.0): 150 bytes.
        assert levels.max() == 150

    def test_peak_bounded_by_unique_bytes(self, production_trace):
        summary = summarize_trace(production_trace)
        assert summary.peak_active_bytes_gb <= summary.unique_bytes_gb + 1e-9
        assert summary.mean_active_bytes_gb <= summary.peak_active_bytes_gb + 1e-9
        assert summary.peak_active_bytes_gb > 0


class TestDistributions:
    def test_popularity_sorted_descending(self):
        trace = irm_trace(5000, 50, alpha=1.0, seed=0)
        ranks, counts = popularity_distribution(trace)
        assert (np.diff(counts) <= 0).all()
        assert ranks[0] == 1
        assert counts.sum() == len(trace)

    def test_popularity_zipf_shape(self):
        trace = irm_trace(50_000, 100, alpha=1.0, seed=1)
        ranks, counts = popularity_distribution(trace)
        # log-log slope of the head should be near -1.
        head = slice(0, 30)
        slope = np.polyfit(np.log(ranks[head]), np.log(counts[head]), 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.3)

    def test_interarrival_ccdf_monotone(self):
        trace = irm_trace(5000, 50, seed=2)
        grid, ccdf = interarrival_distribution(trace)
        assert (np.diff(ccdf) <= 1e-12).all()
        assert 0.0 <= ccdf[-1] <= ccdf[0] <= 1.0

    def test_interarrival_requires_repeats(self):
        trace = Trace.from_tuples([(0.0, 1, 10), (1.0, 2, 10)])
        with pytest.raises(ValueError, match="repeated"):
            interarrival_distribution(trace)

    def test_interarrival_exponential_mean(self):
        # Single content with Poisson arrivals: CCDF(t) ~ exp(-rate t).
        rng = np.random.default_rng(3)
        gaps = rng.exponential(2.0, 2000)
        times = np.cumsum(gaps)
        trace = Trace.from_tuples([(float(t), 1, 10) for t in times])
        grid, ccdf = interarrival_distribution(trace, num_points=50)
        idx = np.searchsorted(grid, 2.0)
        assert ccdf[idx] == pytest.approx(np.exp(-1.0), abs=0.08)
