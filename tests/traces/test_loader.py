"""Trace I/O: CSV and webcachesim round trips and error handling."""

import pytest

from repro.traces.loader import (
    load_trace_csv,
    load_trace_webcachesim,
    save_trace_csv,
    save_trace_webcachesim,
)
from repro.traces.request import Trace


@pytest.fixture()
def sample_trace():
    return Trace.from_tuples(
        [(0.5, 1, 100), (1.25, 2, 2048), (2.0, 1, 100)], name="sample"
    )


class TestCsv:
    def test_round_trip(self, tmp_path, sample_trace):
        path = tmp_path / "trace.csv"
        save_trace_csv(sample_trace, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(sample_trace)
        for original, restored in zip(sample_trace, loaded):
            assert restored.obj_id == original.obj_id
            assert restored.size == original.size
            assert restored.time == pytest.approx(original.time, abs=1e-6)

    def test_name_defaults_to_stem(self, tmp_path, sample_trace):
        path = tmp_path / "mytrace.csv"
        save_trace_csv(sample_trace, path)
        assert load_trace_csv(path).name == "mytrace"

    def test_explicit_name(self, tmp_path, sample_trace):
        path = tmp_path / "x.csv"
        save_trace_csv(sample_trace, path)
        assert load_trace_csv(path, name="renamed").name == "renamed"

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(path)

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    def test_rejects_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,obj_id,size\n1.0,2\n")
        with pytest.raises(ValueError, match="3 columns"):
            load_trace_csv(path)


class TestWebcachesim:
    def test_round_trip(self, tmp_path, sample_trace):
        path = tmp_path / "trace.tr"
        save_trace_webcachesim(sample_trace, path)
        loaded = load_trace_webcachesim(path)
        assert [r.obj_id for r in loaded] == [r.obj_id for r in sample_trace]
        assert [r.size for r in loaded] == [r.size for r in sample_trace]

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.tr"
        path.write_text("1.0 1 100\n\n2.0 2 200\n")
        assert len(load_trace_webcachesim(path)) == 2

    def test_rejects_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.tr"
        path.write_text("1.0 1\n")
        with pytest.raises(ValueError, match="3 fields"):
            load_trace_webcachesim(path)

    def test_indices_sequential(self, tmp_path, sample_trace):
        path = tmp_path / "trace.tr"
        save_trace_webcachesim(sample_trace, path)
        loaded = load_trace_webcachesim(path)
        assert [r.index for r in loaded] == [0, 1, 2]
