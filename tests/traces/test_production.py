"""Production-trace stand-ins: Table 1 calibration at reduced scale."""

from collections import Counter

import numpy as np
import pytest

from repro.traces.production import (
    GB,
    MB,
    PRODUCTION_SPECS,
    TraceSpec,
    generate_production_trace,
)
from repro.traces.stats import summarize_trace


class TestSpecs:
    def test_all_four_traces_present(self):
        assert set(PRODUCTION_SPECS) == {"cdn-a", "cdn-b", "cdn-c", "wiki"}

    def test_table1_headline_numbers(self):
        # Spot-check the specs against Table 1 of the paper.
        a = PRODUCTION_SPECS["cdn-a"]
        assert a.duration_hours == 24.0
        assert a.unique_contents == 330_446
        assert a.mean_size_mb == pytest.approx(25.5)
        wiki = PRODUCTION_SPECS["wiki"]
        assert wiki.total_requests == 1_000_000
        assert wiki.max_size_mb == pytest.approx(92_100.0)

    def test_request_rate(self):
        spec = PRODUCTION_SPECS["cdn-b"]
        assert spec.request_rate == pytest.approx(
            1_000_000 / (9.9 * 3600), rel=1e-6
        )

    def test_scaled_cache_bytes(self):
        spec = PRODUCTION_SPECS["cdn-a"]
        assert spec.scaled_cache_bytes(512, 0.01) == int(512 * GB * 0.01)
        with pytest.raises(ValueError):
            spec.scaled_cache_bytes(512, 0)


class TestGeneration:
    @pytest.fixture(scope="class", params=list(PRODUCTION_SPECS))
    def trace_and_spec(self, request):
        spec = PRODUCTION_SPECS[request.param]
        return generate_production_trace(spec, scale=0.01, seed=7), spec

    def test_valid(self, trace_and_spec):
        trace, _ = trace_and_spec
        trace.validate()

    def test_request_and_content_counts_scale(self, trace_and_spec):
        trace, spec = trace_and_spec
        assert len(trace) == pytest.approx(spec.total_requests * 0.01, rel=0.01)
        # Some head contents draw zero requests, so the observed catalogue
        # is slightly below the provisioned one but never above it.
        provisioned = spec.unique_contents * 0.01
        observed = len(trace.unique_contents())
        assert 0.75 * provisioned <= observed <= provisioned * 1.01

    def test_duration_matches_spec(self, trace_and_spec):
        trace, spec = trace_and_spec
        assert trace.duration == pytest.approx(spec.duration_seconds, rel=0.01)

    def test_mean_size_matches_spec(self, trace_and_spec):
        trace, spec = trace_and_spec
        summary = summarize_trace(trace)
        assert summary.mean_size_mb == pytest.approx(spec.mean_size_mb, rel=0.25)

    def test_max_size_within_spec(self, trace_and_spec):
        trace, spec = trace_and_spec
        summary = summarize_trace(trace)
        assert summary.max_size_mb <= spec.max_size_mb * 1.01

    def test_one_hit_fraction_close(self, trace_and_spec):
        trace, spec = trace_and_spec
        counts = Counter(req.obj_id for req in trace)
        one_hit = sum(1 for count in counts.values() if count == 1)
        fraction = one_hit / len(counts)
        # The Zipf tail adds extra one-hit contents beyond the spec floor.
        assert fraction >= spec.one_hit_fraction * 0.9

    def test_determinism(self):
        a = generate_production_trace("wiki", scale=0.005, seed=3)
        b = generate_production_trace("wiki", scale=0.005, seed=3)
        assert [r.obj_id for r in a] == [r.obj_id for r in b]

    def test_seed_changes_trace(self):
        a = generate_production_trace("wiki", scale=0.005, seed=3)
        b = generate_production_trace("wiki", scale=0.005, seed=4)
        assert [r.obj_id for r in a] != [r.obj_id for r in b]

    def test_accepts_spec_by_name_case_insensitive(self):
        trace = generate_production_trace("CDN-C", scale=0.005, seed=0)
        assert trace.name == "cdn-c"

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            generate_production_trace("cdn-a", scale=0.0)

    def test_cdn_c_near_constant_sizes(self):
        trace = generate_production_trace("cdn-c", scale=0.01, seed=1)
        sizes = np.array(list(trace.unique_contents().values()), dtype=float)
        assert sizes.std() / sizes.mean() < 0.1
        assert sizes.max() <= 101 * MB

    def test_size_popularity_correlation_sign(self):
        trace = generate_production_trace("cdn-b", scale=0.01, seed=1)
        counts = Counter(req.obj_id for req in trace)
        sizes = trace.unique_contents()
        repeated = [oid for oid, count in counts.items() if count > 1]
        count_arr = np.array([counts[oid] for oid in repeated], dtype=float)
        size_arr = np.array([sizes[oid] for oid in repeated], dtype=float)
        count_ranks = count_arr.argsort().argsort()
        size_ranks = size_arr.argsort().argsort()
        rho = np.corrcoef(count_ranks, size_ranks)[0, 1]
        assert rho > 0.15  # video workload: popular titles are larger


class TestCustomSpec:
    def test_custom_spec_roundtrip(self):
        spec = TraceSpec(
            name="custom",
            duration_hours=1.0,
            unique_contents=50_000,
            total_requests=200_000,
            mean_size_mb=2.0,
            max_size_mb=100.0,
            size_sigma=1.0,
            alpha=0.9,
            one_hit_fraction=0.3,
            drift_segments=4,
            drift_alpha_amplitude=0.05,
            size_popularity_corr=0.2,
            cache_sizes_gb=(1, 2),
            prototype_cache_gb=2,
            caffeine_cache_gb=1,
        )
        trace = generate_production_trace(spec, scale=0.02, seed=0)
        trace.validate()
        assert trace.name == "custom"
