"""PackedTrace round-trips, validation, and shared-memory transport."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.traces.packed import (
    PackedTrace,
    SharedTraceBuffers,
    attach_shared_trace,
    live_segment_names,
)
from repro.traces.request import Trace


class TestPackedRoundTrip:
    def test_from_trace_unpack_is_identity(self, production_trace):
        packed = PackedTrace.from_trace(production_trace)
        rebuilt = packed.unpack()
        assert rebuilt.name == production_trace.name
        assert rebuilt.metadata == production_trace.metadata
        assert len(rebuilt) == len(production_trace)
        for original, restored in zip(production_trace, rebuilt):
            assert restored == original

    def test_unpacked_requests_carry_indices(self, tiny_trace):
        rebuilt = PackedTrace.from_trace(tiny_trace).unpack()
        assert [req.index for req in rebuilt] == list(range(len(tiny_trace)))

    def test_column_dtypes(self, tiny_trace):
        packed = PackedTrace.from_trace(tiny_trace)
        assert packed.times.dtype == np.float64
        assert packed.obj_ids.dtype == np.int64
        assert packed.sizes.dtype == np.int64

    def test_scalar_columns_cached_and_exact(self, tiny_trace):
        packed = PackedTrace.from_trace(tiny_trace)
        obj_ids, sizes, times = packed.scalar_columns()
        assert obj_ids == [req.obj_id for req in tiny_trace]
        assert sizes == [req.size for req in tiny_trace]
        assert times == [req.time for req in tiny_trace]
        assert packed.scalar_columns() is packed.scalar_columns()

    def test_iter_scalars_order(self, tiny_trace):
        packed = PackedTrace.from_trace(tiny_trace)
        triples = list(packed.iter_scalars())
        assert triples == [(r.obj_id, r.size, r.time) for r in tiny_trace]

    def test_pickle_drops_scalar_cache(self, tiny_trace):
        packed = PackedTrace.from_trace(tiny_trace)
        packed.scalar_columns()
        clone = pickle.loads(pickle.dumps(packed))
        assert "_scalars" not in clone.__dict__
        assert clone.scalar_columns() == packed.scalar_columns()

    def test_empty_trace(self):
        packed = PackedTrace.from_trace(Trace([], name="empty"))
        assert len(packed) == 0
        assert len(packed.unpack()) == 0


class TestPackedValidation:
    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="disagree on length"):
            PackedTrace(
                np.zeros(3), np.zeros(2, np.int64), np.ones(3, np.int64), "bad"
            )

    def test_obj_id_overflow_names_request(self):
        with pytest.raises(ValueError, match=r"request 1: obj_id=.* int64"):
            PackedTrace.from_arrays(
                [0.0, 1.0], [1, 2**64], [10, 10], name="overflow"
            )

    def test_size_overflow_names_request(self):
        with pytest.raises(ValueError, match=r"request 0: size=.* int64"):
            PackedTrace.from_arrays([0.0], [1], [2**63], name="overflow")

    def test_from_arrays_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time must be non-negative"):
            PackedTrace.from_arrays([-1.0], [1], [10])

    def test_from_arrays_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="size must be positive"):
            PackedTrace.from_arrays([0.0, 1.0], [1, 2], [10, 0])

    def test_from_arrays_accepts_plain_lists(self):
        packed = PackedTrace.from_arrays([0.0, 1.5], [7, 8], [100, 200], name="ok")
        assert packed.unpack()[1].size == 200


class TestSharedTraceBuffers:
    def test_attach_sees_identical_columns(self, production_trace):
        packed = PackedTrace.from_trace(production_trace)
        shared = SharedTraceBuffers.create(packed)
        try:
            assert shared.descriptor.segment in live_segment_names()
            view, shm = attach_shared_trace(shared.descriptor)
            try:
                np.testing.assert_array_equal(view.times, packed.times)
                np.testing.assert_array_equal(view.obj_ids, packed.obj_ids)
                np.testing.assert_array_equal(view.sizes, packed.sizes)
                assert view.name == packed.name
                assert not view.times.flags.writeable
            finally:
                shm.close()
        finally:
            shared.release()
        assert shared.descriptor.segment not in live_segment_names()

    def test_release_is_idempotent(self, tiny_trace):
        shared = SharedTraceBuffers.create(PackedTrace.from_trace(tiny_trace))
        shared.release()
        shared.release()
        assert shared.released
        assert live_segment_names() == ()

    def test_empty_trace_round_trips(self):
        shared = SharedTraceBuffers.create(
            PackedTrace.from_trace(Trace([], name="empty"))
        )
        try:
            view, shm = attach_shared_trace(shared.descriptor)
            assert len(view) == 0
            shm.close()
        finally:
            shared.release()

    def test_descriptor_pickles(self, tiny_trace):
        shared = SharedTraceBuffers.create(PackedTrace.from_trace(tiny_trace))
        try:
            clone = pickle.loads(pickle.dumps(shared.descriptor))
            assert clone == shared.descriptor
        finally:
            shared.release()
