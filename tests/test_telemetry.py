"""Benchmark telemetry: schema validation, env gating, and the sweep
collector that turns benchmark runs into ``BENCH_<name>.json``."""

import json

import pytest

from benchmarks.telemetry import (
    SCHEMA,
    BenchCollector,
    build_payload,
    emit_telemetry,
    peak_rss_bytes,
    telemetry_dir,
    telemetry_enabled,
    validate_telemetry,
)
from repro.sim.metrics import SimulationResult


def _payload(**overrides):
    payload = build_payload(
        "unit",
        scale=0.01,
        seed=1,
        jobs=0,
        wall_seconds=2.0,
        requests=1000,
        hit_ratios={"lru@1024": 0.5},
        obs_overhead_percent=1.2,
    )
    payload.update(overrides)
    return payload


class TestValidator:
    def test_built_payload_is_valid(self):
        payload = _payload()
        validate_telemetry(payload)
        assert payload["schema"] == SCHEMA
        assert payload["throughput_rps"] == pytest.approx(500.0)
        json.dumps(payload)  # schema must stay JSON-able

    def test_missing_field_rejected(self):
        payload = _payload()
        del payload["requests"]
        with pytest.raises(ValueError, match="missing fields"):
            validate_telemetry(payload)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            validate_telemetry(_payload(requests="many"))
        with pytest.raises(ValueError, match="hit_ratios"):
            validate_telemetry(_payload(hit_ratios=[0.5]))
        # bool is an int subclass; the validator must not accept it.
        with pytest.raises(ValueError, match="jobs"):
            validate_telemetry(_payload(jobs=True))

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_telemetry(_payload(schema="repro-bench/999"))

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_telemetry(_payload(wall_seconds=-1.0))

    def test_hit_ratio_range_enforced(self):
        with pytest.raises(ValueError, match="within"):
            validate_telemetry(_payload(hit_ratios={"lru@1": 1.5}))
        with pytest.raises(ValueError, match="strings"):
            validate_telemetry(_payload(hit_ratios={3: 0.5}))

    def test_null_overhead_allowed(self):
        validate_telemetry(_payload(obs_overhead_percent=None))
        with pytest.raises(ValueError, match="obs_overhead_percent"):
            validate_telemetry(_payload(obs_overhead_percent=-1.0))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_telemetry(_payload(name=""))

    @pytest.mark.parametrize("field", ["wall_seconds", "throughput_rps"])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_numbers_rejected(self, field, bad):
        # A NaN throughput compares false against every tolerance and
        # would silently disarm the regression sentinel.
        with pytest.raises(ValueError, match="finite"):
            validate_telemetry(_payload(**{field: bad}))

    @pytest.mark.parametrize("field", ["requests", "peak_rss_bytes"])
    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_int_fields_fail_type_check(self, field, bad):
        # Integer-typed fields reject NaN/inf one layer earlier, at the
        # type check — either way the payload never reaches comparison.
        with pytest.raises(ValueError, match=field):
            validate_telemetry(_payload(**{field: bad}))

    @pytest.mark.parametrize("field", [
        "wall_seconds", "requests", "throughput_rps", "peak_rss_bytes",
    ])
    def test_negative_numbers_rejected(self, field):
        with pytest.raises(ValueError, match="non-negative"):
            validate_telemetry(_payload(**{field: -1}))

    def test_nan_hit_ratio_rejected(self):
        with pytest.raises(ValueError, match="within"):
            validate_telemetry(_payload(hit_ratios={"lru@1": float("nan")}))

    def test_nan_overhead_rejected(self):
        with pytest.raises(ValueError, match="obs_overhead_percent"):
            validate_telemetry(_payload(obs_overhead_percent=float("nan")))


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_enabled() is False
        assert emit_telemetry(_payload()) is None

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True),
        ("0", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert telemetry_enabled() is expected

    def test_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "out"))
        assert telemetry_dir() == tmp_path / "out"

    def test_emit_writes_valid_json(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        path = emit_telemetry(_payload(), out_dir=tmp_path)
        assert path == tmp_path / "BENCH_unit.json"
        on_disk = json.loads(path.read_text())
        validate_telemetry(on_disk)
        assert on_disk["name"] == "unit"

    def test_emit_rejects_invalid_payload_even_when_enabled(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        with pytest.raises(ValueError):
            emit_telemetry(_payload(requests=-5), out_dir=tmp_path)
        assert not list(tmp_path.iterdir())


class TestCollector:
    def _result(self, policy, capacity, requests, hits):
        return SimulationResult(
            policy=policy,
            trace="t",
            capacity=capacity,
            requests=requests,
            hits=hits,
        )

    def test_record_and_drain(self):
        collector = BenchCollector()
        collector.record_sweep(
            [self._result("lru", 1024, 100, 40),
             self._result("lhr", 1024, 100, 60)],
            seconds=2.0,
        )
        snapshot = collector.drain()
        assert snapshot["requests"] == 200
        assert snapshot["wall_seconds"] == pytest.approx(2.0)
        assert snapshot["throughput_rps"] == pytest.approx(100.0)
        assert snapshot["hit_ratios"] == {"lru@1024": 0.4, "lhr@1024": 0.6}
        payload = build_payload(
            "collector", scale=1.0, seed=0, jobs=0, **snapshot
        )
        validate_telemetry(payload)

    def test_drain_resets(self):
        collector = BenchCollector()
        collector.record_sweep([self._result("lru", 1, 10, 5)], seconds=1.0)
        collector.drain()
        empty = collector.drain()
        assert empty["requests"] == 0
        assert empty["throughput_rps"] == 0.0
        assert empty["hit_ratios"] == {}


class TestRss:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1 << 20  # a Python process beats 1 MiB
