"""End-to-end integration: the paper's experiment pipelines at tiny scale.

These tests wire several subsystems together the way the benchmarks do —
trace generation -> policies -> bounds -> simulation -> prototype — and
assert cross-module consistency rather than per-module behaviour.
"""

import pytest

from repro.bounds import belady_size, infinite_cap, pfoo_upper
from repro.core import DLhrCache, LhrCache, hro_bound
from repro.proto import AtsServer, make_ats_baseline, run_prototype
from repro.sim import best_policy, build_policy, measure_latency, run_comparison, simulate
from repro.traces import generate_production_trace, syn_two_trace
from repro.traces.transform import split


@pytest.fixture(scope="module")
def scenario():
    trace = generate_production_trace("cdn-b", scale=0.005, seed=77)
    capacity = int(0.06 * trace.unique_bytes())
    return trace, capacity


class TestFigure2Pipeline:
    """The full bound-vs-policy comparison at miniature scale."""

    def test_hierarchy(self, scenario):
        trace, capacity = scenario
        results = run_comparison(
            trace,
            ["lhr", "lru", "lfu-da", "adaptsize"],
            [capacity],
        )
        lhr = next(r for r in results if r.policy == "lhr")
        sota = best_policy([r for r in results if r.policy != "lhr"])
        hro = hro_bound(trace, capacity, min_window_requests=512)
        offline = belady_size(trace.requests, capacity)
        relaxed = pfoo_upper(trace.requests, capacity)
        ceiling = infinite_cap(trace.requests)
        # The full chain of the paper's Figure 2 relationships.
        assert lhr.object_hit_ratio >= sota.object_hit_ratio - 0.03
        assert hro.hit_ratio >= lhr.object_hit_ratio - 0.03
        assert relaxed.hit_ratio >= offline.hit_ratio - 0.02
        assert ceiling.hit_ratio >= max(relaxed.hit_ratio, hro.hit_ratio) - 1e-9


class TestSimulatorConsistency:
    def test_engine_matches_policy_state(self, scenario):
        trace, capacity = scenario
        policy = build_policy("w-tinylfu", capacity)
        result = simulate(policy, trace, window_requests=500)
        assert result.hits == policy.hits
        assert result.total_bytes == trace.total_bytes()
        assert sum(w.hits for w in result.windows) == result.hits
        assert result.wan_traffic_bytes == policy.miss_bytes

    def test_latency_consistent_with_hit_ratio(self, scenario):
        trace, capacity = scenario
        fast = measure_latency(build_policy("lhr", capacity), trace)
        slow = measure_latency(build_policy("no-cache", capacity), trace)
        assert fast.object_hit_ratio > slow.object_hit_ratio
        assert fast.mean_latency_ms < slow.mean_latency_ms
        assert fast.throughput_gbps > slow.throughput_gbps


class TestLhrInternalsConsistency:
    def test_lhr_window_count_matches_hro(self, scenario):
        trace, capacity = scenario
        cache = LhrCache(capacity, seed=0)
        cache.process(trace)
        assert cache.windows_processed == len(cache.hro.windows)
        assert cache.trainings <= cache.windows_processed
        assert len(cache.estimator.history) >= 1

    def test_d_lhr_never_moves_threshold(self, scenario):
        trace, capacity = scenario
        cache = DLhrCache(capacity, seed=0)
        cache.process(trace)
        assert set(cache.estimator.history) == {0.5}

    def test_probability_vector_subset_of_cache(self, scenario):
        trace, capacity = scenario
        cache = LhrCache(capacity, seed=0)
        cache.process(trace)
        cached = set(cache.cached_objects())
        assert set(cache._probabilities) == cached


class TestPrototypePipeline:
    def test_prototype_consistent_with_simulator(self, scenario):
        """The ATS emulation's hit probability must track a bare policy
        simulation of the same algorithm and capacity (the prototype adds
        freshness/revalidation but those rarely change hit/miss)."""
        trace, capacity = scenario
        report = run_prototype(make_ats_baseline(capacity), trace, "ats")
        bare = simulate(build_policy("lru", capacity), trace)
        assert report.content_hit_percent / 100 == pytest.approx(
            bare.object_hit_ratio, abs=0.03
        )

    def test_lhr_prototype_traffic_at_most_total(self, scenario):
        trace, capacity = scenario
        report = run_prototype(AtsServer(LhrCache(capacity, seed=0)), trace, "lhr")
        total_gbps = trace.total_bytes() * 8 / max(trace.duration, 1e-9) / 1e9
        assert 0 < report.traffic_gbps <= total_gbps


class TestTrainTestProtocol:
    def test_split_then_evaluate(self, scenario):
        """A standard ML-systems protocol: warm the policy on the head of
        the trace, measure on the tail only."""
        trace, capacity = scenario
        head, tail = split(trace, 0.5)
        cache = LhrCache(capacity, seed=0)
        cache.process(head)
        warm_hits_before = cache.hits
        result = simulate(cache, tail)
        assert result.requests == len(tail)
        assert cache.hits == warm_hits_before + result.hits


class TestAdaptivity:
    def test_lhr_tracks_alpha_cycle(self):
        trace = syn_two_trace(
            num_requests=12_000,
            num_contents=400,
            requests_per_state=3_000,
            seed=9,
        )
        capacity = int(0.1 * trace.unique_bytes())
        lhr = simulate(build_policy("lhr", capacity, seed=0), trace)
        lru = simulate(build_policy("lru", capacity), trace)
        assert lhr.object_hit_ratio > lru.object_hit_ratio
